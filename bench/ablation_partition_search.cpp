// Ablation: the section-4.1 partition search.
//
// The paper proves that communication is minimized when demarcation
// lines carry (near-)equal point counts and hand-picks partitions
// accordingly (2x1x1 over 1x2x1 for 2 processors; 3x2x1 over 6x1x1 for
// 6). This bench compares the searched partition against naive
// single-dimension cuts on the paper's grids — both in the static
// communication model and in actual virtual-time runs of the sprayer.
#include "bench_util.hpp"

#include "autocfd/partition/comm_model.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;
  using namespace autocfd::partition;

  bench_util::heading("Ablation: section-4.1 optimal partition search");

  std::printf("%-12s %-6s %-12s %-12s %18s %18s\n", "grid", "procs",
              "searched", "naive", "max comm (srch)", "max comm (naive)");
  struct Case {
    Grid grid;
    int procs;
    const char* naive;
  };
  const std::vector<Case> cases = {
      {Grid{{99, 41, 13}}, 2, "1x2x1"},  {Grid{{99, 41, 13}}, 4, "4x1x1"},
      {Grid{{99, 41, 13}}, 6, "6x1x1"},  {Grid{{300, 100}}, 4, "1x4"},
      {Grid{{300, 100}}, 6, "6x1"},      {Grid{{800, 300}}, 4, "4x1"},
  };
  for (const auto& c : cases) {
    const auto halo = HaloWidths::uniform(c.grid.rank(), 1);
    const auto best = find_best_partition(c.grid, c.procs, halo);
    const auto naive = PartitionSpec::parse(c.naive);
    const auto best_comm =
        max_comm_points(BlockPartition(c.grid, best), halo);
    const auto naive_comm =
        max_comm_points(BlockPartition(c.grid, naive), halo);
    std::printf("%-12s %-6d %-12s %-12s %18lld %18lld%s\n",
                c.grid.str().c_str(), c.procs, best.str().c_str(), c.naive,
                best_comm, naive_comm,
                best_comm <= naive_comm ? "" : "  WORSE");
  }

  // End-to-end: run the sprayer under the searched vs a naive partition.
  std::printf("\nEnd-to-end on the sprayer (300x100, 6 processors):\n");
  cfd::SprayerParams sp;
  sp.frames = 2;
  const auto src = cfd::sprayer_source(sp);
  for (const auto* part : {"3x2", "6x1", "1x6"}) {
    const auto run = bench_util::run_par(src, part);
    std::printf("  partition %-5s: %.3f virtual s\n", part, run.elapsed);
  }
  bench_util::note(
      "\nThe searched factorization minimizes the maximum per-task\n"
      "demarcation traffic — the paper's load/communication balance\n"
      "criterion — and wins (or ties) every end-to-end run.");

  benchmark::RegisterBenchmark("find_best_partition/6procs",
                               [](benchmark::State& s) {
                                 const Grid g{{99, 41, 13}};
                                 const auto halo = HaloWidths::uniform(3, 1);
                                 for (auto _ : s) {
                                   benchmark::DoNotOptimize(
                                       find_best_partition(g, 6, halo));
                                 }
                               });
  return bench_util::finish(argc, argv);
}

// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench binary prints its table/figure reproduction first (paper
// value vs measured value) and then runs its registered
// google-benchmark microbenchmarks, so `./bench_binary` produces the
// full report and `./bench_binary --benchmark_filter=...` still works
// as a normal benchmark harness.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "autocfd/cfd/apps.hpp"
#include "autocfd/core/pipeline.hpp"
#include "autocfd/fortran/parser.hpp"

namespace bench_util {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Runs a sequential reference of `source` under the standard machine.
inline autocfd::codegen::SeqRunResult run_seq(
    const std::string& source, const std::vector<std::string>& status) {
  auto file = autocfd::fortran::parse_source(source);
  return autocfd::codegen::run_sequential_timed(
      file, status, autocfd::mp::MachineConfig::pentium_ethernet_1999());
}

/// Parallelizes and runs `source` under `partition`.
inline autocfd::codegen::SpmdRunResult run_par(
    const std::string& source, const std::string& partition) {
  autocfd::DiagnosticEngine diags;
  auto dirs = autocfd::core::Directives::extract(source, diags);
  dirs.partition = autocfd::partition::PartitionSpec::parse(partition);
  auto program = autocfd::core::parallelize(source, dirs);
  return program->run(autocfd::mp::MachineConfig::pentium_ethernet_1999());
}

/// Standard tail: print a footer and hand over to google-benchmark.
inline int finish(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench_util

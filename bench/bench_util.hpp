// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench binary prints its table/figure reproduction first (paper
// value vs measured value) and then runs its registered
// google-benchmark microbenchmarks, so `./bench_binary` produces the
// full report and `./bench_binary --benchmark_filter=...` still works
// as a normal benchmark harness.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "autocfd/cfd/apps.hpp"
#include "autocfd/core/pipeline.hpp"
#include "autocfd/fortran/parser.hpp"
#include "autocfd/ledger/ledger.hpp"
#include "autocfd/ledger/record_builders.hpp"
#include "autocfd/prof/source_profile.hpp"

namespace bench_util {

/// Values recorded for the machine-readable sidecar. finish() writes
/// them to BENCH_<binary>.json so the perf trajectory of the tables
/// and figures can be tracked across PRs without scraping stdout.
inline std::map<std::string, double>& json_records() {
  static std::map<std::string, double> records;
  return records;
}

/// String-valued sidecar records (loop classes etc.). Kept separate
/// from the numeric map; write_json_report interleaves both sorted.
inline std::map<std::string, std::string>& json_string_records() {
  static std::map<std::string, std::string> records;
  return records;
}

/// Records one measurement (e.g. "aerofoil.4x1x1.elapsed_s").
inline void record(const std::string& key, double value) {
  json_records()[key] = value;
}

/// Records one string-valued fact (e.g. "hot.0.class").
inline void record_str(const std::string& key, const std::string& value) {
  json_string_records()[key] = value;
}

/// Writes the recorded measurements as a flat JSON object (numeric and
/// string values interleaved in one sorted key order).
inline void write_json_report(const std::string& path) {
  std::ofstream os(path);
  os << "{\n";
  bool first = true;
  auto nit = json_records().begin();
  auto sit = json_string_records().begin();
  const auto emit_sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  while (nit != json_records().end() ||
         sit != json_string_records().end()) {
    const bool take_num =
        sit == json_string_records().end() ||
        (nit != json_records().end() && nit->first < sit->first);
    if (take_num) {
      emit_sep();
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", nit->second);
      os << "  \"" << nit->first << "\": " << buf;
      ++nit;
    } else {
      emit_sep();
      std::string escaped;
      for (const char ch : sit->second) {
        if (ch == '"' || ch == '\\') escaped += '\\';
        escaped += ch;
      }
      os << "  \"" << sit->first << "\": \"" << escaped << "\"";
      ++sit;
    }
  }
  os << "\n}\n";
}

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Runs a sequential reference of `source` under the standard machine.
inline autocfd::codegen::SeqRunResult run_seq(
    const std::string& source, const std::vector<std::string>& status) {
  auto file = autocfd::fortran::parse_source(source);
  return autocfd::codegen::run_sequential_timed(
      file, status, autocfd::mp::MachineConfig::pentium_ethernet_1999());
}

/// Folds one pass profile into the sidecar records: "phase.<name>.wall_s"
/// per phase (plus its counters as "phase.<name>.<counter>") and the
/// pipeline total as "phase.total.wall_s". Later profiles of the same
/// phases overwrite earlier ones — the sidecar keeps one phase block.
inline void record_phase_profile(const autocfd::obs::PassProfiler& profiler) {
  for (const auto& phase : profiler.phases()) {
    record("phase." + phase.name + ".wall_s", phase.wall_s);
    for (const auto& [key, value] : phase.counters) {
      record("phase." + phase.name + "." + key, value);
    }
  }
  record("phase.total.wall_s", profiler.total_wall_s());
}

/// Folds the run's five hottest attribution units into the sidecar:
/// "hot.<i>.line" / ".time_s" / ".share" numeric plus ".class" string
/// (the explain engine's A/R/C/O letters, "-" for plain statements).
/// Later runs overwrite earlier ones — the sidecar keeps the hot block
/// of the last profiled run.
inline void record_hot_loops(const autocfd::prof::SourceProfile& profile) {
  const auto hot = profile.hottest(5);
  for (std::size_t i = 0; i < hot.size(); ++i) {
    const std::string prefix = "hot." + std::to_string(i);
    record(prefix + ".line", static_cast<double>(hot[i]->loc.line));
    record(prefix + ".time_s", hot[i]->time_s);
    record(prefix + ".share", hot[i]->share);
    record_str(prefix + ".class",
               hot[i]->loop_class.empty()
                   ? (hot[i]->is_loop ? "?" : "-")
                   : hot[i]->loop_class);
  }
}

/// Parallelizes and runs `source` under `partition`. Every call also
/// profiles the pre-compiler phases into the sidecar's phase block and
/// the run's hottest loops into its hot block.
inline autocfd::codegen::SpmdRunResult run_par(
    const std::string& source, const std::string& partition) {
  autocfd::DiagnosticEngine diags;
  auto dirs = autocfd::core::Directives::extract(source, diags);
  dirs.partition = autocfd::partition::PartitionSpec::parse(partition);
  autocfd::obs::ObsContext obs;
  auto program = autocfd::core::parallelize(
      source, dirs, autocfd::sync::CombineStrategy::Min, &obs);
  record_phase_profile(obs.profiler);
  autocfd::codegen::SpmdRunOptions run_opts;
  run_opts.profile = true;
  auto result = program->run(
      autocfd::mp::MachineConfig::pentium_ethernet_1999(), run_opts);
  auto profile = autocfd::prof::build_source_profile(result.profiles);
  autocfd::prof::attach_provenance(profile, obs.provenance);
  record_hot_loops(profile);
  return result;
}

/// Stamps the build/run metadata block every sidecar carries:
/// tools/bench_compare warns when two sidecars disagree on it, so a
/// Debug-vs-Release (or cross-engine) comparison is flagged instead of
/// read as a perf regression.
inline void record_metadata() {
  record("meta.schema_version", 1.0);
  record("meta.seed", 0.0);
#ifdef NDEBUG
  record_str("meta.build_type", "Release");
#else
  record_str("meta.build_type", "Debug");
#endif
  record_str("meta.engine", "bytecode");
  record_str("meta.machine", "pentium_ethernet_1999");
}

/// Standard tail: write the JSON sidecar (if anything was recorded),
/// print a footer and hand over to google-benchmark.
inline int finish(int argc, char** argv) {
  if (argc >= 1) {
    // Every sidecar embeds a phase-timing block and a hot-loop block.
    // Benches that never went through run_par (pure analysis sweeps)
    // run one small aerofoil so both blocks are present with the same
    // schema.
    bool have_phases = false, have_hot = false;
    for (const auto& [key, value] : json_records()) {
      (void)value;
      if (key.rfind("phase.", 0) == 0) have_phases = true;
      if (key.rfind("hot.", 0) == 0) have_hot = true;
    }
    if (!have_phases || !have_hot) {
      autocfd::cfd::AerofoilParams small;
      small.n1 = 24;
      small.n2 = 10;
      small.n3 = 4;
      small.frames = 1;
      (void)run_par(autocfd::cfd::aerofoil_source(small), "2x1x1");
    }
    record_metadata();
    std::string stem = argv[0];
    if (const auto slash = stem.find_last_of('/'); slash != std::string::npos) {
      stem = stem.substr(slash + 1);
    }
    const std::string path = "BENCH_" + stem + ".json";
    write_json_report(path);
    note("\n[bench_util] wrote " + std::to_string(json_records().size()) +
         " measurement(s) to " + path);

    // With ACFD_LEDGER set, the sidecar also becomes one run-history
    // record — CI points every bench at a shared ledger and the
    // regression sentinel trends them across runs. Append failure is a
    // loud warning, never a bench failure.
    if (const char* ledger_path = std::getenv("ACFD_LEDGER");
        ledger_path != nullptr && ledger_path[0] != '\0') {
      const auto rec = autocfd::ledger::record_from_sidecar(
          stem, json_records(), json_string_records());
      if (const auto err = autocfd::ledger::append_record(ledger_path, rec)) {
        std::fprintf(stderr, "[bench_util] ledger append failed: %s\n",
                     err->c_str());
      } else {
        note("[bench_util] appended 1 record to " +
             std::string(ledger_path));
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench_util

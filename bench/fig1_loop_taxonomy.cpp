// Figure 1: the four field-loop types (A, R, C, O).
//
// Regenerates the classification of the figure's four example loops
// and times the classifier on the full aerofoil source.
#include "bench_util.hpp"

#include "autocfd/ir/field_loop.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;

  bench_util::heading("Figure 1: types of field loop");

  struct Example {
    const char* label;
    const char* body;
    ir::LoopType expected;
  };
  const Example examples[] = {
      {"(a) A-type: assignment only", "v(i, j) = 1.0", ir::LoopType::A},
      {"(b) R-type: reference only", "w(i, j) = v(i - 1, j + 1)",
       ir::LoopType::R},
      {"(c) C-type: combined", "v(i, j) = v(i - 1, j) + v(i + 1, j)",
       ir::LoopType::C},
      {"(d) O-type: unrelated", "t(i, j) = 1.0", ir::LoopType::O},
  };

  ir::FieldConfig cfg;
  cfg.grid_rank = 2;
  cfg.status_arrays = {"v", "w"};

  for (const auto& ex : examples) {
    std::string src = "program p\nreal v(8, 8), w(8, 8), t(8, 8)\n";
    src += "integer i, j\ndo i = 2, 7\n  do j = 2, 7\n    ";
    src += ex.body;
    src += "\n  end do\nend do\nend\n";
    const auto file = fortran::parse_source(src);
    DiagnosticEngine diags;
    const auto loops = ir::analyze_field_loops(file.units[0], cfg, diags);
    const auto type = loops.empty() ? ir::LoopType::O
                                    : loops[0].type_for("v");
    std::printf("  %-32s -> %s-type w.r.t. v  (expected %s)%s\n", ex.label,
                std::string(ir::loop_type_name(type)).c_str(),
                std::string(ir::loop_type_name(ex.expected)).c_str(),
                type == ex.expected ? "" : "  MISMATCH");
  }

  // Statistics over the whole aerofoil program.
  cfd::AerofoilParams p;
  const auto aero = cfd::aerofoil_source(p);
  {
    const auto file = fortran::parse_source(aero);
    DiagnosticEngine diags;
    auto dirs = core::Directives::extract(aero, diags);
    const auto acfg = dirs.field_config();
    int counts[4] = {0, 0, 0, 0};
    int loops_total = 0;
    for (const auto& unit : file.units) {
      for (const auto& fl : ir::analyze_field_loops(unit, acfg, diags)) {
        ++loops_total;
        for (const auto& [name, info] : fl.arrays) {
          ++counts[static_cast<int>(fl.type_for(name))];
        }
      }
    }
    std::printf(
        "\nAerofoil source: %d field loops; per-array classifications: "
        "A=%d R=%d C=%d\n",
        loops_total, counts[0], counts[1], counts[2]);
  }

  benchmark::RegisterBenchmark("classify/aerofoil", [aero](benchmark::State& s) {
    auto file = fortran::parse_source(aero);
    DiagnosticEngine diags;
    auto dirs = core::Directives::extract(aero, diags);
    const auto cfg2 = dirs.field_config();
    for (auto _ : s) {
      for (const auto& unit : file.units) {
        benchmark::DoNotOptimize(
            ir::analyze_field_loops(unit, cfg2, diags));
      }
    }
  });
  return bench_util::finish(argc, argv);
}

// Figure 2: basic software structure of the pre-compiler.
//
// Walks one source through every stage of the pipeline the figure
// draws — parse, partition, dependency analysis, synchronization
// optimization, restructuring — reporting what each stage produced and
// how long it took.
#include <chrono>

#include "bench_util.hpp"

#include "autocfd/depend/dep_pairs.hpp"
#include "autocfd/fortran/printer.hpp"
#include "autocfd/sync/sync_plan.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;
  using clock = std::chrono::steady_clock;

  cfd::SprayerParams p;  // case study 2 at full size
  const auto src = cfd::sprayer_source(p);

  bench_util::heading("Figure 2: pre-compiler pipeline stages (sprayer)");

  const auto ms = [](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(src, diags);
  dirs.partition = partition::PartitionSpec::parse("2x2");

  auto t0 = clock::now();
  auto file = fortran::parse_source(src);
  auto t1 = clock::now();
  std::printf("  parse                 : %3zu units, %7.2f ms\n",
              file.units.size(), ms(t0, t1));

  const auto cfg = dirs.field_config();
  std::map<std::string, std::vector<ir::FieldLoop>> loops;
  int nloops = 0;
  for (const auto& unit : file.units) {
    loops[unit.name] = ir::analyze_field_loops(unit, cfg, diags);
    nloops += static_cast<int>(loops[unit.name].size());
  }
  auto t2 = clock::now();
  std::printf("  field-loop analysis   : %3d loops, %7.2f ms\n", nloops,
              ms(t1, t2));

  auto trace = depend::ProgramTrace::build(file, loops, diags);
  auto deps = depend::analyze_dependences(trace, *dirs.partition, diags);
  auto t3 = clock::now();
  std::printf("  dependency analysis   : %3zu pairs (S_LDP), %7.2f ms\n",
              deps.pairs.size(), ms(t2, t3));

  auto prog = sync::InlinedProgram::build(file, trace, *dirs.partition, diags);
  auto plan = sync::plan_synchronization(prog, deps, *dirs.partition);
  auto t4 = clock::now();
  std::printf("  sync optimization     : %3d -> %d points, %7.2f ms\n",
              plan.syncs_before(), plan.syncs_after(), ms(t3, t4));

  auto program = core::parallelize(src, dirs);
  auto t5 = clock::now();
  std::printf("  restructure + emit    : %3zu source lines, %7.2f ms\n",
              std::count(program->parallel_source.begin(),
                         program->parallel_source.end(), '\n'),
              ms(t4, t5));

  bench_util::note(
      "\nInput: sequential Fortran CFD source + !$acfd directives.\n"
      "Output: SPMD source with message-passing calls (printed below,\n"
      "first 24 lines):\n");
  std::istringstream lines(program->parallel_source);
  std::string line;
  for (int i = 0; i < 24 && std::getline(lines, line); ++i) {
    std::printf("    %s\n", line.c_str());
  }

  benchmark::RegisterBenchmark("pipeline/end_to_end",
                               [src](benchmark::State& s) {
                                 for (auto _ : s) {
                                   DiagnosticEngine d;
                                   auto dd = core::Directives::extract(src, d);
                                   dd.partition =
                                       partition::PartitionSpec::parse("2x2");
                                   benchmark::DoNotOptimize(
                                       core::parallelize(src, dd));
                                 }
                               });
  return bench_util::finish(argc, argv);
}

// Figures 3 and 4: self-dependent field loops and mirror-image
// decomposition.
//
// Rebuilds the point-level dependence graph of the Figure 3(b) loop,
// shows that treating all accesses as ordering edges yields a cyclic
// graph (why traditional wavefront methods give up), and that the
// mirror-image decomposition splits it into two acyclic, wavefront-
// schedulable sub-graphs — exactly Figure 4(b) -> (c)+(d).
#include "bench_util.hpp"

#include "autocfd/depend/point_graph.hpp"
#include "autocfd/depend/self_dep.hpp"
#include "autocfd/ir/field_loop.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;
  using depend::PointDepGraph;

  bench_util::heading("Figures 3-4: mirror-image decomposition");

  // Figure 3(a): forward-only Gauss-Seidel.
  {
    const auto g = PointDepGraph::build(6, 6, {{-1, 0}, {0, -1}});
    std::printf(
        "Figure 3(a)  v(i,j) = f(v(i-1,j), v(i,j-1)):\n"
        "  %zu dependence edges, cyclic: %s, wavefront depth %d\n"
        "  -> parallelizable directly by wavefront / loop skewing\n\n",
        g.edges().size(), g.has_cycle() ? "yes" : "no", g.wavefront_depth());
  }

  // Figure 3(b): both directions.
  const auto g =
      PointDepGraph::build(6, 6, {{-1, 0}, {1, 0}, {0, -1}, {0, 1}});
  int fwd = 0, bwd = 0;
  for (const auto& e : g.edges()) {
    (e.dir == depend::EdgeDir::Forward ? fwd : bwd)++;
  }
  std::printf(
      "Figure 3(b)  v(i,j) = f(v(i-1,j), v(i+1,j), v(i,j-1), v(i,j+1)):\n"
      "  %zu edges (%d along, %d against lexicographic order)\n"
      "  treating all as ordering constraints -> cyclic: %s\n"
      "  -> NOT parallelizable by traditional methods [Banerjee et al.]\n\n",
      g.edges().size(), fwd, bwd, g.has_cycle() ? "yes" : "no");

  const auto dec = g.mirror_decompose();
  std::printf(
      "Figure 4: mirror-image decomposition by access direction:\n"
      "  forward sub-graph : %zu edges, cyclic: %s, wavefront depth %d\n"
      "  backward sub-graph: %zu edges, cyclic: %s, wavefront depth %d\n"
      "  -> each half is pipelined / wavefront-scheduled independently\n\n",
      dec.forward.edges().size(), dec.forward.has_cycle() ? "yes" : "no",
      dec.forward.wavefront_depth(), dec.backward.edges().size(),
      dec.backward.has_cycle() ? "yes" : "no",
      dec.backward.wavefront_depth());

  // The compiler-facing classification of the same loop.
  {
    auto file = fortran::parse_source(
        "program p\n"
        "real v(16, 16)\n"
        "integer i, j\n"
        "do i = 2, 15\n"
        "  do j = 2, 15\n"
        "    v(i, j) = 0.25 * (v(i - 1, j) + v(i + 1, j) &\n"
        "            + v(i, j - 1) + v(i, j + 1))\n"
        "  end do\n"
        "end do\n"
        "end\n");
    ir::FieldConfig cfg;
    cfg.grid_rank = 2;
    cfg.status_arrays = {"v"};
    DiagnosticEngine diags;
    const auto loops = ir::analyze_field_loops(file.units[0], cfg, diags);
    const auto plan = depend::analyze_self_dependence(
        loops[0], "v", partition::PartitionSpec{{4, 1}});
    std::printf(
        "Pre-compiler plan under 4x1: kind=%s, pipeline dims=%zu,\n"
        "  flow halo lo=%d (pipelined updated boundary), pre halo hi=%d\n"
        "  (old values exchanged before the sweep)\n",
        std::string(depend::self_dep_kind_name(plan.kind)).c_str(),
        plan.pipeline_dims.size(), plan.flow_halo.lo[0], plan.pre_halo.hi[0]);
  }

  benchmark::RegisterBenchmark("mirror_decompose/64x64",
                               [](benchmark::State& s) {
                                 const auto big = PointDepGraph::build(
                                     64, 64,
                                     {{-1, 0}, {1, 0}, {0, -1}, {0, 1}});
                                 for (auto _ : s) {
                                   benchmark::DoNotOptimize(
                                       big.mirror_decompose());
                                 }
                               });
  benchmark::RegisterBenchmark("wavefront_levels/64x64",
                               [](benchmark::State& s) {
                                 const auto big = PointDepGraph::build(
                                     64, 64, {{-1, 0}, {0, -1}});
                                 for (auto _ : s) {
                                   benchmark::DoNotOptimize(
                                       big.wavefront_levels());
                                 }
                               });
  return bench_util::finish(argc, argv);
}

// Figure 5: starting-point movement and synchronization-region
// identification in non-simple loops.
//
// Builds the figure's program skeleton (an A-type loop buried in
// nested loops, an R-type loop elsewhere) and prints where the region
// builder moves the starting point and which slots form the
// upper-bound region.
#include "bench_util.hpp"

#include "autocfd/depend/dep_pairs.hpp"
#include "autocfd/sync/regions.hpp"
#include "autocfd/sync/sync_plan.hpp"

namespace {

using namespace autocfd;

struct Built {
  fortran::SourceFile file;
  std::map<std::string, std::vector<ir::FieldLoop>> loops;
  depend::ProgramTrace trace;
  depend::DependenceSet deps;
  sync::InlinedProgram prog;
};

Built build(const std::string& src, const partition::PartitionSpec& spec) {
  Built b;
  b.file = fortran::parse_source(src);
  ir::FieldConfig cfg;
  cfg.grid_rank = 2;
  cfg.status_arrays = {"v", "w"};
  DiagnosticEngine diags;
  for (const auto& unit : b.file.units) {
    b.loops[unit.name] = ir::analyze_field_loops(unit, cfg, diags);
  }
  b.trace = depend::ProgramTrace::build(b.file, b.loops, diags);
  b.deps = depend::analyze_dependences(b.trace, spec, diags);
  b.prog = sync::InlinedProgram::build(b.file, b.trace, spec, diags);
  return b;
}

void show(const char* label, const Built& b) {
  std::printf("%s\n", label);
  for (const auto* pair : b.deps.sync_pairs()) {
    const auto region = sync::build_region(b.prog, *pair);
    std::printf("  dependence on '%s': upper-bound region = %zu slot(s):",
                pair->array.c_str(), region.slots.size());
    for (const int s : region.slots) {
      const auto& slot = b.prog.slot(s);
      std::printf(" [ord %d, depth %d]", s, slot.loop_depth);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench_util::heading(
      "Figure 5: start-point movement in non-simple loops");

  // The A-type loop sits two loop levels deep with no reader inside —
  // the start point hoists all the way out (Figure 5(a)).
  const std::string hoistable =
      "program p\n"
      "real v(16, 16), w(16, 16)\n"
      "integer i, j, r1, r2\n"
      "do r1 = 1, 3\n"
      "  do r2 = 1, 3\n"
      "    do i = 1, 16\n"
      "      do j = 1, 16\n"
      "        v(i, j) = 1.0\n"
      "      end do\n"
      "    end do\n"
      "  end do\n"
      "end do\n"
      "do i = 2, 15\n"
      "  do j = 2, 15\n"
      "    w(i, j) = v(i - 1, j) + v(i + 1, j)\n"
      "  end do\n"
      "end do\n"
      "end\n";
  auto b1 = build(hoistable, partition::PartitionSpec{{2, 1}});
  show("Case A: no reader inside the nest -> start hoists to top level:",
       b1);

  // With a reader inside the outer loop, the region is pinned inside
  // (Figure 5(b) case 1).
  const std::string pinned =
      "program p\n"
      "real v(16, 16), w(16, 16)\n"
      "integer i, j, r1\n"
      "do r1 = 1, 3\n"
      "  do i = 1, 16\n"
      "    do j = 1, 16\n"
      "      v(i, j) = 1.0\n"
      "    end do\n"
      "  end do\n"
      "  do i = 2, 15\n"
      "    do j = 2, 15\n"
      "      w(i, j) = v(i - 1, j)\n"
      "    end do\n"
      "  end do\n"
      "end do\n"
      "end\n";
  auto b2 = build(pinned, partition::PartitionSpec{{2, 1}});
  show("\nCase B: reader inside the loop -> region stays inside (depth 1):",
       b2);

  benchmark::RegisterBenchmark("build_region", [&](benchmark::State& s) {
    const auto* pair = b1.deps.sync_pairs()[0];
    for (auto _ : s) {
      benchmark::DoNotOptimize(sync::build_region(b1.prog, *pair));
    }
  });
  return bench_util::finish(argc, argv);
}

// Figure 6: combining synchronization points — the paper's minimal
// strategy (b) versus the naive pairwise strategy (c).
//
// Rebuilds the figure's six upper-bound regions, runs both combiners
// (2 points vs 3 points), and reports the same comparison on the two
// full case-study programs.
#include "bench_util.hpp"

#include "autocfd/sync/combine.hpp"
#include "autocfd/sync/sync_plan.hpp"

namespace {

using namespace autocfd;

sync::SyncRegion region(int lo, int hi) {
  sync::SyncRegion r;
  for (int s = lo; s <= hi; ++s) r.slots.push_back(s);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench_util::heading("Figure 6: combining strategies");

  // A flat program providing the slot space of the figure.
  std::string flat = "program p\nreal x\n";
  for (int i = 0; i < 25; ++i) flat += "x = x + 1.0\n";
  flat += "end\n";
  auto file = fortran::parse_source(flat);
  DiagnosticEngine diags;
  std::map<std::string, std::vector<ir::FieldLoop>> no_loops;
  auto trace = depend::ProgramTrace::build(file, no_loops, diags);
  auto prog = sync::InlinedProgram::build(file, trace,
                                          partition::PartitionSpec{{2}},
                                          diags);

  std::vector<sync::SyncRegion> regions;
  regions.push_back(region(0, 10));
  regions.push_back(region(1, 9));
  regions.push_back(region(2, 14));
  regions.push_back(region(12, 20));
  regions.push_back(region(13, 19));
  regions.push_back(region(14, 18));

  const auto minimal = sync::combine_min(prog, regions);
  const auto pairwise = sync::combine_pairwise(prog, regions);
  std::printf(
      "Six upper-bound regions (as in the figure):\n"
      "  minimal strategy (Figure 6(b)) : %zu combined synchronizations\n"
      "  pairwise strategy (Figure 6(c)): %zu combined synchronizations\n",
      minimal.size(), pairwise.size());
  for (std::size_t i = 0; i < minimal.size(); ++i) {
    std::printf("  group %zu: %zu members, intersection [%d, %d]\n", i + 1,
                minimal[i].members.size(), minimal[i].intersection.front(),
                minimal[i].intersection.back());
  }

  // The comparison on the real case studies.
  std::printf("\nOn the case studies (min / pairwise / none):\n");
  struct App {
    const char* name;
    std::string src;
    const char* part;
  };
  cfd::AerofoilParams ap;
  cfd::SprayerParams sp;
  for (const App& app : {App{"aerofoil 4x1x1", cfd::aerofoil_source(ap),
                            "4x1x1"},
                        App{"sprayer  4x4", cfd::sprayer_source(sp), "4x4"}}) {
    DiagnosticEngine d;
    auto dirs = core::Directives::extract(app.src, d);
    dirs.partition = partition::PartitionSpec::parse(app.part);
    const int mn =
        core::parallelize(app.src, dirs, sync::CombineStrategy::Min)
            ->report.syncs_after;
    const int pw =
        core::parallelize(app.src, dirs, sync::CombineStrategy::Pairwise)
            ->report.syncs_after;
    const int no =
        core::parallelize(app.src, dirs, sync::CombineStrategy::None)
            ->report.syncs_after;
    std::printf("  %-16s: %3d / %3d / %3d\n", app.name, mn, pw, no);
  }

  benchmark::RegisterBenchmark("combine_min/6regions",
                               [&](benchmark::State& s) {
                                 for (auto _ : s) {
                                   benchmark::DoNotOptimize(
                                       sync::combine_min(prog, regions));
                                 }
                               });
  return bench_util::finish(argc, argv);
}

// Figure 7: upper-bound synchronization regions in branch structures.
//
// Reconstructs the figure's five cases — goto, if-else with and
// without a reader, a movable start inside a branch, and the
// opposite-branch reader of case (e) — and prints the region each one
// produces.
#include "bench_util.hpp"

#include "autocfd/sync/regions.hpp"
#include "autocfd/sync/sync_plan.hpp"

namespace {

using namespace autocfd;

struct Built {
  fortran::SourceFile file;
  std::map<std::string, std::vector<ir::FieldLoop>> loops;
  depend::ProgramTrace trace;
  depend::DependenceSet deps;
  sync::InlinedProgram prog;
};

Built build(const std::string& src) {
  Built b;
  b.file = fortran::parse_source(src);
  ir::FieldConfig cfg;
  cfg.grid_rank = 2;
  cfg.status_arrays = {"v", "w"};
  DiagnosticEngine diags;
  for (const auto& unit : b.file.units) {
    b.loops[unit.name] = ir::analyze_field_loops(unit, cfg, diags);
  }
  const partition::PartitionSpec spec{{2, 1}};
  b.trace = depend::ProgramTrace::build(b.file, b.loops, diags);
  b.deps = depend::analyze_dependences(b.trace, spec, diags);
  b.prog = sync::InlinedProgram::build(b.file, b.trace, spec, diags);
  return b;
}

const char* kWriter =
    "do i = 1, 16\n"
    "  do j = 1, 16\n"
    "    v(i, j) = 1.0\n"
    "  end do\n"
    "end do\n";
const char* kReader =
    "do i = 2, 15\n"
    "  do j = 2, 15\n"
    "    w(i, j) = v(i - 1, j)\n"
    "  end do\n"
    "end do\n";
const char* kHeader =
    "program p\n"
    "real v(16, 16), w(16, 16)\n"
    "integer i, j\n"
    "real x\n";

void show(const char* label, const std::string& mid, bool writer_in_branch) {
  std::string src = kHeader;
  if (writer_in_branch) {
    src += mid;
  } else {
    src += kWriter;
    src += mid;
    src += kReader;
  }
  src += "end\n";
  auto b = build(src);
  const auto pairs = b.deps.sync_pairs();
  if (pairs.empty()) {
    std::printf("  %-44s -> no pair (unexpected)\n", label);
    return;
  }
  const auto region = sync::build_region(b.prog, *pairs[0]);
  std::printf("  %-44s -> %zu slot(s), first at depth %d\n", label,
              region.slots.size(),
              region.valid() ? b.prog.slot(region.first_slot()).loop_depth
                             : -1);
}

}  // namespace

int main(int argc, char** argv) {
  bench_util::heading("Figure 7: regions in branch structures");

  show("(a) goto between writer and reader",
       "x = 1.0\ngoto 50\nx = 2.0\n50 continue\n", false);
  show("(b) if-else containing the reader ends region",
       "x = 1.0\nif (x .gt. 0.0) then\n"
       "  do i = 2, 15\n    do j = 2, 15\n      w(i, j) = v(i + 1, j)\n"
       "    end do\n  end do\nend if\n",
       false);
  show("(c) if-else without reader is excluded",
       "if (x .gt. 0.0) then\n  x = 2.0\nelse\n  x = 3.0\nend if\n", false);

  // (d): the writer is inside the branch; the start hoists out.
  {
    std::string mid = "if (x .gt. 0.0) then\n";
    mid += kWriter;
    mid += "end if\nx = 2.0\n";
    mid += kReader;
    show("(d) start inside a branch hoists out", mid, true);
  }
  // (e): a reader in the *opposite* branch does not pin the start.
  {
    std::string mid = "if (x .gt. 0.0) then\n";
    mid += kWriter;
    mid += "else\n";
    mid += "  do i = 2, 15\n    do j = 2, 15\n"
           "      w(i, j) = v(i + 1, j)\n    end do\n  end do\n";
    mid += "end if\nx = 2.0\n";
    mid += kReader;
    show("(e) reader in opposite branch does not pin", mid, true);
  }

  bench_util::note(
      "\nDepth 0 means the synchronization may be placed at the top level\n"
      "of the program — the start point escaped the branch/loop as the\n"
      "figure prescribes.");

  benchmark::RegisterBenchmark("branch_region", [](benchmark::State& s) {
    std::string src = kHeader;
    src += kWriter;
    src += "if (x .gt. 0.0) then\n  x = 2.0\nelse\n  x = 3.0\nend if\n";
    src += kReader;
    src += "end\n";
    auto b = build(src);
    const auto* pair = b.deps.sync_pairs()[0];
    for (auto _ : s) {
      benchmark::DoNotOptimize(sync::build_region(b.prog, *pair));
    }
  });
  return bench_util::finish(argc, argv);
}

// Figure 8: combining synchronizations from multiple subroutines.
//
// Rebuilds the figure's scenario — a main program calling subroutines
// whose bodies end with A-type loops, followed by a reader in main —
// and shows the three per-subroutine synchronizations hoisting out of
// their callees and combining into a single point in the main program.
#include "bench_util.hpp"

#include "autocfd/sync/sync_plan.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;

  bench_util::heading("Figure 8: interprocedural combining");

  std::string src =
      "program p\n"
      "real v1(16, 16), v2(16, 16), v3(16, 16), w(16, 16)\n"
      "common /f/ v1, v2, v3, w\n"
      "integer i, j\n"
      "call suba\n"
      "call subb\n"
      "call subc\n"
      "do i = 2, 15\n"
      "  do j = 2, 15\n"
      "    w(i, j) = v1(i - 1, j) + v2(i + 1, j) + v3(i, j - 1)\n"
      "  end do\n"
      "end do\n"
      "end\n";
  for (const auto& [name, arr] :
       std::vector<std::pair<const char*, const char*>>{
           {"suba", "v1"}, {"subb", "v2"}, {"subc", "v3"}}) {
    src += std::string("subroutine ") + name + "\n";
    src += "real v1(16, 16), v2(16, 16), v3(16, 16), w(16, 16)\n";
    src += "common /f/ v1, v2, v3, w\n";
    src += "integer i, j\n";
    src += "do i = 1, 16\n  do j = 1, 16\n    ";
    src += std::string(arr) + "(i, j) = 1.0\n";
    src += "  end do\nend do\nreturn\nend\n";
  }

  DiagnosticEngine diags;
  auto file = fortran::parse_source(src);
  ir::FieldConfig cfg;
  cfg.grid_rank = 2;
  cfg.status_arrays = {"v1", "v2", "v3", "w"};
  std::map<std::string, std::vector<ir::FieldLoop>> loops;
  for (const auto& unit : file.units) {
    loops[unit.name] = ir::analyze_field_loops(unit, cfg, diags);
  }
  const partition::PartitionSpec spec{{2, 2}};
  auto trace = depend::ProgramTrace::build(file, loops, diags);
  auto deps = depend::analyze_dependences(trace, spec, diags);
  auto prog = sync::InlinedProgram::build(file, trace, spec, diags);
  auto plan = sync::plan_synchronization(prog, deps, spec);

  std::printf(
      "Main calls suba, subb, subc (each ends with an A-type loop);\n"
      "an R-type loop in main reads all three arrays.\n\n"
      "  synchronizations without optimization : %d (one per subroutine)\n"
      "  after hoisting out of the subroutines\n"
      "  and combining in the main program     : %d\n",
      plan.syncs_before(), plan.syncs_after());
  for (const auto& point : plan.points) {
    const auto& slot = prog.slot(point.chosen_slot);
    const auto halos = sync::SyncPlan::halos_for(point);
    std::printf(
        "  combined point: call depth %d (0 = main program), carries %zu "
        "arrays in one aggregated message:",
        slot.call_depth(), halos.size());
    for (const auto& h : halos) std::printf(" %s", h.array.c_str());
    std::printf("\n");
  }

  benchmark::RegisterBenchmark("interproc_plan", [&](benchmark::State& s) {
    for (auto _ : s) {
      benchmark::DoNotOptimize(sync::plan_synchronization(prog, deps, spec));
    }
  });
  return bench_util::finish(argc, argv);
}

// Critical-path ablation of the synchronization combining strategies.
//
// The paper's Table 1 argues for minimal-intersection combining by
// counting synchronization points; this figure makes the runtime
// argument directly. Each strategy's run is traced, the happens-before
// critical path is extracted, and the chains are compared: combining
// removes rendezvous from the path, so Min's critical path is no
// longer than Pairwise's, which is no longer than None's.
#include "bench_util.hpp"

#include "autocfd/trace/check.hpp"
#include "autocfd/trace/critical_path.hpp"
#include "autocfd/trace/recorder.hpp"

namespace {

using namespace autocfd;

const char* strategy_name(sync::CombineStrategy s) {
  switch (s) {
    case sync::CombineStrategy::Min: return "Min";
    case sync::CombineStrategy::Pairwise: return "Pairwise";
    case sync::CombineStrategy::None: return "None";
  }
  return "?";
}

struct StrategyRun {
  sync::CombineStrategy strategy;
  int syncs_after = 0;
  double elapsed = 0.0;
  trace::Trace trace;
  trace::CriticalPath path;
  bool clean = false;
};

StrategyRun run_strategy(const std::string& source,
                         const core::Directives& dirs,
                         sync::CombineStrategy strategy) {
  StrategyRun out;
  out.strategy = strategy;
  auto program = core::parallelize(source, dirs, strategy);
  out.syncs_after = program->report.syncs_after;
  trace::TraceRecorder recorder;
  const auto result =
      program->run(mp::MachineConfig::pentium_ethernet_1999(), &recorder);
  out.elapsed = result.elapsed;
  out.trace = recorder.take();
  out.path = trace::critical_path(out.trace);
  out.clean = trace::communication_clean(trace::check_trace(out.trace));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  cfd::AerofoilParams params;
  params.n1 = 48;  // laptop-friendly subset of the paper's 99x41x13
  params.n2 = 20;
  params.n3 = 8;
  params.frames = 2;
  const char* part = "2x2x1";

  const auto source = cfd::aerofoil_source(params);
  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(source, diags);
  dirs.partition = partition::PartitionSpec::parse(part);

  bench_util::heading(
      "Critical path vs combining strategy: aerofoil 48x20x8, " +
      std::string(part));
  std::printf("%-10s %7s %12s %12s %9s %10s %12s %7s %7s\n", "strategy",
              "syncs", "elapsed (s)", "path (s)", "compute", "transfer",
              "collective", "steps", "clean");

  std::vector<StrategyRun> runs;
  for (const auto strategy :
       {sync::CombineStrategy::Min, sync::CombineStrategy::Pairwise,
        sync::CombineStrategy::None}) {
    runs.push_back(run_strategy(source, dirs, strategy));
    const auto& r = runs.back();
    std::printf("%-10s %7d %12.4f %12.4f %9.4f %10.4f %12.4f %7zu %7s\n",
                strategy_name(strategy), r.syncs_after, r.elapsed,
                r.path.length, r.path.compute, r.path.transfer,
                r.path.collective, r.path.steps.size(),
                r.clean ? "yes" : "NO");
    const std::string key = std::string("aerofoil.") + part + "." +
                            strategy_name(strategy);
    bench_util::record(key + ".critical_path_s", r.path.length);
    bench_util::record(key + ".elapsed_s", r.elapsed);
    bench_util::record(key + ".syncs_after", r.syncs_after);
  }

  const auto& min = runs[0];
  const auto& pairwise = runs[1];
  const auto& none = runs[2];
  const bool ordered = min.path.length <= pairwise.path.length + 1e-12 &&
                       pairwise.path.length <= none.path.length + 1e-12;
  bench_util::note(
      "\nShape checks: every path length equals its run's elapsed time\n"
      "(the chain realizes the slowest rank's clock), and combining\n"
      "shortens the chain: Min <= Pairwise <= None " +
      std::string(ordered ? "holds." : "VIOLATED."));
  for (const auto& r : runs) {
    const double err = std::abs(r.path.length - r.elapsed);
    if (err > 1e-9) {
      std::printf("WARNING: %s path-vs-elapsed mismatch: %.3g s\n",
                  strategy_name(r.strategy), err);
    }
  }
  bench_util::record("aerofoil.ordering_holds", ordered ? 1.0 : 0.0);

  // Microbenchmark: path extraction itself, on the densest trace.
  benchmark::RegisterBenchmark(
      "critical_path/aerofoil/none",
      [trace = none.trace](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(trace::critical_path(trace));
        }
      });
  benchmark::RegisterBenchmark(
      "rank_breakdown/aerofoil/none",
      [trace = none.trace](benchmark::State& state) {
        for (auto _ : state) {
          benchmark::DoNotOptimize(trace::rank_breakdown(trace));
        }
      });
  return bench_util::finish(argc, argv);
}

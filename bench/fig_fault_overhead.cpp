// Fault-injection overhead figure.
//
// The hardening (checksums, watchdog bookkeeping, fault-hook call
// sites) is always on; this figure quantifies what it costs. Three
// configurations of the same aerofoil run are compared:
//   clean      — no fault hook installed,
//   empty-hook — a FaultInjector with an empty plan (hook call cost),
//   jitter     — a timing-only chaos schedule.
// Virtual elapsed time must be *identical* for clean and empty-hook
// (zero behavior change), and jitter must leave every gathered status
// array bit-identical to the clean run. Host-time overhead is measured
// by the registered microbenchmarks and recorded as a ratio.
#include "bench_util.hpp"

#include <chrono>
#include <functional>

#include "autocfd/fault/fault.hpp"
#include "autocfd/trace/recorder.hpp"

namespace {

using namespace autocfd;

double wall_seconds_of(const std::function<void()>& fn, int reps) {
  // Best-of-N to damp scheduler noise.
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  cfd::AerofoilParams params;
  params.n1 = 24;
  params.n2 = 10;
  params.n3 = 4;
  params.frames = 2;
  const char* part = "2x2x1";

  const auto source = cfd::aerofoil_source(params);
  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(source, diags);
  dirs.partition = partition::PartitionSpec::parse(part);
  const auto machine = mp::MachineConfig::pentium_ethernet_1999();
  auto program = core::parallelize(source, dirs);

  bench_util::heading("Fault-injection overhead: aerofoil 24x10x4, " +
                      std::string(part));

  const auto clean = program->run(machine);

  fault::FaultInjector empty_hook{fault::FaultPlan{}};
  codegen::SpmdRunOptions empty_opts;
  empty_opts.faults = &empty_hook;
  const auto with_empty = program->run(machine, empty_opts);

  auto jitter_plan = fault::FaultPlan::parse("seed=9,jitter=0.5:0.02");
  fault::FaultInjector jitter_hook(jitter_plan);
  codegen::SpmdRunOptions jitter_opts;
  jitter_opts.faults = &jitter_hook;
  const auto with_jitter = program->run(machine, jitter_opts);

  const bool elapsed_identical = clean.elapsed == with_empty.elapsed;
  bool results_identical = true;
  for (const auto& [name, values] : clean.gathered) {
    const auto& other = with_jitter.gathered.at(name);
    results_identical =
        results_identical && values.size() == other.size();
    for (std::size_t i = 0; results_identical && i < values.size(); ++i) {
      results_identical = values[i] == other[i];
    }
  }

  std::printf("%-12s %14s %10s\n", "config", "elapsed (s)", "delayed");
  std::printf("%-12s %14.6f %10s\n", "clean", clean.elapsed, "-");
  std::printf("%-12s %14.6f %10lld\n", "empty-hook", with_empty.elapsed,
              empty_hook.counters().delayed);
  std::printf("%-12s %14.6f %10lld\n", "jitter", with_jitter.elapsed,
              jitter_hook.counters().delayed);
  bench_util::note(
      std::string("\nEmpty hook leaves virtual time identical: ") +
      (elapsed_identical ? "yes" : "NO — hardening changed behavior!"));
  bench_util::note(
      std::string("Jitter schedule leaves results bit-identical: ") +
      (results_identical ? "yes" : "NO — timing fault changed results!"));

  // Host-time overhead of the always-on hardening path: the same run
  // with and without a (no-op) hook installed.
  const auto wall_clean =
      wall_seconds_of([&] { (void)program->run(machine); }, 3);
  const auto wall_hooked =
      wall_seconds_of([&] { (void)program->run(machine, empty_opts); }, 3);
  const double overhead = wall_hooked / wall_clean - 1.0;
  std::printf("\nhost wall time: clean %.4f s, empty-hook %.4f s "
              "(overhead %+.2f%%)\n",
              wall_clean, wall_hooked, overhead * 100.0);

  bench_util::record("aerofoil.clean.elapsed_s", clean.elapsed);
  bench_util::record("aerofoil.empty_hook.elapsed_s", with_empty.elapsed);
  bench_util::record("aerofoil.jitter.elapsed_s", with_jitter.elapsed);
  bench_util::record("aerofoil.elapsed_identical", elapsed_identical ? 1 : 0);
  bench_util::record("aerofoil.results_identical", results_identical ? 1 : 0);
  bench_util::record("aerofoil.empty_hook_overhead_ratio",
                     wall_hooked / wall_clean);
  bench_util::record("aerofoil.jitter.delayed",
                     static_cast<double>(jitter_hook.counters().delayed));

  benchmark::RegisterBenchmark("spmd_run/clean", [&](benchmark::State& s) {
    for (auto _ : s) benchmark::DoNotOptimize(program->run(machine));
  });
  benchmark::RegisterBenchmark("spmd_run/empty_hook",
                               [&](benchmark::State& s) {
                                 for (auto _ : s) {
                                   benchmark::DoNotOptimize(
                                       program->run(machine, empty_opts));
                                 }
                               });
  benchmark::RegisterBenchmark("spmd_run/jitter",
                               [&](benchmark::State& s) {
                                 for (auto _ : s) {
                                   benchmark::DoNotOptimize(
                                       program->run(machine, jitter_opts));
                                 }
                               });
  benchmark::RegisterBenchmark(
      "checksum/4KiB", [](benchmark::State& s) {
        const std::vector<double> payload(512, 1.25);
        for (auto _ : s) {
          benchmark::DoNotOptimize(mp::Cluster::payload_checksum(payload));
        }
      });
  return bench_util::finish(argc, argv);
}

// Interpreter engine throughput: tree-walker vs bytecode VM.
//
// Both case-study applications run sequentially under the two
// statement executors. The bytecode engine must (a) produce
// bit-identical scalars, arrays and flop counts — checked here on the
// full final environment, not just the status arrays — and (b) beat
// the tree-walker by at least 3x on host wall time (Release build),
// since executed kernel throughput is what every table in the paper
// reproduction ultimately measures.
#include "bench_util.hpp"

#include <chrono>
#include <cstring>
#include <functional>

namespace {

using namespace autocfd;

double wall_seconds_of(const std::function<void()>& fn, int reps) {
  // Best-of-N to damp scheduler noise.
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Best-of-N wall time of one sequential execution (allocation +
/// interpretation; parsing and slot resolution are excluded — they are
/// compile-time, not kernel throughput).
double wall_of_engine(const interp::ProgramImage& image,
                      interp::EngineKind engine, int reps) {
  return wall_seconds_of(
      [&] {
        DiagnosticEngine diags;
        interp::Env env(image);
        env.allocate_arrays(image, diags);
        throw_if_errors(diags, "bench allocation");
        interp::Interpreter interp(image, {}, engine);
        interp.run(env);
        benchmark::DoNotOptimize(env.scalars.data());
      },
      reps);
}

/// Runs `source` under both engines and reports wall times, speedup
/// and bit-identity of the complete final environment.
void compare_engines(const std::string& app, const std::string& source) {
  const auto tree = interp::run_sequential(source, interp::EngineKind::Tree);
  const auto byte_ =
      interp::run_sequential(source, interp::EngineKind::Bytecode);

  bool identical = tree->flops == byte_->flops &&
                   tree->env.scalars == byte_->env.scalars &&
                   tree->env.arrays.size() == byte_->env.arrays.size();
  for (std::size_t a = 0; identical && a < tree->env.arrays.size(); ++a) {
    const auto& ta = tree->env.arrays[a].data;
    const auto& ba = byte_->env.arrays[a].data;
    identical = ta.size() == ba.size() &&
                (ta.empty() ||
                 std::memcmp(ta.data(), ba.data(),
                             ta.size() * sizeof(double)) == 0);
  }

  const double wall_tree =
      wall_of_engine(tree->image, interp::EngineKind::Tree, 3);
  const double wall_byte =
      wall_of_engine(tree->image, interp::EngineKind::Bytecode, 3);
  const double speedup = wall_tree / wall_byte;

  DiagnosticEngine diags;
  interp::Env env(tree->image);
  env.allocate_arrays(tree->image, diags);
  interp::Interpreter interp(tree->image, {}, interp::EngineKind::Bytecode);
  interp.run(env);
  const auto stats = interp.engine_stats();

  std::printf("%-10s %12.4f %12.4f %9.2fx  %s\n", app.c_str(), wall_tree,
              wall_byte, speedup, identical ? "bit-identical" : "DIVERGED");
  std::printf(
      "%-10s kernels %lld, walks %lld, cache hits %lld, rejects %lld\n", "",
      stats.kernels_compiled + stats.stmts_compiled, stats.walks_reduced,
      stats.cache_hits, stats.compile_rejects);

  bench_util::record(app + ".tree.wall_s", wall_tree);
  bench_util::record(app + ".bytecode.wall_s", wall_byte);
  bench_util::record(app + ".speedup", speedup);
  bench_util::record(app + ".identical", identical ? 1 : 0);
  bench_util::record(app + ".kernels_compiled",
                     static_cast<double>(stats.kernels_compiled));
  bench_util::record(app + ".walks_reduced",
                     static_cast<double>(stats.walks_reduced));
  bench_util::record(app + ".cache_hits",
                     static_cast<double>(stats.cache_hits));
}

}  // namespace

int main(int argc, char** argv) {
  cfd::AerofoilParams aero;
  aero.n1 = 40;
  aero.n2 = 18;
  aero.n3 = 6;
  aero.frames = 2;

  cfd::SprayerParams spray;
  spray.nx = 160;
  spray.ny = 60;
  spray.frames = 3;

  bench_util::heading(
      "Interpreter engine throughput: tree-walker vs bytecode VM");
  bench_util::note("Target: bytecode >= 3x faster, results bit-identical.\n");
  std::printf("%-10s %12s %12s %10s\n", "app", "tree (s)", "bytecode (s)",
              "speedup");

  const auto aero_source = cfd::aerofoil_source(aero);
  const auto spray_source = cfd::sprayer_source(spray);
  compare_engines("aerofoil", aero_source);
  compare_engines("sprayer", spray_source);

  // Microbenchmarks over the aerofoil image, one per engine.
  static auto aero_seq = interp::run_sequential(aero_source);
  for (const auto engine :
       {interp::EngineKind::Tree, interp::EngineKind::Bytecode}) {
    const std::string name =
        std::string("seq_run/") + std::string(engine_kind_name(engine));
    benchmark::RegisterBenchmark(name.c_str(), [engine](benchmark::State& s) {
      for (auto _ : s) {
        DiagnosticEngine diags;
        interp::Env env(aero_seq->image);
        env.allocate_arrays(aero_seq->image, diags);
        interp::Interpreter interp(aero_seq->image, {}, engine);
        interp.run(env);
        benchmark::DoNotOptimize(env.scalars.data());
      }
    });
  }
  return bench_util::finish(argc, argv);
}

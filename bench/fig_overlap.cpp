// Communication/computation overlap figure.
//
// The generated SPMD programs communicate with blocking send/receive —
// the paper notes true overlap was not achievable with its mirror-image
// sweeps. This figure quantifies the opportunity anyway, from the
// recorded event trace: a receive's idle wait could be hidden by
// initiating the transfer at the start of the compute span that
// precedes it (the classic irecv-prefetch transformation), so the
// hideable portion of each wait is bounded by both the wait itself and
// the compute accumulated since the rank's previous communication
// operation. An overlap-capable runtime is then modeled first-order:
// every rank's final clock shrinks by the wait it hid, cross-rank
// re-timing ignored (an optimistic bound, stated as such).
//
// Reported per app x partition:
//   blocking_elapsed_s  measured run (slowest rank's virtual clock)
//   overlap_elapsed_s   modeled clock with hideable waits removed
//   hidden_s/exposed_s  receive wait the model hides / cannot hide
//   hiding_ratio        hidden / (hidden + exposed)
//   speedup             blocking / overlap (modeled)
//   identical           gathered status arrays bit-identical to the
//                       sequential reference
// Plus a timing-only fault run (overlap math must not disturb
// correctness accounting under chaos) and a tree-vs-bytecode engine
// identity check.
#include "bench_util.hpp"

#include <algorithm>
#include <cmath>

#include "autocfd/fault/fault.hpp"
#include "autocfd/trace/recorder.hpp"

namespace {

using namespace autocfd;

struct OverlapModel {
  double hidden = 0.0;           // hideable receive wait, all ranks
  double exposed = 0.0;          // receive wait no window covers
  double overlap_elapsed = 0.0;  // modeled slowest-rank clock
};

/// Walks each rank's event stream in program order. `window` is the
/// busy time (compute, plus outbound sends — the network is full
/// duplex, an incoming transfer progresses during them) accumulated
/// since the rank last consumed a wait, i.e. the time an
/// early-initiated transfer could have progressed. Every receive hides
/// min(wait, window) of its idle time and resets the window (the
/// compute that follows depends on the received halo). Collective
/// waits are rendezvous, not transfers: never hidden, and they reset
/// the window for everyone.
OverlapModel model_overlap(const trace::Trace& trace) {
  OverlapModel m;
  for (const auto& events : trace.per_rank) {
    double window = 0.0, hidden_r = 0.0, clock = 0.0;
    for (const auto& ev : events) {
      switch (ev.kind) {
        case mp::EventKind::Compute:
        case mp::EventKind::Send:
          window += ev.t1 - ev.t0;
          break;
        case mp::EventKind::Recv: {
          const double h = std::min(ev.wait, window);
          hidden_r += h;
          m.exposed += ev.wait - h;
          window = 0.0;
          break;
        }
        case mp::EventKind::AllReduce:
        case mp::EventKind::Barrier:
          window = 0.0;
          break;
        default:
          break;
      }
      clock = std::max(clock, ev.t1);
    }
    m.hidden += hidden_r;
    m.overlap_elapsed = std::max(m.overlap_elapsed, clock - hidden_r);
  }
  return m;
}

bool arrays_identical(const codegen::SpmdRunResult& par,
                      const codegen::SeqRunResult& seq,
                      const std::vector<std::string>& status) {
  for (const auto& name : status) {
    const auto sit = seq.arrays.find(name);
    const auto pit = par.gathered.find(name);
    if (sit == seq.arrays.end() || pit == par.gathered.end()) return false;
    if (sit->second.size() != pit->second.size()) return false;
    for (std::size_t i = 0; i < sit->second.size(); ++i) {
      if (sit->second[i] != pit->second[i]) return false;
    }
  }
  return true;
}

void run_config(const std::string& app, const std::string& source,
                const codegen::SeqRunResult& seq, const std::string& part,
                int nranks) {
  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(source, diags);
  dirs.partition = partition::PartitionSpec::parse(part);
  auto program = core::parallelize(source, dirs);

  trace::TraceRecorder recorder;
  codegen::SpmdRunOptions opts;
  opts.sink = &recorder;
  const auto par =
      program->run(mp::MachineConfig::pentium_ethernet_1999(), opts);
  const auto model = model_overlap(recorder.trace());

  const double total_wait = model.hidden + model.exposed;
  const double ratio = total_wait > 0.0 ? model.hidden / total_wait : 0.0;
  const double speedup = model.overlap_elapsed > 0.0
                             ? par.elapsed / model.overlap_elapsed
                             : 1.0;
  const bool identical = arrays_identical(par, seq, dirs.status_arrays);

  std::printf("%-10s %-7s %12.6f %12.6f %9.4f %9.4f %7.1f%% %8.3f %6s\n",
              app.c_str(), part.c_str(), par.elapsed, model.overlap_elapsed,
              model.hidden, model.exposed, ratio * 100.0, speedup,
              identical ? "yes" : "NO");

  const std::string prefix = app + ".p" + std::to_string(nranks);
  bench_util::record(prefix + ".blocking_elapsed_s", par.elapsed);
  bench_util::record(prefix + ".overlap_elapsed_s", model.overlap_elapsed);
  bench_util::record(prefix + ".hidden_s", model.hidden);
  bench_util::record(prefix + ".exposed_s", model.exposed);
  bench_util::record(prefix + ".hiding_ratio", ratio);
  bench_util::record(prefix + ".speedup", speedup);
  bench_util::record(prefix + ".identical", identical ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  cfd::AerofoilParams aero;
  aero.n1 = 24;
  aero.n2 = 10;
  aero.n3 = 4;
  aero.frames = 2;

  cfd::SprayerParams spray;
  spray.nx = 160;
  spray.ny = 60;
  spray.frames = 3;

  const auto aero_source = cfd::aerofoil_source(aero);
  const auto spray_source = cfd::sprayer_source(spray);

  DiagnosticEngine diags;
  const auto aero_status =
      core::Directives::extract(aero_source, diags).status_arrays;
  const auto spray_status =
      core::Directives::extract(spray_source, diags).status_arrays;
  const auto aero_seq = bench_util::run_seq(aero_source, aero_status);
  const auto spray_seq = bench_util::run_seq(spray_source, spray_status);

  bench_util::heading(
      "Communication/computation overlap: trace-modeled hiding");
  bench_util::note(
      "Hideable wait per receive = min(wait, compute since the rank's\n"
      "last communication op); overlap elapsed is the first-order model\n"
      "(per-rank clock minus hidden wait, cross-rank re-timing "
      "ignored).\n");
  std::printf("%-10s %-7s %12s %12s %9s %9s %8s %8s %6s\n", "app", "part",
              "blocking (s)", "overlap (s)", "hidden", "exposed", "hide%",
              "speedup", "ident");

  run_config("aerofoil", aero_source, aero_seq, "2x1x1", 2);
  run_config("aerofoil", aero_source, aero_seq, "2x2x1", 4);
  run_config("aerofoil", aero_source, aero_seq, "2x2x2", 8);
  run_config("sprayer", spray_source, spray_seq, "2x1", 2);
  run_config("sprayer", spray_source, spray_seq, "2x2", 4);
  run_config("sprayer", spray_source, spray_seq, "4x2", 8);

  // Overlap accounting under timing-only chaos: delays reshuffle the
  // windows but must never disturb bit-identity.
  bench_util::heading("Overlap under timing-only faults");
  {
    DiagnosticEngine fd;
    auto dirs = core::Directives::extract(aero_source, fd);
    dirs.partition = partition::PartitionSpec::parse("2x2x1");
    auto program = core::parallelize(aero_source, dirs);
    auto plan = fault::FaultPlan::parse("seed=7,jitter=0.4:0.03");
    fault::FaultInjector injector(plan);
    trace::TraceRecorder recorder;
    codegen::SpmdRunOptions opts;
    opts.sink = &recorder;
    opts.faults = &injector;
    const auto par =
        program->run(mp::MachineConfig::pentium_ethernet_1999(), opts);
    const bool identical = arrays_identical(par, aero_seq, aero_status);
    std::printf("aerofoil 2x2x1 under '%s': elapsed %.6f s, %lld "
                "delayed, identical %s\n",
                injector.plan().str().c_str(), par.elapsed,
                injector.counters().delayed, identical ? "yes" : "NO");
    bench_util::record("fault.aerofoil.p4.elapsed_s", par.elapsed);
    bench_util::record(
        "fault.aerofoil.p4.delayed",
        static_cast<double>(injector.counters().delayed));
    bench_util::record("fault.aerofoil.p4.identical", identical ? 1 : 0);
  }

  // Engine equivalence: the model reads the trace, the trace depends
  // only on virtual time, and virtual time is engine-invariant — so
  // both engines must gather bit-identical arrays.
  bench_util::heading("Engine equivalence with overlap accounting on");
  for (const auto& [app, source, status] :
       {std::tuple<std::string, const std::string*,
                   const std::vector<std::string>*>{
            "aerofoil", &aero_source, &aero_status},
        {"sprayer", &spray_source, &spray_status}}) {
    DiagnosticEngine ed;
    auto dirs = core::Directives::extract(*source, ed);
    auto program = core::parallelize(*source, dirs);
    const auto machine = mp::MachineConfig::pentium_ethernet_1999();
    codegen::SpmdRunOptions tree_opts;
    tree_opts.engine = interp::EngineKind::Tree;
    const auto tree_run = program->run(machine, tree_opts);
    const auto byte_run = program->run(machine);
    bool identical = tree_run.elapsed == byte_run.elapsed;
    for (const auto& name : *status) {
      const auto tit = tree_run.gathered.find(name);
      const auto bit = byte_run.gathered.find(name);
      if (tit == tree_run.gathered.end() ||
          bit == byte_run.gathered.end() ||
          tit->second != bit->second) {
        identical = false;
      }
    }
    std::printf("%-10s tree vs bytecode identical: %s\n", app.c_str(),
                identical ? "yes" : "NO");
    bench_util::record("engines." + app + ".identical", identical ? 1 : 0);
  }

  // Microbenchmarks: the model walk itself, and the run it feeds on.
  {
    DiagnosticEngine bd;
    auto dirs = core::Directives::extract(aero_source, bd);
    dirs.partition = partition::PartitionSpec::parse("2x2x1");
    static auto program = core::parallelize(aero_source, dirs);
    static trace::TraceRecorder recorder;
    codegen::SpmdRunOptions opts;
    opts.sink = &recorder;
    (void)program->run(mp::MachineConfig::pentium_ethernet_1999(), opts);
    benchmark::RegisterBenchmark("overlap_model/aerofoil_2x2x1",
                                 [](benchmark::State& s) {
                                   for (auto _ : s) {
                                     benchmark::DoNotOptimize(
                                         model_overlap(recorder.trace()));
                                   }
                                 });
    benchmark::RegisterBenchmark(
        "spmd_run/aerofoil_2x2x1", [](benchmark::State& s) {
          for (auto _ : s) {
            benchmark::DoNotOptimize(program->run(
                mp::MachineConfig::pentium_ethernet_1999()));
          }
        });
  }
  return bench_util::finish(argc, argv);
}

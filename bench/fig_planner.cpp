// Profile-guided planning figure: static heuristic vs planner.
//
// For each case study (aerofoil, sprayer) under each scenario (clean,
// straggler fault plan), the two-run workflow is executed end to end:
//   1. static run — the heuristic picks the partition; the run is
//      profiled into a unified run report;
//   2. plan — the planner re-scores every (partition x combine
//      strategy) candidate against the measured profile (and the fault
//      plan, when one is active) and emits a PlanFile;
//   3. planned run — the same program under the PlanFile's overrides
//      and the same scenario.
// The figure records static vs planned virtual elapsed time and the
// realized plan speedup, plus the planner's own predictions so the
// model can be tracked against reality. Planned results must stay
// bit-identical to the static run's gathered arrays.
#include "bench_util.hpp"

#include <memory>

#include "autocfd/fault/fault.hpp"
#include "autocfd/plan/planner.hpp"
#include "autocfd/prof/report.hpp"
#include "autocfd/trace/recorder.hpp"

namespace {

using namespace autocfd;

struct App {
  std::string name;
  std::string source;
};

struct Scenario {
  std::string name;
  std::string faults;  // FaultPlan spec, empty = clean
};

struct Outcome {
  codegen::SpmdRunResult run;
  prof::RunReport report;
  std::string partition;
};

const auto kMachine = mp::MachineConfig::pentium_ethernet_1999();

/// One profiled run: parallelize `source` (optionally under plan
/// overrides), execute under the scenario's fault plan, and join the
/// trace into a run report the planner can consume.
Outcome run_profiled(const App& app, const Scenario& scenario,
                     const core::PlanOverrides* overrides) {
  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(app.source, diags);
  dirs.nprocs = 4;
  obs::ObsContext obs;
  auto program = core::parallelize(app.source, dirs,
                                   sync::CombineStrategy::Min, &obs,
                                   overrides);
  fault::FaultInjector injector{scenario.faults.empty()
                                    ? fault::FaultPlan{}
                                    : fault::FaultPlan::parse(
                                          scenario.faults)};
  trace::TraceRecorder recorder;
  codegen::SpmdRunOptions run_opts;
  run_opts.sink = &recorder;
  run_opts.profile = true;
  if (!scenario.faults.empty()) run_opts.faults = &injector;
  Outcome out;
  out.run = program->run(kMachine, run_opts);
  prof::ReportOptions ropts;
  ropts.title = app.name;
  ropts.engine = "bytecode";
  out.report = prof::build_run_report(*program, out.run, recorder.trace(),
                                      &obs.provenance, ropts);
  out.partition = program->meta.spec.str();
  return out;
}

bool gathered_identical(const codegen::SpmdRunResult& a,
                        const codegen::SpmdRunResult& b) {
  if (a.gathered.size() != b.gathered.size()) return false;
  for (const auto& [name, values] : a.gathered) {
    const auto it = b.gathered.find(name);
    if (it == b.gathered.end() || it->second.size() != values.size()) {
      return false;
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] != it->second[i]) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cfd::AerofoilParams ap;
  ap.n1 = 40;
  ap.n2 = 20;
  ap.n3 = 8;
  ap.frames = 2;
  cfd::SprayerParams sp;
  sp.nx = 64;
  sp.ny = 32;
  sp.frames = 2;

  const App apps[] = {{"aerofoil", cfd::aerofoil_source(ap)},
                      {"sprayer", cfd::sprayer_source(sp)}};
  const Scenario scenarios[] = {{"clean", ""},
                                {"straggler", "seed=7,straggler=1:3"}};

  bench_util::heading(
      "Profile-guided planning: static heuristic vs planner, 4 ranks");
  std::printf("%-9s %-10s %-10s %-10s %12s %12s %9s %9s\n", "app",
              "scenario", "static", "planned", "static (s)", "planned (s)",
              "speedup", "predict");

  for (const auto& app : apps) {
    for (const auto& scenario : scenarios) {
      const auto statique = run_profiled(app, scenario, nullptr);

      plan::PlannerOptions popts;
      popts.source = app.source;
      DiagnosticEngine diags;
      popts.directives = core::Directives::extract(app.source, diags);
      popts.machine = kMachine;
      if (!scenario.faults.empty()) {
        popts.faults = fault::FaultPlan::parse(scenario.faults);
      }
      const auto input = plan::plan_input_from_report(statique.report);
      const auto plan_file = plan::make_plan(input, popts);
      const auto overrides = plan_file.to_overrides("fig_planner");

      const auto planned = run_profiled(app, scenario, &overrides);
      const bool identical = gathered_identical(statique.run, planned.run);
      const double speedup = statique.run.elapsed / planned.run.elapsed;
      const double predicted =
          plan_file.predicted_s > 0.0
              ? plan_file.static_predicted_s / plan_file.predicted_s
              : 1.0;

      std::printf("%-9s %-10s %-10s %-10s %11.4fs %11.4fs %8.2fx %8.2fx%s\n",
                  app.name.c_str(), scenario.name.c_str(),
                  statique.partition.c_str(), planned.partition.c_str(),
                  statique.run.elapsed, planned.run.elapsed, speedup,
                  predicted,
                  identical ? "" : "  RESULTS DIVERGED");

      const std::string prefix = app.name + "." + scenario.name;
      bench_util::record(prefix + ".static.elapsed_s", statique.run.elapsed);
      bench_util::record(prefix + ".planned.elapsed_s", planned.run.elapsed);
      bench_util::record(prefix + ".plan_speedup", speedup);
      bench_util::record(prefix + ".predicted.static_s",
                         plan_file.static_predicted_s);
      bench_util::record(prefix + ".predicted.planned_s",
                         plan_file.predicted_s);
      bench_util::record(prefix + ".results_identical", identical ? 1 : 0);
      bench_util::record_str(prefix + ".static.partition",
                             plan_file.static_partition + " (" +
                                 plan_file.static_strategy + ")");
      bench_util::record_str(prefix + ".planned.partition",
                             plan_file.partition + " (" +
                                 plan_file.strategy + ")");
      bench_util::record_str(prefix + ".rationale", plan_file.rationale);
    }
  }
  bench_util::note(
      "\nA planned row beats its static row whenever the measured profile "
      "exposes a cost\nthe static volume heuristic cannot see (pipelined "
      "sweeps on the cut dimension,\nstragglers on the critical path).");

  // Host-time cost of planning itself: score the full candidate table
  // from an already-built report.
  {
    static const App bench_app = apps[0];
    static const Scenario clean = scenarios[0];
    static const auto statique = run_profiled(bench_app, clean, nullptr);
    static const auto input = plan::plan_input_from_report(statique.report);
    benchmark::RegisterBenchmark("make_plan/aerofoil",
                                 [](benchmark::State& s) {
                                   plan::PlannerOptions popts;
                                   popts.source = bench_app.source;
                                   DiagnosticEngine diags;
                                   popts.directives = core::Directives::extract(
                                       bench_app.source, diags);
                                   for (auto _ : s) {
                                     benchmark::DoNotOptimize(
                                         plan::make_plan(input, popts));
                                   }
                                 });
  }
  return bench_util::finish(argc, argv);
}

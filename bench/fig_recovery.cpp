// Recovery overhead versus drop rate.
//
// With reliable delivery enabled (see DESIGN.md §16), a seeded
// drop+corruption plan no longer kills the run: every lost or
// mangled message is retransmitted on a virtual-time backoff
// schedule until it lands intact. This figure quantifies what that
// self-healing costs. Both case studies (aerofoil and sprayer) are
// swept over increasing drop rates; for each cell we report the
// virtual elapsed time, the retransmit count, the recovery wait
// (the extra idle time attributable to loss) and — the property the
// whole protocol exists for — whether the gathered status arrays
// stayed bit-identical to the clean run.
//
// Every number here is virtual-time deterministic per seed, so the
// committed sidecar doubles as a regression oracle: CI re-runs this
// binary and bench_compare flags any drift in elapsed time,
// retransmit counts or recovery seconds.
#include "bench_util.hpp"

#include <string>

#include "autocfd/fault/fault.hpp"

namespace {

using namespace autocfd;

struct Cell {
  double elapsed = 0.0;
  double recovery_s = 0.0;
  long long retransmits = 0;
  long long recovered = 0;
  long long dropped = 0;
  long long corrupted = 0;
  bool identical = false;
};

bool gathered_identical(const codegen::SpmdRunResult& a,
                        const codegen::SpmdRunResult& b) {
  for (const auto& [name, values] : a.gathered) {
    const auto it = b.gathered.find(name);
    if (it == b.gathered.end() || it->second != values) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto machine = mp::MachineConfig::pentium_ethernet_1999();
  const double drop_rates[] = {0.02, 0.05, 0.10};

  struct Case {
    std::string name;
    std::string source;
    std::string partition;
  };
  std::vector<Case> cases;
  {
    cfd::AerofoilParams ap;
    ap.n1 = 24;
    ap.n2 = 10;
    ap.n3 = 4;
    ap.frames = 2;
    cases.push_back({"aerofoil", cfd::aerofoil_source(ap), "2x2x1"});
    cfd::SprayerParams sp;
    sp.nx = 18;
    sp.ny = 12;
    sp.frames = 2;
    cases.push_back({"sprayer", cfd::sprayer_source(sp), "2x2"});
  }

  bench_util::heading(
      "Recovery overhead vs drop rate (reliable delivery, budget=8)");

  for (const auto& c : cases) {
    DiagnosticEngine diags;
    auto dirs = core::Directives::extract(c.source, diags);
    dirs.partition = partition::PartitionSpec::parse(c.partition);
    auto program = core::parallelize(c.source, dirs);

    const auto clean = program->run(machine);
    bench_util::record(c.name + ".clean.elapsed_s", clean.elapsed);

    std::printf("\n%s %s  (clean %.6f s)\n", c.name.c_str(),
                c.partition.c_str(), clean.elapsed);
    std::printf("%-10s %12s %10s %11s %11s %10s %10s\n", "drop rate",
                "elapsed (s)", "overhead", "retransmits", "recovered",
                "recov (s)", "identical");

    for (const double rate : drop_rates) {
      auto plan = fault::FaultPlan::parse(
          "seed=11,drop=" + std::to_string(rate) +
          ",corrupt=" + std::to_string(rate / 2.0));
      fault::FaultInjector injector(plan);
      codegen::SpmdRunOptions opts;
      opts.faults = &injector;
      opts.recovery = mp::RecoveryConfig::parse("default");
      const auto run = program->run(machine, opts);

      Cell cell;
      cell.elapsed = run.elapsed;
      cell.identical = gathered_identical(clean, run);
      for (const auto& st : run.cluster.ranks) {
        cell.retransmits += st.retransmits;
        cell.recovered += st.recovered;
        cell.recovery_s += st.recovery_time;
      }
      cell.dropped = injector.counters().dropped;
      cell.corrupted = injector.counters().corrupted;

      const double overhead = run.elapsed / clean.elapsed - 1.0;
      std::printf("%-10.2f %12.6f %+9.2f%% %11lld %11lld %10.6f %10s\n",
                  rate, cell.elapsed, overhead * 100.0, cell.retransmits,
                  cell.recovered, cell.recovery_s,
                  cell.identical ? "yes" : "NO!");

      const std::string key =
          c.name + ".drop" + std::to_string(static_cast<int>(rate * 100));
      bench_util::record(key + ".elapsed_s", cell.elapsed);
      bench_util::record(key + ".overhead_ratio",
                         cell.elapsed / clean.elapsed);
      bench_util::record(key + ".retransmits",
                         static_cast<double>(cell.retransmits));
      bench_util::record(key + ".recovered",
                         static_cast<double>(cell.recovered));
      bench_util::record(key + ".recovery_s", cell.recovery_s);
      bench_util::record(key + ".dropped",
                         static_cast<double>(cell.dropped));
      bench_util::record(key + ".corrupted",
                         static_cast<double>(cell.corrupted));
      bench_util::record(key + ".identical", cell.identical ? 1 : 0);
    }
  }

  bench_util::note(
      "\nEvery recovered run must be bit-identical to its clean run; the\n"
      "overhead column is the price of the retransmit backoff in virtual\n"
      "time. Retransmit counts and recovery seconds are deterministic per\n"
      "seed — drift against the committed sidecar is a regression.");

  // Host-time microbenchmarks: what the recovery machinery costs when
  // messages are actually being lost, versus the clean fast path.
  {
    static DiagnosticEngine diags;
    cfd::SprayerParams sp;
    sp.nx = 18;
    sp.ny = 12;
    sp.frames = 2;
    static const std::string src = cfd::sprayer_source(sp);
    static auto dirs = core::Directives::extract(src, diags);
    dirs.partition = partition::PartitionSpec::parse("2x2");
    static auto program = core::parallelize(src, dirs);
    static auto plan = fault::FaultPlan::parse("seed=11,drop=0.05");
    benchmark::RegisterBenchmark(
        "spmd_run/sprayer_clean", [&](benchmark::State& s) {
          for (auto _ : s) benchmark::DoNotOptimize(program->run(machine));
        });
    benchmark::RegisterBenchmark(
        "spmd_run/sprayer_drop5_recovery", [&](benchmark::State& s) {
          for (auto _ : s) {
            fault::FaultInjector injector(plan);
            codegen::SpmdRunOptions opts;
            opts.faults = &injector;
            opts.recovery = mp::RecoveryConfig::parse("default");
            benchmark::DoNotOptimize(program->run(machine, opts));
          }
        });
  }
  return bench_util::finish(argc, argv);
}

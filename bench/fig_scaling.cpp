// Scaling figure: efficiency curves of both case studies across rank
// counts, produced by the scaling observatory (src/sweep).
//
// Each app is swept across its rank counts in one run_sweep() call —
// the static heuristic picks each scale's partition — and the
// resulting ScalingReport is flattened into the sidecar: per-cell
// virtual elapsed time, speedup, parallel efficiency, Karp-Flatt
// serial fraction and communication share, plus the sweep-level
// comm-bound/compute-bound verdict and its crossover scale. Virtual
// times are deterministic, so CI gates the committed
// BENCH_fig_scaling.json byte-for-byte tight (tools/bench_compare):
// any drift in partitioning, sync combining, the runtime's cost model,
// or the observatory's own aggregation shows up as a diff here.
#include "bench_util.hpp"

#include "autocfd/sweep/sweep.hpp"

namespace {

using namespace autocfd;

struct Case {
  std::string name;
  std::string source;
  std::vector<int> ranks;
};

}  // namespace

int main(int argc, char** argv) {
  cfd::AerofoilParams ap;
  ap.n1 = 40;
  ap.n2 = 20;
  ap.n3 = 8;
  ap.frames = 2;
  cfd::SprayerParams sp;
  sp.nx = 64;
  sp.ny = 32;
  sp.frames = 2;

  const Case cases[] = {
      {"aerofoil", cfd::aerofoil_source(ap), {1, 2, 4, 8}},
      {"sprayer", cfd::sprayer_source(sp), {1, 2, 4}},
  };

  bench_util::heading(
      "Scaling observatory: efficiency curves across rank counts");

  for (const auto& c : cases) {
    sweep::SweepSpec spec;
    spec.title = c.name;
    spec.ranks = c.ranks;
    DiagnosticEngine diags;
    const auto dirs = core::Directives::extract(c.source, diags);
    const auto result = sweep::run_sweep(c.source, dirs, spec);
    const auto& report = result.report;

    std::printf("\n%s (%s%s)\n", c.name.c_str(),
                report.classification.c_str(),
                report.crossover_nranks > 0
                    ? (" from " + std::to_string(report.crossover_nranks) +
                       " ranks")
                          .c_str()
                    : "");
    std::printf("  %5s %-10s %12s %9s %7s %7s\n", "ranks", "partition",
                "elapsed (s)", "speedup", "eff", "comm%");
    for (const auto& cell : report.cells) {
      std::printf("  %5d %-10s %12.4f %8.2fx %6.1f%% %6.1f%%\n", cell.nranks,
                  cell.partition.c_str(), cell.elapsed_s, cell.speedup,
                  cell.efficiency * 100.0, cell.comm_share * 100.0);
      const std::string prefix =
          c.name + ".p" + std::to_string(cell.nranks);
      bench_util::record(prefix + ".elapsed_s", cell.elapsed_s);
      bench_util::record(prefix + ".speedup", cell.speedup);
      bench_util::record(prefix + ".efficiency", cell.efficiency);
      bench_util::record(prefix + ".karp_flatt", cell.karp_flatt);
      bench_util::record(prefix + ".comm_share", cell.comm_share);
      bench_util::record_str(prefix + ".partition", cell.partition);
    }
    bench_util::record(c.name + ".crossover_nranks",
                       report.crossover_nranks);
    bench_util::record_str(c.name + ".classification", report.classification);
    bench_util::record_str(c.name + ".crossover_site",
                           report.crossover_site_kind + " " +
                               report.crossover_site);
  }

  bench_util::note(
      "\nVirtual times are deterministic: the committed sidecar is an "
      "exact\nfingerprint of partitioning, sync combining and the "
      "runtime cost model.");

  // Host-time cost of the observatory itself: one small sweep end to
  // end (compile x cells + runs + aggregation).
  benchmark::RegisterBenchmark("run_sweep/aerofoil/1,2", [](benchmark::State&
                                                               s) {
    cfd::AerofoilParams small;
    small.n1 = 24;
    small.n2 = 10;
    small.n3 = 4;
    small.frames = 1;
    const auto src = cfd::aerofoil_source(small);
    DiagnosticEngine diags;
    const auto dirs = core::Directives::extract(src, diags);
    sweep::SweepSpec spec;
    spec.title = "aerofoil-small";
    spec.ranks = {1, 2};
    for (auto _ : s) {
      benchmark::DoNotOptimize(sweep::run_sweep(src, dirs, spec));
    }
  });
  return bench_util::finish(argc, argv);
}

// Table 1: improvement by synchronization optimizations.
//
// Reproduces the paper's per-partition synchronization counts before
// and after combining for both case studies, plus the ablation columns
// (pairwise combining, no combining) the paper's section 5 argues
// against.
#include "bench_util.hpp"

namespace {

using namespace autocfd;

struct PaperRow {
  const char* partition;
  int before;
  int after;
};

void report(const std::string& title, const std::string& prefix,
            const std::string& source, const std::vector<PaperRow>& rows) {
  bench_util::heading(title);
  std::printf("%-10s %14s %14s %16s %12s %12s\n", "partition",
              "paper before", "paper after", "measured before",
              "min after", "pairwise");
  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(source, diags);
  for (const auto& row : rows) {
    dirs.partition = partition::PartitionSpec::parse(row.partition);
    const auto min_rep = core::analyze_only(source, dirs);
    // Pairwise baseline needs the full plan; reuse parallelize-level
    // analysis through the strategy knob.
    auto pairwise =
        core::parallelize(source, dirs, sync::CombineStrategy::Pairwise);
    std::printf("%-10s %14d %14d %16d %12d %12d   (%.1f%% reduction)\n",
                row.partition, row.before, row.after, min_rep.syncs_before,
                min_rep.syncs_after, pairwise->report.syncs_after,
                min_rep.optimization_percent);
    const std::string key = prefix + "." + row.partition;
    bench_util::record(key + ".syncs_before", min_rep.syncs_before);
    bench_util::record(key + ".syncs_after_min", min_rep.syncs_after);
    bench_util::record(key + ".syncs_after_pairwise",
                       pairwise->report.syncs_after);
  }
}

void benchmark_analysis(benchmark::State& state, const std::string& source,
                        const char* part) {
  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(source, diags);
  dirs.partition = partition::PartitionSpec::parse(part);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::analyze_only(source, dirs));
  }
}

}  // namespace

int main(int argc, char** argv) {
  cfd::AerofoilParams ap;  // 99 x 41 x 13, the paper's case study 1
  const auto aero = cfd::aerofoil_source(ap);
  report("Table 1 / case study 1: aerofoil simulation (99x41x13)",
         "aerofoil", aero,
         {{"4x1x1", 73, 8},
          {"1x4x1", 84, 10},
          {"1x1x4", 81, 9},
          {"4x4x1", 148, 13},
          {"4x1x4", 145, 13},
          {"1x4x4", 156, 14}});

  cfd::SprayerParams sp;  // 300 x 100, the paper's case study 2
  const auto spray = cfd::sprayer_source(sp);
  report("Table 1 / case study 2: flow simulation of sprayer (300x100)",
         "sprayer", spray, {{"4x1", 72, 7}, {"1x4", 69, 7}, {"4x4", 141, 7}});

  bench_util::note(
      "\nShape checks: ~90% of synchronization points are removed; the\n"
      "sprayer's ADI structure makes 4x4 = 4x1 + 1x4 (disjoint direction\n"
      "pairs) while the aerofoil's full-stencil loops make 4x4x1 smaller\n"
      "than the 4x1x1 + 1x4x1 sum, both as in the paper.");

  benchmark::RegisterBenchmark("analysis/aerofoil/4x1x1",
                               [aero](benchmark::State& s) {
                                 benchmark_analysis(s, aero, "4x1x1");
                               });
  benchmark::RegisterBenchmark("analysis/sprayer/4x4",
                               [spray](benchmark::State& s) {
                                 benchmark_analysis(s, spray, "4x4");
                               });
  return bench_util::finish(argc, argv);
}

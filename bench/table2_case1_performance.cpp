// Table 2: overall performance of case study 1 (aerofoil, 99x41x13).
//
// The paper's distinctive result: the mirror-image-decomposed
// self-dependent sweeps prevent computation/communication overlap, so
// the 4-processor 4x1x1 partition gains nothing over 2 processors
// (the paper's run even degraded below sequential), while 3x2x1 on 6
// processors recovers. We reproduce the shape with virtual time on the
// simulated cluster; absolute seconds differ from the 2003 testbed
// (we run 2 frames instead of the original's full convergence run).
//
// The ablation at the end shows that *without* the paper's combining
// optimization the 4-processor collapse is far deeper — the per-pair
// synchronizations dominate.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;

  cfd::AerofoilParams params;  // 99 x 41 x 13
  params.frames = 2;
  const auto src = cfd::aerofoil_source(params);
  DiagnosticEngine diags;
  const auto dirs = core::Directives::extract(src, diags);

  bench_util::heading(
      "Table 2: overall performance of case study 1 (99x41x13)");
  const auto seq = bench_util::run_seq(src, dirs.status_arrays);
  std::printf("%-6s %-10s %12s %10s %12s %16s %14s\n", "procs", "partition",
              "time (s)", "speedup", "efficiency", "paper speedup",
              "paper eff");
  std::printf("%-6d %-10s %12.3f %10s %12s %16s %14s\n", 1, "-", seq.elapsed,
              "-", "-", "-", "-");

  struct Row {
    int procs;
    const char* part;
    double paper_speedup;
    int paper_eff;
  };
  for (const Row row : {Row{2, "2x1x1", 1.12, 56}, Row{4, "4x1x1", 0.84, 21},
                        Row{6, "3x2x1", 1.80, 30}}) {
    const auto par = bench_util::run_par(src, row.part);
    const double speedup = seq.elapsed / par.elapsed;
    std::printf("%-6d %-10s %12.3f %10.2f %11.0f%% %16.2f %13d%%\n",
                row.procs, row.part, par.elapsed, speedup,
                100.0 * speedup / row.procs, row.paper_speedup,
                row.paper_eff);
  }

  bench_util::note(
      "\nShape: 2 processors give only a marginal speedup, 4x1x1 adds\n"
      "nothing over 2 (each interior block pays double pipeline\n"
      "communication while computing half as much), and 3x2x1 recovers\n"
      "with balanced, smaller demarcation faces — the paper's pattern.");

  // Ablation: the same 4-processor run without combining.
  {
    DiagnosticEngine d2;
    auto dirs4 = core::Directives::extract(src, d2);
    dirs4.partition = partition::PartitionSpec::parse("4x1x1");
    auto no_combine =
        core::parallelize(src, dirs4, sync::CombineStrategy::None);
    auto run = no_combine->run(mp::MachineConfig::pentium_ethernet_1999());
    std::printf(
        "\nAblation (4x1x1, combining disabled): %d sync points, %.3f s "
        "(speedup %.2f vs combined %s)\n",
        no_combine->report.syncs_after, run.elapsed, seq.elapsed / run.elapsed,
        "above");
  }

  benchmark::RegisterBenchmark("precompile/aerofoil", [&](benchmark::State& s) {
    for (auto _ : s) {
      DiagnosticEngine d;
      auto dd = core::Directives::extract(src, d);
      dd.partition = partition::PartitionSpec::parse("3x2x1");
      benchmark::DoNotOptimize(core::parallelize(src, dd));
    }
  });
  return bench_util::finish(argc, argv);
}

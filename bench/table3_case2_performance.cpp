// Table 3: overall performance of case study 2 (sprayer, 300x100).
//
// The sprayer has no mixed self-dependences, so it parallelizes
// efficiently. The paper's shape: efficiency dips at 3 processors (the
// middle strip communicates with two neighbors) and recovers at 4
// (2x2 halves the faces and the smaller per-rank working set uses the
// cache better).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;

  cfd::SprayerParams params;  // 300 x 100
  params.frames = 3;
  const auto src = cfd::sprayer_source(params);
  DiagnosticEngine diags;
  const auto dirs = core::Directives::extract(src, diags);

  bench_util::heading(
      "Table 3: overall performance of case study 2 (300x100)");
  const auto seq = bench_util::run_seq(src, dirs.status_arrays);
  std::printf("%-6s %-10s %12s %10s %12s %16s %14s\n", "procs", "partition",
              "time (s)", "speedup", "efficiency", "paper speedup",
              "paper eff");
  std::printf("%-6d %-10s %12.3f %10s %12s %16s %14s\n", 1, "-", seq.elapsed,
              "-", "-", "-", "-");

  struct Row {
    int procs;
    const char* part;
    double paper_speedup;
    int paper_eff;
  };
  double eff3 = 0.0, eff2 = 0.0, eff4 = 0.0;
  for (const Row row : {Row{2, "2x1", 1.43, 71}, Row{3, "3x1", 1.97, 66},
                        Row{4, "2x2", 2.78, 70}}) {
    const auto par = bench_util::run_par(src, row.part);
    const double speedup = seq.elapsed / par.elapsed;
    const double eff = 100.0 * speedup / row.procs;
    if (row.procs == 2) eff2 = eff;
    if (row.procs == 3) eff3 = eff;
    if (row.procs == 4) eff4 = eff;
    std::printf("%-6d %-10s %12.3f %10.2f %11.0f%% %16.2f %13d%%\n",
                row.procs, row.part, par.elapsed, speedup, eff,
                row.paper_speedup, row.paper_eff);
  }

  std::printf(
      "\nShape checks: 3-processor efficiency below 2-processor (%s),\n"
      "4-processor efficiency recovers above 3-processor (%s).\n",
      eff3 < eff2 ? "yes" : "NO", eff4 > eff3 ? "yes" : "NO");

  benchmark::RegisterBenchmark("precompile/sprayer", [&](benchmark::State& s) {
    for (auto _ : s) {
      DiagnosticEngine d;
      auto dd = core::Directives::extract(src, d);
      dd.partition = partition::PartitionSpec::parse("2x2");
      benchmark::DoNotOptimize(core::parallelize(src, dd));
    }
  });
  return bench_util::finish(argc, argv);
}

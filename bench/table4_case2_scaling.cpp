// Table 4: scaling performance of case study 2 with a 2x1 partition.
//
// The paper sweeps the grid density from 40x15 to 160x60 and shows the
// 2-processor efficiency rising from 50% toward ~88% as the
// computation/communication ratio grows with density.
//
// Each density runs through the scaling observatory (src/sweep): a
// one-cell sweep at 2 ranks with the sequential run as the baseline —
// the same harness `acfd --sweep` uses — and every figure printed here
// is asserted to reconcile exactly with the cell's underlying run
// report before it is trusted.
#include "bench_util.hpp"

#include <cstdlib>

#include "autocfd/sweep/sweep.hpp"

namespace {

/// Dies loudly when a ScalingReport figure disagrees with the
/// underlying RunReport it was distilled from — the observatory's
/// aggregation must be an exact view, not an approximation.
void check(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "table4: RECONCILIATION FAILED: %s\n", what);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autocfd;

  bench_util::heading(
      "Table 4: scaling of case study 2 with partition 2x1");
  std::printf("%-10s %14s %14s %10s %12s %14s %12s\n", "grid",
              "seq time (s)", "par time (s)", "speedup", "efficiency",
              "paper speedup", "paper eff");

  struct Row {
    long long nx, ny;
    double paper_speedup;
    int paper_eff;
  };
  const std::vector<Row> rows = {
      {40, 15, 1.00, 50},  {60, 23, 1.64, 82},  {80, 30, 1.42, 71},
      {100, 38, 1.52, 76}, {120, 45, 1.71, 86}, {140, 53, 1.77, 88},
      {160, 60, 1.75, 87},
  };

  sweep::SweepSpec spec;
  spec.ranks = {2};
  spec.partitions[2] = {"2x1"};
  spec.sequential_baseline = true;

  double first_eff = 0.0, last_eff = 0.0;
  for (const auto& row : rows) {
    cfd::SprayerParams p;
    p.nx = row.nx;
    p.ny = row.ny;
    p.frames = 3;
    const auto src = cfd::sprayer_source(p);
    DiagnosticEngine diags;
    const auto dirs = core::Directives::extract(src, diags);
    spec.title = "sprayer " + std::to_string(row.nx) + "x" +
                 std::to_string(row.ny);
    const auto result = sweep::run_sweep(src, dirs, spec);

    check(result.report.cells.size() == 1 && result.cell_reports.size() == 1,
          "one 2-rank cell expected");
    const auto& cell = result.report.cells.front();
    const auto& rep = result.cell_reports.front();
    check(cell.elapsed_s == rep.elapsed_s, "cell elapsed == report elapsed");
    check(result.report.seq_elapsed_s > 0.0, "sequential baseline ran");
    double compute = 0.0, transfer = 0.0, wait = 0.0;
    for (const auto& rb : rep.ranks) {
      compute += rb.compute;
      transfer += rb.transfer;
      wait += rb.wait;
    }
    check(cell.compute_s == compute && cell.transfer_s == transfer &&
              cell.wait_s == wait,
          "cell rank-time decomposition == report rank breakdown sums");
    long long messages = 0, bytes = 0;
    for (const auto& rt : rep.comm.rank_totals) {
      messages += rt.messages_sent;
      bytes += rt.bytes_sent;
    }
    check(cell.messages == messages && cell.bytes == bytes,
          "cell wire traffic == report comm-matrix rank totals");
    check(cell.speedup ==
              result.report.seq_elapsed_s / cell.elapsed_s,
          "cell speedup == seq / par elapsed");

    const double speedup = cell.speedup;
    const double eff = 100.0 * cell.efficiency;
    if (row.nx == rows.front().nx) first_eff = eff;
    if (row.nx == rows.back().nx) last_eff = eff;
    std::printf("%3lldx%-6lld %14.3f %14.3f %10.2f %11.0f%% %14.2f %11d%%\n",
                row.nx, row.ny, result.report.seq_elapsed_s, cell.elapsed_s,
                speedup, eff, row.paper_speedup, row.paper_eff);

    const std::string prefix =
        std::to_string(row.nx) + "x" + std::to_string(row.ny);
    bench_util::record(prefix + ".seq_elapsed_s",
                       result.report.seq_elapsed_s);
    bench_util::record(prefix + ".par_elapsed_s", cell.elapsed_s);
    bench_util::record(prefix + ".speedup", speedup);
    bench_util::record(prefix + ".efficiency", cell.efficiency);
    bench_util::record(prefix + ".comm_share", cell.comm_share);
  }

  std::printf(
      "\nShape check: efficiency rises with grid density (%.0f%% -> %.0f%%)\n"
      "as the computation/communication ratio grows — the paper's trend\n"
      "(50%% -> ~88%%). Absolute values depend on the calibrated machine.\n"
      "Every row reconciled exactly against its cell's run report.\n",
      first_eff, last_eff);

  benchmark::RegisterBenchmark("sprayer/seq/40x15", [](benchmark::State& s) {
    cfd::SprayerParams p;
    p.nx = 40;
    p.ny = 15;
    p.frames = 1;
    const auto src = cfd::sprayer_source(p);
    DiagnosticEngine diags;
    const auto dirs = core::Directives::extract(src, diags);
    for (auto _ : s) {
      benchmark::DoNotOptimize(bench_util::run_seq(src, dirs.status_arrays));
    }
  });
  return bench_util::finish(argc, argv);
}

// Table 4: scaling performance of case study 2 with a 2x1 partition.
//
// The paper sweeps the grid density from 40x15 to 160x60 and shows the
// 2-processor efficiency rising from 50% toward ~88% as the
// computation/communication ratio grows with density.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;

  bench_util::heading(
      "Table 4: scaling of case study 2 with partition 2x1");
  std::printf("%-10s %14s %14s %10s %12s %14s %12s\n", "grid",
              "seq time (s)", "par time (s)", "speedup", "efficiency",
              "paper speedup", "paper eff");

  struct Row {
    long long nx, ny;
    double paper_speedup;
    int paper_eff;
  };
  const std::vector<Row> rows = {
      {40, 15, 1.00, 50},  {60, 23, 1.64, 82},  {80, 30, 1.42, 71},
      {100, 38, 1.52, 76}, {120, 45, 1.71, 86}, {140, 53, 1.77, 88},
      {160, 60, 1.75, 87},
  };

  double first_eff = 0.0, last_eff = 0.0;
  for (const auto& row : rows) {
    cfd::SprayerParams p;
    p.nx = row.nx;
    p.ny = row.ny;
    p.frames = 3;
    const auto src = cfd::sprayer_source(p);
    DiagnosticEngine diags;
    const auto dirs = core::Directives::extract(src, diags);
    const auto seq = bench_util::run_seq(src, dirs.status_arrays);
    const auto par = bench_util::run_par(src, "2x1");
    const double speedup = seq.elapsed / par.elapsed;
    const double eff = 100.0 * speedup / 2.0;
    if (row.nx == rows.front().nx) first_eff = eff;
    if (row.nx == rows.back().nx) last_eff = eff;
    std::printf("%3lldx%-6lld %14.3f %14.3f %10.2f %11.0f%% %14.2f %11d%%\n",
                row.nx, row.ny, seq.elapsed, par.elapsed, speedup, eff,
                row.paper_speedup, row.paper_eff);
  }

  std::printf(
      "\nShape check: efficiency rises with grid density (%.0f%% -> %.0f%%)\n"
      "as the computation/communication ratio grows — the paper's trend\n"
      "(50%% -> ~88%%). Absolute values depend on the calibrated machine.\n",
      first_eff, last_eff);

  benchmark::RegisterBenchmark("sprayer/seq/40x15", [](benchmark::State& s) {
    cfd::SprayerParams p;
    p.nx = 40;
    p.ny = 15;
    p.frames = 1;
    const auto src = cfd::sprayer_source(p);
    DiagnosticEngine diags;
    const auto dirs = core::Directives::extract(src, diags);
    for (auto _ : s) {
      benchmark::DoNotOptimize(bench_util::run_seq(src, dirs.status_arrays));
    }
  });
  return bench_util::finish(argc, argv);
}

// Table 5: superlinear performance of case study 2 at 800x300.
//
// At this density the per-workstation working set dwarfs the cache (and
// approaches the RAM of the era's machines); splitting the grid makes
// each block markedly faster per operation, so efficiency *relative to
// the 2-processor system* exceeds 100%. The paper reports 100%, 112%
// and 104% on 2, 3 and 4 workstations.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;

  cfd::SprayerParams params;
  params.nx = 800;
  params.ny = 300;
  params.frames = 2;
  const auto src = cfd::sprayer_source(params);

  bench_util::heading(
      "Table 5: superlinear performance of case study 2 (800x300)");

  const auto machine = mp::MachineConfig::pentium_ethernet_1999();
  struct Run {
    int procs;
    const char* part;
    int paper_eff;
    double elapsed = 0.0;
  };
  std::vector<Run> runs = {
      {2, "2x1", 100}, {3, "3x1", 112}, {4, "2x2", 104}};
  for (auto& r : runs) {
    r.elapsed = bench_util::run_par(src, r.part).elapsed;
  }
  const double base = runs.front().elapsed;  // 2-processor system

  std::printf("%-6s %-10s %12s %26s %12s\n", "procs", "partition", "time (s)",
              "efficiency over 2-proc (%)", "paper (%)");
  bool superlinear_seen = false;
  for (const auto& r : runs) {
    const double eff = 100.0 * (2.0 * base) / (r.procs * r.elapsed);
    if (r.procs > 2 && eff > 100.0) superlinear_seen = true;
    std::printf("%-6d %-10s %12.3f %25.0f%% %11d%%\n", r.procs, r.part,
                r.elapsed, eff, r.paper_eff);
  }

  // Show the mechanism: the per-rank working set and its memory factor.
  std::printf("\nMemory model at 800x300 (cache %lld KB, RAM %lld MB):\n",
              machine.cache_bytes / 1024, machine.memory_bytes / (1 << 20));
  const long long total_ws = [&] {
    auto file = fortran::parse_source(src);
    DiagnosticEngine d;
    auto image = interp::ProgramImage::build(file, d);
    interp::Env env(image);
    env.allocate_arrays(image, d);
    return env.array_bytes();
  }();
  for (const int procs : {1, 2, 3, 4}) {
    const long long ws = total_ws / procs;
    std::printf("  %d rank(s): ~%lld MB per rank -> per-op factor %.2f\n",
                procs, ws / (1 << 20), machine.memory_factor(ws));
  }
  std::printf("\nShape check: superlinear (>100%%) efficiency appears: %s\n",
              superlinear_seen ? "yes" : "NO");

  benchmark::RegisterBenchmark("memory_factor", [&](benchmark::State& s) {
    for (auto _ : s) {
      benchmark::DoNotOptimize(machine.memory_factor(40LL << 20));
    }
  });
  return bench_util::finish(argc, argv);
}

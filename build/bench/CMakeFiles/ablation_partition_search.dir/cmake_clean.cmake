file(REMOVE_RECURSE
  "CMakeFiles/ablation_partition_search.dir/ablation_partition_search.cpp.o"
  "CMakeFiles/ablation_partition_search.dir/ablation_partition_search.cpp.o.d"
  "ablation_partition_search"
  "ablation_partition_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partition_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

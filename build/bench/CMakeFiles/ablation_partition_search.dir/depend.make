# Empty dependencies file for ablation_partition_search.
# This may be replaced when dependencies are built.

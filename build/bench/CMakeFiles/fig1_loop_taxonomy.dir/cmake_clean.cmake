file(REMOVE_RECURSE
  "CMakeFiles/fig1_loop_taxonomy.dir/fig1_loop_taxonomy.cpp.o"
  "CMakeFiles/fig1_loop_taxonomy.dir/fig1_loop_taxonomy.cpp.o.d"
  "fig1_loop_taxonomy"
  "fig1_loop_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_loop_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

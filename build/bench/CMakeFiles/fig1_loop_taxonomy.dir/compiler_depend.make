# Empty compiler generated dependencies file for fig1_loop_taxonomy.
# This may be replaced when dependencies are built.

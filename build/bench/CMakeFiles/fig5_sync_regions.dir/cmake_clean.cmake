file(REMOVE_RECURSE
  "CMakeFiles/fig5_sync_regions.dir/fig5_sync_regions.cpp.o"
  "CMakeFiles/fig5_sync_regions.dir/fig5_sync_regions.cpp.o.d"
  "fig5_sync_regions"
  "fig5_sync_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sync_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

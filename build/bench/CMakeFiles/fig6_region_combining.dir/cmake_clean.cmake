file(REMOVE_RECURSE
  "CMakeFiles/fig6_region_combining.dir/fig6_region_combining.cpp.o"
  "CMakeFiles/fig6_region_combining.dir/fig6_region_combining.cpp.o.d"
  "fig6_region_combining"
  "fig6_region_combining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_region_combining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig6_region_combining.
# This may be replaced when dependencies are built.

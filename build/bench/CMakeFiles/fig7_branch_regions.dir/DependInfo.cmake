
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_branch_regions.cpp" "bench/CMakeFiles/fig7_branch_regions.dir/fig7_branch_regions.cpp.o" "gcc" "bench/CMakeFiles/fig7_branch_regions.dir/fig7_branch_regions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/autocfd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cfd/CMakeFiles/autocfd_cfd.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/autocfd_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/autocfd_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/depend/CMakeFiles/autocfd_depend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/autocfd_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/autocfd_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/autocfd_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/fortran/CMakeFiles/autocfd_fortran.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/autocfd_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/autocfd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

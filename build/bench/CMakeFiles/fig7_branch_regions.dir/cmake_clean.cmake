file(REMOVE_RECURSE
  "CMakeFiles/fig7_branch_regions.dir/fig7_branch_regions.cpp.o"
  "CMakeFiles/fig7_branch_regions.dir/fig7_branch_regions.cpp.o.d"
  "fig7_branch_regions"
  "fig7_branch_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_branch_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig7_branch_regions.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig8_interprocedural.dir/fig8_interprocedural.cpp.o"
  "CMakeFiles/fig8_interprocedural.dir/fig8_interprocedural.cpp.o.d"
  "fig8_interprocedural"
  "fig8_interprocedural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_interprocedural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

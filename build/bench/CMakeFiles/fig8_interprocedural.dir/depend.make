# Empty dependencies file for fig8_interprocedural.
# This may be replaced when dependencies are built.

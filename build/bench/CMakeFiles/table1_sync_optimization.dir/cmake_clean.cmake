file(REMOVE_RECURSE
  "CMakeFiles/table1_sync_optimization.dir/table1_sync_optimization.cpp.o"
  "CMakeFiles/table1_sync_optimization.dir/table1_sync_optimization.cpp.o.d"
  "table1_sync_optimization"
  "table1_sync_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sync_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_sync_optimization.
# This may be replaced when dependencies are built.

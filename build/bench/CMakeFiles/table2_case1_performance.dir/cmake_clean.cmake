file(REMOVE_RECURSE
  "CMakeFiles/table2_case1_performance.dir/table2_case1_performance.cpp.o"
  "CMakeFiles/table2_case1_performance.dir/table2_case1_performance.cpp.o.d"
  "table2_case1_performance"
  "table2_case1_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_case1_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table2_case1_performance.
# This may be replaced when dependencies are built.

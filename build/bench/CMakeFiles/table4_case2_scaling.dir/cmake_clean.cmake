file(REMOVE_RECURSE
  "CMakeFiles/table4_case2_scaling.dir/table4_case2_scaling.cpp.o"
  "CMakeFiles/table4_case2_scaling.dir/table4_case2_scaling.cpp.o.d"
  "table4_case2_scaling"
  "table4_case2_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_case2_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

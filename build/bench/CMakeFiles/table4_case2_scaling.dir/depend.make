# Empty dependencies file for table4_case2_scaling.
# This may be replaced when dependencies are built.

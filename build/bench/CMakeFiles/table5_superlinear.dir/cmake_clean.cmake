file(REMOVE_RECURSE
  "CMakeFiles/table5_superlinear.dir/table5_superlinear.cpp.o"
  "CMakeFiles/table5_superlinear.dir/table5_superlinear.cpp.o.d"
  "table5_superlinear"
  "table5_superlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_superlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

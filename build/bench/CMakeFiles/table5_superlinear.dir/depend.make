# Empty dependencies file for table5_superlinear.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/acfd.dir/acfd.cpp.o"
  "CMakeFiles/acfd.dir/acfd.cpp.o.d"
  "acfd"
  "acfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

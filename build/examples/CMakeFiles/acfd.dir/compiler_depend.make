# Empty compiler generated dependencies file for acfd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/aerofoil_study.dir/aerofoil_study.cpp.o"
  "CMakeFiles/aerofoil_study.dir/aerofoil_study.cpp.o.d"
  "aerofoil_study"
  "aerofoil_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerofoil_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

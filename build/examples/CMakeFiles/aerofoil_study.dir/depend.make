# Empty dependencies file for aerofoil_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sprayer_study.dir/sprayer_study.cpp.o"
  "CMakeFiles/sprayer_study.dir/sprayer_study.cpp.o.d"
  "sprayer_study"
  "sprayer_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprayer_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sprayer_study.
# This may be replaced when dependencies are built.

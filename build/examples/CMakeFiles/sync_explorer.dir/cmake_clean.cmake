file(REMOVE_RECURSE
  "CMakeFiles/sync_explorer.dir/sync_explorer.cpp.o"
  "CMakeFiles/sync_explorer.dir/sync_explorer.cpp.o.d"
  "sync_explorer"
  "sync_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("fortran")
subdirs("ir")
subdirs("partition")
subdirs("depend")
subdirs("sync")
subdirs("mp")
subdirs("interp")
subdirs("codegen")
subdirs("cfd")
subdirs("core")

file(REMOVE_RECURSE
  "CMakeFiles/autocfd_cfd.dir/aerofoil.cpp.o"
  "CMakeFiles/autocfd_cfd.dir/aerofoil.cpp.o.d"
  "CMakeFiles/autocfd_cfd.dir/sprayer.cpp.o"
  "CMakeFiles/autocfd_cfd.dir/sprayer.cpp.o.d"
  "libautocfd_cfd.a"
  "libautocfd_cfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocfd_cfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libautocfd_cfd.a"
)

# Empty dependencies file for autocfd_cfd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/autocfd_codegen.dir/restructure.cpp.o"
  "CMakeFiles/autocfd_codegen.dir/restructure.cpp.o.d"
  "CMakeFiles/autocfd_codegen.dir/spmd_runtime.cpp.o"
  "CMakeFiles/autocfd_codegen.dir/spmd_runtime.cpp.o.d"
  "libautocfd_codegen.a"
  "libautocfd_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocfd_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

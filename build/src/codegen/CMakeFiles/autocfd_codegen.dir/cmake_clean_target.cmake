file(REMOVE_RECURSE
  "libautocfd_codegen.a"
)

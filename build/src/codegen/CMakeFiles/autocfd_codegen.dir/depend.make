# Empty dependencies file for autocfd_codegen.
# This may be replaced when dependencies are built.

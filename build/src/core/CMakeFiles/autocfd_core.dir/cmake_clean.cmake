file(REMOVE_RECURSE
  "CMakeFiles/autocfd_core.dir/directives.cpp.o"
  "CMakeFiles/autocfd_core.dir/directives.cpp.o.d"
  "CMakeFiles/autocfd_core.dir/pipeline.cpp.o"
  "CMakeFiles/autocfd_core.dir/pipeline.cpp.o.d"
  "libautocfd_core.a"
  "libautocfd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocfd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libautocfd_core.a"
)

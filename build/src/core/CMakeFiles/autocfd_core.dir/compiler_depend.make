# Empty compiler generated dependencies file for autocfd_core.
# This may be replaced when dependencies are built.

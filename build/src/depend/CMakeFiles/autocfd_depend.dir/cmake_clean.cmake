file(REMOVE_RECURSE
  "CMakeFiles/autocfd_depend.dir/dep_pairs.cpp.o"
  "CMakeFiles/autocfd_depend.dir/dep_pairs.cpp.o.d"
  "CMakeFiles/autocfd_depend.dir/point_graph.cpp.o"
  "CMakeFiles/autocfd_depend.dir/point_graph.cpp.o.d"
  "CMakeFiles/autocfd_depend.dir/self_dep.cpp.o"
  "CMakeFiles/autocfd_depend.dir/self_dep.cpp.o.d"
  "libautocfd_depend.a"
  "libautocfd_depend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocfd_depend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

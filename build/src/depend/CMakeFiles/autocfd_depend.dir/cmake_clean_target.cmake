file(REMOVE_RECURSE
  "libautocfd_depend.a"
)

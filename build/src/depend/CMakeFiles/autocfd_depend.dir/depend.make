# Empty dependencies file for autocfd_depend.
# This may be replaced when dependencies are built.

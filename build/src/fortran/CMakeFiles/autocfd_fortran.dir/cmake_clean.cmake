file(REMOVE_RECURSE
  "CMakeFiles/autocfd_fortran.dir/ast.cpp.o"
  "CMakeFiles/autocfd_fortran.dir/ast.cpp.o.d"
  "CMakeFiles/autocfd_fortran.dir/lexer.cpp.o"
  "CMakeFiles/autocfd_fortran.dir/lexer.cpp.o.d"
  "CMakeFiles/autocfd_fortran.dir/parser.cpp.o"
  "CMakeFiles/autocfd_fortran.dir/parser.cpp.o.d"
  "CMakeFiles/autocfd_fortran.dir/printer.cpp.o"
  "CMakeFiles/autocfd_fortran.dir/printer.cpp.o.d"
  "CMakeFiles/autocfd_fortran.dir/symbols.cpp.o"
  "CMakeFiles/autocfd_fortran.dir/symbols.cpp.o.d"
  "CMakeFiles/autocfd_fortran.dir/token.cpp.o"
  "CMakeFiles/autocfd_fortran.dir/token.cpp.o.d"
  "libautocfd_fortran.a"
  "libautocfd_fortran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocfd_fortran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

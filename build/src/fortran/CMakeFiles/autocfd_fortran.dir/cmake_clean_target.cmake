file(REMOVE_RECURSE
  "libautocfd_fortran.a"
)

# Empty compiler generated dependencies file for autocfd_fortran.
# This may be replaced when dependencies are built.

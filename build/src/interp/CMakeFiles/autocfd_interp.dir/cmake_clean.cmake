file(REMOVE_RECURSE
  "CMakeFiles/autocfd_interp.dir/env.cpp.o"
  "CMakeFiles/autocfd_interp.dir/env.cpp.o.d"
  "CMakeFiles/autocfd_interp.dir/image.cpp.o"
  "CMakeFiles/autocfd_interp.dir/image.cpp.o.d"
  "CMakeFiles/autocfd_interp.dir/interpreter.cpp.o"
  "CMakeFiles/autocfd_interp.dir/interpreter.cpp.o.d"
  "libautocfd_interp.a"
  "libautocfd_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocfd_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libautocfd_interp.a"
)

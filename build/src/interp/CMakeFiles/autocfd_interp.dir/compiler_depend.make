# Empty compiler generated dependencies file for autocfd_interp.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/call_graph.cpp" "src/ir/CMakeFiles/autocfd_ir.dir/call_graph.cpp.o" "gcc" "src/ir/CMakeFiles/autocfd_ir.dir/call_graph.cpp.o.d"
  "/root/repo/src/ir/field_loop.cpp" "src/ir/CMakeFiles/autocfd_ir.dir/field_loop.cpp.o" "gcc" "src/ir/CMakeFiles/autocfd_ir.dir/field_loop.cpp.o.d"
  "/root/repo/src/ir/loop_tree.cpp" "src/ir/CMakeFiles/autocfd_ir.dir/loop_tree.cpp.o" "gcc" "src/ir/CMakeFiles/autocfd_ir.dir/loop_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fortran/CMakeFiles/autocfd_fortran.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/autocfd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

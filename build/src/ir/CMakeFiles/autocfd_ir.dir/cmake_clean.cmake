file(REMOVE_RECURSE
  "CMakeFiles/autocfd_ir.dir/call_graph.cpp.o"
  "CMakeFiles/autocfd_ir.dir/call_graph.cpp.o.d"
  "CMakeFiles/autocfd_ir.dir/field_loop.cpp.o"
  "CMakeFiles/autocfd_ir.dir/field_loop.cpp.o.d"
  "CMakeFiles/autocfd_ir.dir/loop_tree.cpp.o"
  "CMakeFiles/autocfd_ir.dir/loop_tree.cpp.o.d"
  "libautocfd_ir.a"
  "libautocfd_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocfd_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libautocfd_ir.a"
)

# Empty compiler generated dependencies file for autocfd_ir.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/autocfd_mp.dir/cluster.cpp.o"
  "CMakeFiles/autocfd_mp.dir/cluster.cpp.o.d"
  "CMakeFiles/autocfd_mp.dir/machine.cpp.o"
  "CMakeFiles/autocfd_mp.dir/machine.cpp.o.d"
  "libautocfd_mp.a"
  "libautocfd_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocfd_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

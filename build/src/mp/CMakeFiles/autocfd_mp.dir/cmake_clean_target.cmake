file(REMOVE_RECURSE
  "libautocfd_mp.a"
)

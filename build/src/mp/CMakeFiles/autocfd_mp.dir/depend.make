# Empty dependencies file for autocfd_mp.
# This may be replaced when dependencies are built.

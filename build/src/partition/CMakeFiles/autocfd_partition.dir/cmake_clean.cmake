file(REMOVE_RECURSE
  "CMakeFiles/autocfd_partition.dir/comm_model.cpp.o"
  "CMakeFiles/autocfd_partition.dir/comm_model.cpp.o.d"
  "CMakeFiles/autocfd_partition.dir/grid.cpp.o"
  "CMakeFiles/autocfd_partition.dir/grid.cpp.o.d"
  "libautocfd_partition.a"
  "libautocfd_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocfd_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libautocfd_partition.a"
)

# Empty compiler generated dependencies file for autocfd_partition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/autocfd_support.dir/diagnostics.cpp.o"
  "CMakeFiles/autocfd_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/autocfd_support.dir/strings.cpp.o"
  "CMakeFiles/autocfd_support.dir/strings.cpp.o.d"
  "libautocfd_support.a"
  "libautocfd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocfd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

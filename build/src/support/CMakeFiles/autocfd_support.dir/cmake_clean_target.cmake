file(REMOVE_RECURSE
  "libautocfd_support.a"
)

# Empty dependencies file for autocfd_support.
# This may be replaced when dependencies are built.

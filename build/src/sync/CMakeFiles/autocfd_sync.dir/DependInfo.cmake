
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/combine.cpp" "src/sync/CMakeFiles/autocfd_sync.dir/combine.cpp.o" "gcc" "src/sync/CMakeFiles/autocfd_sync.dir/combine.cpp.o.d"
  "/root/repo/src/sync/inlined.cpp" "src/sync/CMakeFiles/autocfd_sync.dir/inlined.cpp.o" "gcc" "src/sync/CMakeFiles/autocfd_sync.dir/inlined.cpp.o.d"
  "/root/repo/src/sync/regions.cpp" "src/sync/CMakeFiles/autocfd_sync.dir/regions.cpp.o" "gcc" "src/sync/CMakeFiles/autocfd_sync.dir/regions.cpp.o.d"
  "/root/repo/src/sync/sync_plan.cpp" "src/sync/CMakeFiles/autocfd_sync.dir/sync_plan.cpp.o" "gcc" "src/sync/CMakeFiles/autocfd_sync.dir/sync_plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/depend/CMakeFiles/autocfd_depend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/autocfd_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/fortran/CMakeFiles/autocfd_fortran.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/autocfd_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/autocfd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

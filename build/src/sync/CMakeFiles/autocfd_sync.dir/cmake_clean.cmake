file(REMOVE_RECURSE
  "CMakeFiles/autocfd_sync.dir/combine.cpp.o"
  "CMakeFiles/autocfd_sync.dir/combine.cpp.o.d"
  "CMakeFiles/autocfd_sync.dir/inlined.cpp.o"
  "CMakeFiles/autocfd_sync.dir/inlined.cpp.o.d"
  "CMakeFiles/autocfd_sync.dir/regions.cpp.o"
  "CMakeFiles/autocfd_sync.dir/regions.cpp.o.d"
  "CMakeFiles/autocfd_sync.dir/sync_plan.cpp.o"
  "CMakeFiles/autocfd_sync.dir/sync_plan.cpp.o.d"
  "libautocfd_sync.a"
  "libautocfd_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocfd_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libautocfd_sync.a"
)

# Empty dependencies file for autocfd_sync.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_call_graph.dir/test_call_graph.cpp.o"
  "CMakeFiles/test_call_graph.dir/test_call_graph.cpp.o.d"
  "test_call_graph"
  "test_call_graph.pdb"
  "test_call_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_call_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_call_graph.
# This may be replaced when dependencies are built.

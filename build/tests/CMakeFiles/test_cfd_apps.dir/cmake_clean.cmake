file(REMOVE_RECURSE
  "CMakeFiles/test_cfd_apps.dir/test_cfd_apps.cpp.o"
  "CMakeFiles/test_cfd_apps.dir/test_cfd_apps.cpp.o.d"
  "test_cfd_apps"
  "test_cfd_apps.pdb"
  "test_cfd_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfd_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

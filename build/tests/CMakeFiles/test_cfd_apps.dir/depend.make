# Empty dependencies file for test_cfd_apps.
# This may be replaced when dependencies are built.

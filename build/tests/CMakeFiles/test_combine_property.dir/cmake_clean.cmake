file(REMOVE_RECURSE
  "CMakeFiles/test_combine_property.dir/test_combine_property.cpp.o"
  "CMakeFiles/test_combine_property.dir/test_combine_property.cpp.o.d"
  "test_combine_property"
  "test_combine_property.pdb"
  "test_combine_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combine_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_combine_property.
# This may be replaced when dependencies are built.

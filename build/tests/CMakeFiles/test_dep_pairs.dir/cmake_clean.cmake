file(REMOVE_RECURSE
  "CMakeFiles/test_dep_pairs.dir/test_dep_pairs.cpp.o"
  "CMakeFiles/test_dep_pairs.dir/test_dep_pairs.cpp.o.d"
  "test_dep_pairs"
  "test_dep_pairs.pdb"
  "test_dep_pairs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dep_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_directives.dir/test_directives.cpp.o"
  "CMakeFiles/test_directives.dir/test_directives.cpp.o.d"
  "test_directives"
  "test_directives.pdb"
  "test_directives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

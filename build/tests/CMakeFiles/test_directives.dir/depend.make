# Empty dependencies file for test_directives.
# This may be replaced when dependencies are built.

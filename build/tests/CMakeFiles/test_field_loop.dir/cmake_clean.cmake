file(REMOVE_RECURSE
  "CMakeFiles/test_field_loop.dir/test_field_loop.cpp.o"
  "CMakeFiles/test_field_loop.dir/test_field_loop.cpp.o.d"
  "test_field_loop"
  "test_field_loop.pdb"
  "test_field_loop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_field_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

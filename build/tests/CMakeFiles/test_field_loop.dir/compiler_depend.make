# Empty compiler generated dependencies file for test_field_loop.
# This may be replaced when dependencies are built.

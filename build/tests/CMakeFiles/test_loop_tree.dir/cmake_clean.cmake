file(REMOVE_RECURSE
  "CMakeFiles/test_loop_tree.dir/test_loop_tree.cpp.o"
  "CMakeFiles/test_loop_tree.dir/test_loop_tree.cpp.o.d"
  "test_loop_tree"
  "test_loop_tree.pdb"
  "test_loop_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loop_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_loop_tree.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_reference_solver.dir/test_reference_solver.cpp.o"
  "CMakeFiles/test_reference_solver.dir/test_reference_solver.cpp.o.d"
  "test_reference_solver"
  "test_reference_solver.pdb"
  "test_reference_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_reference_solver.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_self_dep.dir/test_self_dep.cpp.o"
  "CMakeFiles/test_self_dep.dir/test_self_dep.cpp.o.d"
  "test_self_dep"
  "test_self_dep.pdb"
  "test_self_dep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_self_dep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

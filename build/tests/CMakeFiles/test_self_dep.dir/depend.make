# Empty dependencies file for test_self_dep.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_printer[1]_include.cmake")
include("/root/repo/build/tests/test_symbols[1]_include.cmake")
include("/root/repo/build/tests/test_loop_tree[1]_include.cmake")
include("/root/repo/build/tests/test_field_loop[1]_include.cmake")
include("/root/repo/build/tests/test_call_graph[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_dep_pairs[1]_include.cmake")
include("/root/repo/build/tests/test_self_dep[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_spmd[1]_include.cmake")
include("/root/repo/build/tests/test_cfd_apps[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_directives[1]_include.cmake")
include("/root/repo/build/tests/test_random_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_reference_solver[1]_include.cmake")
include("/root/repo/build/tests/test_combine_property[1]_include.cmake")

// acfd: the Auto-CFD pre-compiler as a command-line tool.
//
//   acfd input.f [-o output.f] [--partition 4x1x1 | --nprocs 6]
//        [--strategy min|pairwise|none] [--run] [--report]
//
// Reads a sequential Fortran CFD program (directives embedded as
// !$acfd comments or overridden on the command line), writes the SPMD
// message-passing program, prints the optimization report, and — with
// --run — executes both versions on the simulated cluster and checks
// they agree.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "autocfd/core/pipeline.hpp"
#include "autocfd/fortran/parser.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: acfd input.f [options]\n"
      "  -o FILE            write the SPMD program to FILE (default:\n"
      "                     input with a _par suffix)\n"
      "  --partition SPEC   partition, e.g. 4x1x1 (overrides directives)\n"
      "  --nprocs N         processor count for the partition search\n"
      "  --strategy S       sync combining: min (default) | pairwise | none\n"
      "  --run              execute on the simulated cluster and validate\n"
      "  --report           print the analysis report only (no output file)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autocfd;

  if (argc < 2) {
    usage();
    return 2;
  }
  std::string input_path = argv[1];
  std::string output_path;
  std::string partition_arg;
  int nprocs = 0;
  auto strategy = sync::CombineStrategy::Min;
  bool run = false, report_only = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-o") {
      output_path = next();
    } else if (arg == "--partition") {
      partition_arg = next();
    } else if (arg == "--nprocs") {
      nprocs = std::atoi(next());
    } else if (arg == "--strategy") {
      const std::string s = next();
      if (s == "min") strategy = sync::CombineStrategy::Min;
      else if (s == "pairwise") strategy = sync::CombineStrategy::Pairwise;
      else if (s == "none") strategy = sync::CombineStrategy::None;
      else {
        usage();
        return 2;
      }
    } else if (arg == "--run") {
      run = true;
    } else if (arg == "--report") {
      report_only = true;
    } else {
      usage();
      return 2;
    }
  }

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "acfd: cannot open %s\n", input_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string source = buf.str();

  try {
    DiagnosticEngine diags;
    auto dirs = core::Directives::extract(source, diags);
    if (diags.has_errors()) {
      std::fprintf(stderr, "%s", diags.dump().c_str());
      return 1;
    }
    if (!partition_arg.empty()) {
      dirs.partition = partition::PartitionSpec::parse(partition_arg);
    }
    if (nprocs > 0) dirs.nprocs = nprocs;

    auto program = core::parallelize(source, dirs, strategy);
    const auto& rep = program->report;
    std::printf("acfd: partition %s, %d field loops, %d dependence pairs\n",
                program->meta.spec.str().c_str(), rep.field_loops,
                rep.dependence_pairs);
    std::printf(
        "acfd: %d synchronization points -> %d after combining (%.1f%%), "
        "%d pipelined sweep(s), %d mirror-image\n",
        rep.syncs_before, rep.syncs_after, rep.optimization_percent,
        rep.pipelined_loops, rep.mirror_image_loops);

    if (!report_only) {
      if (output_path.empty()) {
        output_path = input_path;
        const auto dot = output_path.rfind('.');
        output_path.insert(dot == std::string::npos ? output_path.size()
                                                    : dot,
                           "_par");
      }
      std::ofstream out(output_path);
      out << program->parallel_source;
      std::printf("acfd: wrote %s\n", output_path.c_str());
    }

    if (run) {
      const auto machine = mp::MachineConfig::pentium_ethernet_1999();
      auto par = program->run(machine);
      auto seq_file = fortran::parse_source(source);
      const auto seq = codegen::run_sequential_timed(
          seq_file, dirs.status_arrays, machine);
      double max_diff = 0.0;
      for (const auto& name : dirs.status_arrays) {
        const auto sit = seq.arrays.find(name);
        const auto pit = par.gathered.find(name);
        if (sit == seq.arrays.end() || pit == par.gathered.end()) continue;
        for (std::size_t i = 0; i < sit->second.size(); ++i) {
          max_diff =
              std::max(max_diff, std::abs(sit->second[i] - pit->second[i]));
        }
      }
      std::printf(
          "acfd: sequential %.4f s, parallel %.4f s on %d ranks "
          "(speedup %.2f), max deviation %g\n",
          seq.elapsed, par.elapsed, program->meta.spec.num_tasks(),
          seq.elapsed / par.elapsed, max_diff);
      if (max_diff != 0.0) {
        std::fprintf(stderr, "acfd: VALIDATION FAILED\n");
        return 1;
      }
    }
  } catch (const CompileError& e) {
    std::fprintf(stderr, "acfd: %s\n", e.what());
    return 1;
  }
  return 0;
}

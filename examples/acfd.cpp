// acfd: the Auto-CFD pre-compiler as a command-line tool.
//
//   acfd input.f [-o output.f] [--partition 4x1x1 | --nprocs 6]
//        [--strategy min|pairwise|none] [--run] [--analyze]
//        [--report[=json|text|html]] [--report-out r.json]
//        [--explain[=text|json]] [--profile] [--metrics-out m.json]
//        [--faults=SPEC] [--recovery[=SPEC]] [--watchdog=SEC]
//        [--plan-from=report.json --plan-out=plan.json] [--plan=plan.json]
//        [--sweep=spec.json --sweep-out=scaling.json [--sweep-format=FMT]]
//
// Reads a sequential Fortran CFD program (directives embedded as
// !$acfd comments or overridden on the command line), writes the SPMD
// message-passing program, prints the optimization report, and — with
// --run — executes both versions on the simulated cluster and checks
// they agree.
//
// Observability:
//   --explain          print why every decision was taken (the
//                      decision-provenance log); =json emits the log as
//                      a single JSON document on stdout and moves all
//                      human-readable chatter to stderr, so
//                      `acfd ... --explain=json | python3 -m json.tool`
//                      round-trips.
//   --profile          print the pass profile (per-phase wall time and
//                      counters).
//   --metrics-out F    write the unified metrics registry (compile
//                      phases; plus per-rank runtime histograms when
//                      --run is given) as JSON to F.
//   --report[=FMT]     execute (implies --run) with source-attributed
//                      profiling on and emit the unified run report —
//                      compile decisions joined with per-loop runtime
//                      cost, the communication matrix and per-rank
//                      timelines. FMT: text (default) | json | html.
//   --report-out F     write the run report to F instead of stdout.
//
// Profile-guided planning (the two-run workflow):
//   --plan-from F      read a prior run's --report=json file, search
//                      partition shapes x combine strategies against the
//                      measured profile and comm matrix (biased by
//                      --faults when given), and emit a PlanFile; no
//                      compile or run happens in this mode.
//   --plan-out F       write the PlanFile to F (default: stdout).
//   --plan F           apply a PlanFile: its partition and combining
//                      strategy override the static heuristics, and
//                      every override shows up under --explain.
//
// Scaling observatory (the multi-run workflow):
//   --sweep F          read a SweepSpec (rank counts x partitions x
//                      engines, optional fault plan), execute every
//                      cell on the simulated cluster, and emit one
//                      ScalingReport — speedup/efficiency curves,
//                      Karp-Flatt serial fractions, per-site
//                      communication-share trends, comm-bound vs
//                      compute-bound crossover. With "plan": true in
//                      the spec, the planner's candidate table is
//                      scored at every scale point.
//   --sweep-out F      write the ScalingReport to F (default stdout);
//                      format from the extension unless --sweep-format.
//   --sweep-format FMT json | text (default) | html.
//
// Telemetry ledger (the persistent memory between invocations):
//   --ledger F         append one schema-versioned RunRecord per
//                      execution to the JSONL ledger F: a --run
//                      distills its run report and pass profile, a
//                      --sweep appends one record per cell. The ledger
//                      feeds tools/perf_sentinel (the regression gate)
//                      and --history (the trend views).
//   --history[=FMT]    render trend tables over the ledger named by
//                      --ledger and any sidecars under --history-bench;
//                      needs no input program. FMT: text (default) |
//                      json | html (a self-contained dashboard).
//   --history-out F    write the history view to F instead of stdout.
//   --history-bench D  also fold every BENCH_*.json in directory D
//                      into the history as "bench" records.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "autocfd/core/pipeline.hpp"
#include "autocfd/fault/fault.hpp"
#include "autocfd/fortran/parser.hpp"
#include "autocfd/ledger/history.hpp"
#include "autocfd/ledger/ledger.hpp"
#include "autocfd/ledger/record_builders.hpp"
#include "autocfd/plan/planner.hpp"
#include "autocfd/prof/report.hpp"
#include "autocfd/support/output_paths.hpp"
#include "autocfd/sweep/sweep.hpp"
#include "autocfd/trace/metrics_bridge.hpp"
#include "autocfd/trace/recorder.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: acfd input.f [options]\n"
      "  -o FILE            write the SPMD program to FILE (default:\n"
      "                     input with a _par suffix)\n"
      "  --partition SPEC   partition, e.g. 4x1x1 (overrides directives)\n"
      "  --nprocs N         processor count for the partition search\n"
      "  --strategy S       sync combining: min (default) | pairwise | none\n"
      "  --run              execute on the simulated cluster and validate\n"
      "  --engine=E         statement executor: bytecode (default) | tree\n"
      "                     (the reference tree-walker; results are\n"
      "                     bit-identical, bytecode is just faster)\n"
      "  --analyze          print the analysis report only (no output file)\n"
      "  --report[=FMT]     run (implies --run) with profiling and emit the\n"
      "                     unified run report; FMT: text (default) | json\n"
      "                     | html\n"
      "  --report-out F     write the run report to F instead of stdout\n"
      "  --explain[=FMT]    print decision provenance; FMT: text | json\n"
      "                     (json: the log goes to stdout alone, human\n"
      "                     output to stderr)\n"
      "  --profile          print per-phase wall times and counters\n"
      "  --metrics-out F    write unified metrics JSON to F\n"
      "  --faults=SPEC      chaos-test the run under a seeded fault plan,\n"
      "                     e.g. seed=7,jitter=0.3:0.05,straggler=1:2\n"
      "                     (see fault::FaultPlan::parse)\n"
      "  --recovery[=SPEC]  reliable delivery: retransmit dropped or\n"
      "                     corrupted messages on a virtual-time backoff\n"
      "                     schedule instead of failing fast. SPEC tunes\n"
      "                     budget=N,rto=SEC,backoff=MULT,cap=SEC\n"
      "                     (default budget=8,rto=0.002,backoff=2,cap=0.02)\n"
      "  --watchdog=SEC     virtual-time watchdog deadline for blocked\n"
      "                     communication (default 30; <= 0 disables)\n"
      "  --plan-from F      plan from a prior --report=json file (honors\n"
      "                     --faults) and emit a PlanFile; no compile/run\n"
      "  --plan-out F       write the PlanFile to F (default: stdout)\n"
      "  --plan F           apply a PlanFile's partition/strategy overrides\n"
      "  --sweep F          execute the sweep spec F (rank counts x\n"
      "                     partitions x engines) and emit a ScalingReport\n"
      "  --sweep-out F      write the ScalingReport to F (default: stdout;\n"
      "                     format from the extension)\n"
      "  --sweep-format FMT json | text (default) | html\n"
      "  --ledger F         append one RunRecord per execution (or per\n"
      "                     sweep cell) to the JSONL ledger F\n"
      "  --history[=FMT]    render run-history trends from --ledger and\n"
      "                     --history-bench; no input program needed.\n"
      "                     FMT: text (default) | json | html\n"
      "  --history-out F    write the history view to F\n"
      "  --history-bench D  fold BENCH_*.json sidecars in D into the\n"
      "                     history\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autocfd;

  if (argc < 2) {
    usage();
    return 2;
  }
  // --history needs no input program, so argv[1] may already be an
  // option; every other mode requires the input path first.
  const bool has_input = argv[1][0] != '-';
  std::string input_path = has_input ? argv[1] : "";
  std::string output_path;
  std::string partition_arg;
  std::string metrics_path;
  std::string report_path;
  bool want_report = false;
  auto report_format = prof::ReportFormat::Text;
  int nprocs = 0;
  auto strategy = sync::CombineStrategy::Min;
  bool run = false, analyze_only = false;
  bool explain = false, explain_json = false, profile = false;
  std::string faults_spec;
  std::string recovery_spec;
  bool recovery_on = false;
  std::string plan_from_path, plan_out_path, plan_path;
  std::string sweep_spec_path, sweep_out_path, sweep_format_arg;
  bool sweep_format_set = false;
  double watchdog = mp::Cluster::kDefaultWatchdog;
  auto engine = interp::EngineKind::Bytecode;
  std::string ledger_path;
  bool want_history = false;
  auto history_format = ledger::HistoryFormat::Text;
  std::string history_out_path, history_bench_dir;

  for (int i = has_input ? 2 : 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-o") {
      output_path = next();
    } else if (arg == "--partition") {
      partition_arg = next();
    } else if (arg == "--nprocs") {
      nprocs = std::atoi(next());
    } else if (arg == "--strategy") {
      const std::string s = next();
      if (s == "min") strategy = sync::CombineStrategy::Min;
      else if (s == "pairwise") strategy = sync::CombineStrategy::Pairwise;
      else if (s == "none") strategy = sync::CombineStrategy::None;
      else {
        usage();
        return 2;
      }
    } else if (arg == "--run") {
      run = true;
    } else if (arg == "--analyze") {
      analyze_only = true;
    } else if (arg == "--report" || arg.rfind("--report=", 0) == 0) {
      const std::string fmt =
          arg.size() > 8 && arg[8] == '=' ? arg.substr(9) : "";
      const auto parsed = prof::parse_report_format(fmt);
      if (!parsed) {
        std::fprintf(stderr,
                     "acfd: unknown report format '%s' (expected json, "
                     "text or html)\n",
                     fmt.c_str());
        return 2;
      }
      want_report = true;
      report_format = *parsed;
    } else if (arg == "--report-out") {
      report_path = next();
    } else if (arg == "--explain" || arg == "--explain=text") {
      explain = true;
    } else if (arg == "--explain=json") {
      explain = explain_json = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--metrics-out") {
      metrics_path = next();
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_spec = arg.substr(9);
    } else if (arg == "--faults") {
      faults_spec = next();
    } else if (arg == "--recovery") {
      recovery_on = true;
    } else if (arg.rfind("--recovery=", 0) == 0) {
      recovery_on = true;
      recovery_spec = arg.substr(11);
    } else if (arg.rfind("--plan-from=", 0) == 0) {
      plan_from_path = arg.substr(12);
    } else if (arg == "--plan-from") {
      plan_from_path = next();
    } else if (arg.rfind("--plan-out=", 0) == 0) {
      plan_out_path = arg.substr(11);
    } else if (arg == "--plan-out") {
      plan_out_path = next();
    } else if (arg.rfind("--plan=", 0) == 0) {
      plan_path = arg.substr(7);
    } else if (arg == "--plan") {
      plan_path = next();
    } else if (arg.rfind("--sweep=", 0) == 0) {
      sweep_spec_path = arg.substr(8);
    } else if (arg == "--sweep") {
      sweep_spec_path = next();
    } else if (arg.rfind("--sweep-out=", 0) == 0) {
      sweep_out_path = arg.substr(12);
    } else if (arg == "--sweep-out") {
      sweep_out_path = next();
    } else if (arg.rfind("--sweep-format=", 0) == 0) {
      sweep_format_arg = arg.substr(15);
      sweep_format_set = true;
    } else if (arg == "--sweep-format") {
      sweep_format_arg = next();
      sweep_format_set = true;
    } else if (arg.rfind("--ledger=", 0) == 0) {
      ledger_path = arg.substr(9);
    } else if (arg == "--ledger") {
      ledger_path = next();
    } else if (arg == "--history" || arg.rfind("--history=", 0) == 0) {
      const std::string fmt =
          arg.size() > 9 && arg[9] == '=' ? arg.substr(10) : "";
      const auto parsed = ledger::parse_history_format(fmt);
      if (!parsed) {
        std::fprintf(stderr,
                     "acfd: unknown history format '%s' (expected text, "
                     "json or html)\n",
                     fmt.c_str());
        return 2;
      }
      want_history = true;
      history_format = *parsed;
    } else if (arg.rfind("--history-out=", 0) == 0) {
      history_out_path = arg.substr(14);
    } else if (arg == "--history-out") {
      history_out_path = next();
    } else if (arg.rfind("--history-bench=", 0) == 0) {
      history_bench_dir = arg.substr(16);
    } else if (arg == "--history-bench") {
      history_bench_dir = next();
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      watchdog = std::atof(arg.c_str() + 11);
    } else if (arg == "--watchdog") {
      watchdog = std::atof(next());
    } else if (arg.rfind("--engine=", 0) == 0) {
      try {
        engine = interp::parse_engine_kind(arg.substr(9));
      } catch (const CompileError& e) {
        std::fprintf(stderr, "acfd: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--engine") {
      engine = interp::parse_engine_kind(next());
    } else {
      usage();
      return 2;
    }
  }

  if (!report_path.empty() && !want_report) {
    // --report-out alone implies --report; pick the format from the
    // file extension.
    want_report = true;
    const auto dot = report_path.rfind('.');
    const std::string ext =
        dot == std::string::npos ? "" : report_path.substr(dot + 1);
    if (ext == "json") report_format = prof::ReportFormat::Json;
    else if (ext == "html" || ext == "htm")
      report_format = prof::ReportFormat::Html;
  }
  if (want_report) run = true;  // a run report needs a run
  if (want_report && explain_json && report_path.empty()) {
    std::fprintf(stderr,
                 "acfd: --report and --explain=json both write stdout; "
                 "give the report a file with --report-out\n");
    return 2;
  }

  if (want_history) {
    // History mode: ledger (and/or sidecars) in, trend view out; no
    // program is compiled or run.
    if (ledger_path.empty() && history_bench_dir.empty()) {
      std::fprintf(stderr,
                   "acfd: --history needs --ledger and/or --history-bench "
                   "to read from\n");
      return 2;
    }
    if (!history_out_path.empty()) {
      if (const auto problem = support::validate_output_paths(
              {{"--history-out", history_out_path}})) {
        std::fprintf(stderr, "acfd: %s\n", problem->c_str());
        return 2;
      }
    }
    std::vector<ledger::RunRecord> records;
    if (!ledger_path.empty()) {
      auto loaded = ledger::read_ledger(ledger_path);
      for (const auto& warning : loaded.warnings) {
        std::fprintf(stderr, "acfd: warning: %s\n", warning.c_str());
      }
      records = std::move(loaded.records);
    }
    if (!history_bench_dir.empty()) {
      std::error_code dec;
      std::vector<std::string> sidecars;
      for (const auto& entry :
           std::filesystem::directory_iterator(history_bench_dir, dec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            entry.path().extension() == ".json") {
          sidecars.push_back(entry.path().string());
        }
      }
      if (dec) {
        std::fprintf(stderr, "acfd: cannot list '%s': %s\n",
                     history_bench_dir.c_str(), dec.message().c_str());
        return 2;
      }
      std::sort(sidecars.begin(), sidecars.end());
      for (const auto& sidecar : sidecars) {
        std::string err;
        auto rec = ledger::record_from_sidecar_file(sidecar, &err);
        if (!rec) {
          std::fprintf(stderr, "acfd: warning: %s (skipped)\n", err.c_str());
          continue;
        }
        records.push_back(std::move(*rec));
      }
    }
    if (history_out_path.empty()) {
      std::ostringstream os;
      ledger::write_history(records, history_format, os);
      std::fprintf(stdout, "%s", os.str().c_str());
    } else {
      std::ofstream hos(history_out_path);
      ledger::write_history(records, history_format, hos);
      hos.flush();
      if (!hos) {
        std::fprintf(stderr, "acfd: cannot write history file '%s'\n",
                     history_out_path.c_str());
        return 1;
      }
      std::fprintf(stdout, "acfd: wrote %s (%zu record(s))\n",
                   history_out_path.c_str(), records.size());
    }
    return 0;
  }
  if (!has_input) {
    usage();
    return 2;
  }
  if (!history_out_path.empty() || !history_bench_dir.empty()) {
    std::fprintf(stderr,
                 "acfd: --history-out/--history-bench only make sense "
                 "with --history\n");
    return 2;
  }

  // In --explain=json mode stdout carries exactly one JSON document;
  // everything human-readable goes to stderr instead.
  std::FILE* const chat = explain_json ? stderr : stdout;

  // A directory also "opens" successfully and reads as empty, so probe
  // the path explicitly before blaming the program for being empty.
  std::error_code ec;
  if (!std::filesystem::exists(input_path, ec)) {
    std::fprintf(stderr, "acfd: input file '%s' does not exist\n",
                 input_path.c_str());
    return 1;
  }
  if (!std::filesystem::is_regular_file(input_path, ec)) {
    std::fprintf(stderr, "acfd: input '%s' is not a regular file\n",
                 input_path.c_str());
    return 1;
  }
  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "acfd: input file '%s' exists but is not readable\n",
                 input_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string source = buf.str();

  if (!analyze_only && output_path.empty()) {
    output_path = input_path;
    const auto dot = output_path.rfind('.');
    output_path.insert(dot == std::string::npos ? output_path.size() : dot,
                       "_par");
  }

  // Check every output destination now, before minutes of simulated
  // run time: duplicates and unwritable directories become immediate
  // diagnostics instead of a failure at the final write.
  {
    std::vector<support::OutputPath> outputs;
    if (!analyze_only) outputs.push_back({"-o", output_path});
    if (!metrics_path.empty()) {
      outputs.push_back({"--metrics-out", metrics_path});
    }
    if (!report_path.empty()) {
      outputs.push_back({"--report-out", report_path});
    }
    if (!plan_out_path.empty()) {
      outputs.push_back({"--plan-out", plan_out_path});
    }
    if (!sweep_out_path.empty()) {
      outputs.push_back({"--sweep-out", sweep_out_path});
    }
    if (!ledger_path.empty()) {
      outputs.push_back({"--ledger", ledger_path});
    }
    if (const auto problem = support::validate_output_paths(outputs)) {
      std::fprintf(stderr, "acfd: %s\n", problem->c_str());
      return 2;
    }
  }

  try {
    DiagnosticEngine diags;
    auto dirs = core::Directives::extract(source, diags);
    if (diags.has_errors()) {
      std::fprintf(stderr, "%s", diags.dump().c_str());
      return 1;
    }
    if (!partition_arg.empty()) {
      dirs.partition = partition::PartitionSpec::parse(partition_arg);
    }
    if (nprocs > 0) dirs.nprocs = nprocs;

    if (!sweep_spec_path.empty()) {
      // Sweep mode: spec in, ScalingReport out; every cell runs on the
      // simulated cluster, no SPMD source file is written.
      std::string err;
      auto spec = sweep::SweepSpec::load(sweep_spec_path, &err);
      if (!spec) {
        std::fprintf(stderr, "acfd: %s\n", err.c_str());
        return 2;
      }
      if (spec->title.empty()) {
        spec->title = std::filesystem::path(input_path).stem().string();
      }
      auto format = sweep::SweepFormat::Text;
      if (sweep_format_set) {
        const auto parsed = sweep::parse_sweep_format(sweep_format_arg);
        if (!parsed) {
          std::fprintf(stderr,
                       "acfd: unknown sweep format '%s' (expected json, "
                       "text or html)\n",
                       sweep_format_arg.c_str());
          return 2;
        }
        format = *parsed;
      } else if (!sweep_out_path.empty()) {
        const auto dot = sweep_out_path.rfind('.');
        const std::string ext =
            dot == std::string::npos ? "" : sweep_out_path.substr(dot + 1);
        if (ext == "json") format = sweep::SweepFormat::Json;
        else if (ext == "html" || ext == "htm")
          format = sweep::SweepFormat::Html;
      }
      sweep::SweepOptions sopts;
      sopts.watchdog = watchdog;
      sopts.ledger_path = ledger_path;
      const auto result = sweep::run_sweep(source, dirs, *spec, sopts);
      if (!result.ledger_error.empty()) {
        std::fprintf(stderr, "acfd: ledger append failed: %s\n",
                     result.ledger_error.c_str());
      } else if (!ledger_path.empty()) {
        std::fprintf(chat, "acfd: appended %zu record(s) to %s\n",
                     result.report.cells.size(), ledger_path.c_str());
      }
      const std::string crossed =
          result.report.crossover_nranks > 0
              ? " from " + std::to_string(result.report.crossover_nranks) +
                    " ranks"
              : "";
      std::fprintf(chat, "acfd: sweep '%s': %zu cell(s), %s%s\n",
                   spec->title.c_str(), result.report.cells.size(),
                   result.report.classification.c_str(), crossed.c_str());
      if (sweep_out_path.empty()) {
        std::ostringstream os;
        sweep::write_scaling_report(result.report, format, os);
        std::fprintf(stdout, "%s", os.str().c_str());
      } else {
        std::ofstream sos(sweep_out_path);
        sweep::write_scaling_report(result.report, format, sos);
        sos.flush();
        if (!sos) {
          std::fprintf(stderr, "acfd: cannot write sweep report '%s'\n",
                       sweep_out_path.c_str());
          return 1;
        }
        std::fprintf(chat, "acfd: wrote %s\n", sweep_out_path.c_str());
      }
      return 0;
    }

    if (!plan_from_path.empty()) {
      // Planning mode: measured report in, PlanFile out, nothing runs.
      std::string err;
      const auto plan_input = plan::load_plan_input(plan_from_path, &err);
      if (!plan_input) {
        std::fprintf(stderr, "acfd: %s\n", err.c_str());
        return 2;
      }
      plan::PlannerOptions popts;
      popts.source = source;
      popts.directives = dirs;
      if (!faults_spec.empty()) {
        popts.faults = fault::FaultPlan::parse(faults_spec);
      }
      const auto plan_file = plan::make_plan(*plan_input, popts);
      if (plan_out_path.empty()) {
        std::fprintf(stdout, "%s", plan_file.json().c_str());
      } else {
        std::ofstream pos(plan_out_path);
        plan_file.write_json(pos);
        pos.flush();
        if (!pos) {
          std::fprintf(stderr, "acfd: cannot write plan file '%s'\n",
                       plan_out_path.c_str());
          return 1;
        }
        std::fprintf(chat, "acfd: wrote %s\n", plan_out_path.c_str());
      }
      std::fprintf(chat, "acfd: plan: %s\n", plan_file.rationale.c_str());
      return 0;
    }

    std::optional<core::PlanOverrides> plan_overrides;
    if (!plan_path.empty()) {
      std::string err;
      const auto plan_file = plan::PlanFile::load(plan_path, &err);
      if (!plan_file) {
        std::fprintf(stderr, "acfd: %s\n", err.c_str());
        return 2;
      }
      plan_overrides = plan_file->to_overrides(plan_path);
      if (plan_file->nranks > 0) dirs.nprocs = plan_file->nranks;
      std::fprintf(chat, "acfd: applying plan %s: partition %s, strategy %s\n",
                   plan_path.c_str(), plan_file->partition.c_str(),
                   plan_file->strategy.c_str());
    }

    obs::ObsContext obs;
    const bool want_ledger = !ledger_path.empty();
    const bool want_obs = explain || profile || !metrics_path.empty() ||
                          want_report || want_ledger;
    auto program =
        core::parallelize(source, dirs, strategy, want_obs ? &obs : nullptr,
                          plan_overrides ? &*plan_overrides : nullptr);
    const auto& rep = program->report;
    std::fprintf(chat,
                 "acfd: partition %s, %d field loops, %d dependence pairs\n",
                 program->meta.spec.str().c_str(), rep.field_loops,
                 rep.dependence_pairs);
    std::fprintf(
        chat,
        "acfd: %d synchronization points -> %d after combining (%.1f%%), "
        "%d pipelined sweep(s), %d mirror-image\n",
        rep.syncs_before, rep.syncs_after, rep.optimization_percent,
        rep.pipelined_loops, rep.mirror_image_loops);

    if (!analyze_only) {
      std::ofstream out(output_path);
      out << program->parallel_source;
      out.flush();
      if (!out) {
        std::fprintf(stderr, "acfd: cannot write output file '%s'\n",
                     output_path.c_str());
        return 1;
      }
      std::fprintf(chat, "acfd: wrote %s\n", output_path.c_str());
    }

    fault::FaultInjector injector{faults_spec.empty()
                                      ? fault::FaultPlan{}
                                      : fault::FaultPlan::parse(faults_spec)};
    if (run) {
      const auto machine = mp::MachineConfig::pentium_ethernet_1999();
      trace::TraceRecorder recorder;
      codegen::SpmdRunOptions run_opts;
      run_opts.sink = metrics_path.empty() && !want_report && !want_ledger
                          ? nullptr
                          : &recorder;
      run_opts.faults = faults_spec.empty() ? nullptr : &injector;
      run_opts.watchdog = watchdog;
      run_opts.engine = engine;
      run_opts.profile = want_report || want_ledger;
      if (recovery_on) {
        run_opts.recovery = mp::RecoveryConfig::parse(recovery_spec);
      }
      auto par = program->run(machine, run_opts);
      auto seq_file = fortran::parse_source(source);
      const auto seq = codegen::run_sequential_timed(
          seq_file, dirs.status_arrays, machine, engine);
      double max_diff = 0.0;
      for (const auto& name : dirs.status_arrays) {
        const auto sit = seq.arrays.find(name);
        const auto pit = par.gathered.find(name);
        if (sit == seq.arrays.end() || pit == par.gathered.end()) continue;
        for (std::size_t i = 0; i < sit->second.size(); ++i) {
          max_diff =
              std::max(max_diff, std::abs(sit->second[i] - pit->second[i]));
        }
      }
      std::fprintf(
          chat,
          "acfd: sequential %.4f s, parallel %.4f s on %d ranks "
          "(speedup %.2f), max deviation %g\n",
          seq.elapsed, par.elapsed, program->meta.spec.num_tasks(),
          seq.elapsed / par.elapsed, max_diff);
      if (engine == interp::EngineKind::Bytecode) {
        const auto es = par.engine_stats;
        std::fprintf(chat,
                     "acfd: bytecode engine: %lld kernels compiled, "
                     "%lld cache hits, %lld walks reduced, %lld rejects\n",
                     es.kernels_compiled + es.stmts_compiled, es.cache_hits,
                     es.walks_reduced, es.compile_rejects);
      }
      if (!faults_spec.empty()) {
        const auto& fc = injector.counters();
        std::fprintf(chat,
                     "acfd: chaos plan '%s': %lld delayed (%.4f s), "
                     "%lld dropped, %lld corrupted — results still exact\n",
                     injector.plan().str().c_str(), fc.delayed, fc.delay_s,
                     fc.dropped, fc.corrupted);
      }
      if (recovery_on) {
        long long retransmits = 0, recovered = 0;
        double recovery_s = 0.0;
        for (const auto& st : par.cluster.ranks) {
          retransmits += st.retransmits;
          recovered += st.recovered;
          recovery_s += st.recovery_time;
        }
        std::fprintf(chat,
                     "acfd: recovery '%s': %lld retransmit(s), %lld "
                     "message(s) recovered, %.4f s recovery wait\n",
                     run_opts.recovery.str().c_str(), retransmits, recovered,
                     recovery_s);
      }
      if (!metrics_path.empty()) {
        trace::trace_to_metrics(recorder.trace(), obs.metrics);
        if (!faults_spec.empty()) injector.export_metrics(obs.metrics);
        for (const auto& [key, value] : par.engine_stats.items()) {
          obs.metrics.add(std::string("engine.bytecode.") + key, value);
        }
      }
      std::optional<prof::RunReport> run_report;
      if (want_report || want_ledger) {
        prof::ReportOptions ropts;
        ropts.title =
            std::filesystem::path(input_path).stem().string();
        ropts.engine = engine == interp::EngineKind::Bytecode
                           ? "bytecode"
                           : "tree";
        ropts.seq_elapsed_s = seq.elapsed;
        ropts.recovery_enabled = recovery_on;
        run_report = prof::build_run_report(
            *program, par, recorder.trace(), &obs.provenance, ropts);
        if (!metrics_path.empty()) {
          prof::profile_to_metrics(run_report->profile, obs.metrics);
        }
      }
      if (want_report) {
        if (report_path.empty()) {
          std::ostringstream ros;
          prof::write_report(*run_report, report_format, ros);
          std::fprintf(stdout, "%s", ros.str().c_str());
        } else {
          std::ofstream ros(report_path);
          prof::write_report(*run_report, report_format, ros);
          ros.flush();
          if (!ros) {
            std::fprintf(stderr, "acfd: cannot write report file '%s'\n",
                         report_path.c_str());
            return 1;
          }
          std::fprintf(chat, "acfd: wrote %s\n", report_path.c_str());
        }
      }
      if (max_diff != 0.0) {
        std::fprintf(stderr, "acfd: VALIDATION FAILED\n");
        return 1;
      }
      if (want_ledger) {
        // One history point per validated run. Appended only after the
        // bit-identity check, so the ledger never trends a wrong answer.
        ledger::RunMeta meta;
        meta.kind = "run";
        meta.input = std::filesystem::path(input_path).stem().string();
        meta.machine = "pentium_ethernet_1999";
        meta.source = source;
        meta.seed = faults_spec.empty()
                        ? 0
                        : static_cast<long long>(injector.plan().seed);
        const auto rec = ledger::make_run_record(meta, &*run_report, &obs);
        if (const auto err = ledger::append_record(ledger_path, rec)) {
          std::fprintf(stderr, "acfd: ledger append failed: %s\n",
                       err->c_str());
          return 1;
        }
        std::fprintf(chat, "acfd: appended 1 record to %s\n",
                     ledger_path.c_str());
      }
    }
    if (!run && !ledger_path.empty()) {
      // Compile-only invocations still make a history point: the pass
      // profile and compile metrics trend without a cluster run.
      ledger::RunMeta meta;
      meta.kind = "run";
      meta.input = std::filesystem::path(input_path).stem().string();
      meta.machine = "pentium_ethernet_1999";
      meta.source = source;
      const auto rec = ledger::make_run_record(meta, nullptr, &obs);
      if (const auto err = ledger::append_record(ledger_path, rec)) {
        std::fprintf(stderr, "acfd: ledger append failed: %s\n",
                     err->c_str());
        return 1;
      }
      std::fprintf(chat, "acfd: appended 1 record to %s\n",
                   ledger_path.c_str());
    }

    if (profile) {
      std::fprintf(chat, "\n%s", obs.profiler.text_report().c_str());
    }
    if (explain && !explain_json) {
      std::fprintf(stdout, "\n%s", obs.provenance.text_report().c_str());
    }
    if (explain_json) {
      std::ostringstream os;
      obs.provenance.write_json(os);
      std::fprintf(stdout, "%s\n", os.str().c_str());
    }
    if (!metrics_path.empty()) {
      obs.export_profile_to_metrics();
      std::ofstream mos(metrics_path);
      obs.metrics.write_json(mos);
      mos.flush();
      if (!mos) {
        std::fprintf(stderr, "acfd: cannot write metrics file '%s'\n",
                     metrics_path.c_str());
        return 1;
      }
      std::fprintf(chat, "acfd: wrote %s\n", metrics_path.c_str());
    }
  } catch (const mp::CommError& e) {
    // A detected runtime fault (watchdog timeout, checksum mismatch):
    // report the structured attribution, distinct exit code.
    const auto& info = e.info();
    std::fprintf(stderr,
                 "acfd: communication failure: %s\n"
                 "acfd:   rank=%d peer=%d tag=%d site=%s virtual_t=%.6f s "
                 "attempts=%d\n",
                 e.what(), info.rank, info.peer, info.tag,
                 info.site_label.c_str(), info.time, info.attempts);
    return 3;
  } catch (const CompileError& e) {
    std::fprintf(stderr, "acfd: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything else (bad directive files, malformed partition specs,
    // I/O failures) must exit cleanly too, never abort on a throw.
    std::fprintf(stderr, "acfd: error: %s\n", e.what());
    return 1;
  }
  return 0;
}

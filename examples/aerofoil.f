!$acfd grid 40 20 8
!$acfd status u uo v vo w wo p po r ro e eo fx1 fx2 fx3 fy1 fy2 fy3 fz1 fz2 fz3 q
program aerofoil
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
parameter (nt = 2)
integer it
call init
do it = 1, nt
  call bcond
  call savold
  call fxmass
  call fxmomm
  call fxener
  call advx_u
  call disx_u
  call visx_u
  call rhsx_u
  call advx_v
  call disx_v
  call visx_v
  call rhsx_v
  call advx_w
  call disx_w
  call visx_w
  call rhsx_w
  call advx_p
  call disx_p
  call visx_p
  call rhsx_p
  call advx_r
  call disx_r
  call visx_r
  call rhsx_r
  call advx_e
  call disx_e
  call visx_e
  call rhsx_e
  call fymass
  call fymomm
  call fyener
  call advy_u
  call disy_u
  call visy_u
  call rhsy_u
  call advy_v
  call disy_v
  call visy_v
  call rhsy_v
  call advy_w
  call disy_w
  call visy_w
  call rhsy_w
  call advy_p
  call disy_p
  call visy_p
  call rhsy_p
  call advy_r
  call disy_r
  call visy_r
  call rhsy_r
  call advy_e
  call disy_e
  call visy_e
  call rhsy_e
  call fzmass
  call fzmomm
  call fzener
  call advz_u
  call disz_u
  call visz_u
  call rhsz_u
  call advz_v
  call disz_v
  call visz_v
  call rhsz_v
  call advz_w
  call disz_w
  call visz_w
  call rhsz_w
  call advz_p
  call disz_p
  call visz_p
  call rhsz_p
  call advz_r
  call disz_r
  call visz_r
  call rhsz_r
  call advz_e
  call disz_e
  call visz_e
  call rhsz_e
  call corr_p
  call corr_r
  call corr_e
  call blay_u
  call blay_w
  call blay_e
  call smz_u
  call smz_v
  call smz_p
  call smz_r
  call fltz_u
  call fltz_v
  call fltz_w
  call fltz_p
  call fltz_r
  call fltz_e
  call packq
  call sweepx
  call sweepp
  call sweepr
  call sweepe
  call sweepy
  call resid
  if (resmax .lt. 1.0e-12) goto 910
end do
910 continue
end
subroutine init
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k, m
do k = 1, n3
  do j = 1, n2
    do i = 1, n1
      u(i, j, k) = 0.001 * 1 * (i + 2 * j + 3 * k)
      uo(i, j, k) = u(i, j, k)
      v(i, j, k) = 0.001 * 2 * (i + 2 * j + 3 * k)
      vo(i, j, k) = v(i, j, k)
      w(i, j, k) = 0.001 * 3 * (i + 2 * j + 3 * k)
      wo(i, j, k) = w(i, j, k)
      p(i, j, k) = 0.001 * 4 * (i + 2 * j + 3 * k)
      po(i, j, k) = p(i, j, k)
      r(i, j, k) = 0.001 * 5 * (i + 2 * j + 3 * k)
      ro(i, j, k) = r(i, j, k)
      e(i, j, k) = 0.001 * 6 * (i + 2 * j + 3 * k)
      eo(i, j, k) = e(i, j, k)
      fx1(i, j, k) = 0.0
      fx2(i, j, k) = 0.0
      fx3(i, j, k) = 0.0
      fy1(i, j, k) = 0.0
      fy2(i, j, k) = 0.0
      fy3(i, j, k) = 0.0
      fz1(i, j, k) = 0.0
      fz2(i, j, k) = 0.0
      fz3(i, j, k) = 0.0
      do m = 1, 3
        q(i, j, k, m) = 0.0
      end do
    end do
  end do
end do
return
end
subroutine bcond
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
do k = 1, n3
  do j = 1, n2
    u(1, j, k) = 1.0
    u(n1, j, k) = 0.98
    p(1, j, k) = 1.0
  end do
end do
do k = 1, n3
  do i = 1, n1
    v(i, 1, k) = 0.0
    w(i, 1, k) = 0.0
    u(i, n2, k) = 1.0
  end do
end do
return
end
subroutine savold
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
do k = 1, n3
  do j = 1, n2
    do i = 1, n1
      uo(i, j, k) = u(i, j, k)
      vo(i, j, k) = v(i, j, k)
      wo(i, j, k) = w(i, j, k)
      po(i, j, k) = p(i, j, k)
      ro(i, j, k) = r(i, j, k)
      eo(i, j, k) = e(i, j, k)
    end do
  end do
end do
return
end
subroutine fxmass
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (ro(i + 1, j, k) - ro(i - 1, j, k))
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      fx1(i, j, k) = fx1(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fxmomm
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      fx2(i, j, k) = fx2(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fxener
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      fx3(i, j, k) = fx3(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advx_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (fx1(i + 1, j, k) - fx1(i - 1, j, k))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disx_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (fx2(i + 1, j, k) - fx2(i - 1, j, k))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visx_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsx_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (fx3(i + 1, j, k) - fx3(i - 1, j, k))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advx_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (vo(i + 1, j, k) - vo(i - 1, j, k))
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (fx1(i + 1, j, k) - fx1(i - 1, j, k))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disx_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (vo(i + 1, j, k) - vo(i - 1, j, k))
      acc = acc + 0.5 * (fx2(i + 1, j, k) - fx2(i - 1, j, k))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visx_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (vo(i + 1, j, k) - vo(i - 1, j, k))
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsx_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (vo(i + 1, j, k) - vo(i - 1, j, k))
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (fx3(i + 1, j, k) - fx3(i - 1, j, k))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advx_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (wo(i + 1, j, k) - wo(i - 1, j, k))
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (fx1(i + 1, j, k) - fx1(i - 1, j, k))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disx_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (wo(i + 1, j, k) - wo(i - 1, j, k))
      acc = acc + 0.5 * (fx2(i + 1, j, k) - fx2(i - 1, j, k))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visx_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (wo(i + 1, j, k) - wo(i - 1, j, k))
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsx_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (wo(i + 1, j, k) - wo(i - 1, j, k))
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (fx3(i + 1, j, k) - fx3(i - 1, j, k))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advx_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (fx1(i + 1, j, k) - fx1(i - 1, j, k))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disx_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (fx2(i + 1, j, k) - fx2(i - 1, j, k))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visx_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsx_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (fx3(i + 1, j, k) - fx3(i - 1, j, k))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advx_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (ro(i + 1, j, k) - ro(i - 1, j, k))
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (fx1(i + 1, j, k) - fx1(i - 1, j, k))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disx_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (ro(i + 1, j, k) - ro(i - 1, j, k))
      acc = acc + 0.5 * (fx2(i + 1, j, k) - fx2(i - 1, j, k))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visx_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (ro(i + 1, j, k) - ro(i - 1, j, k))
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsx_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (ro(i + 1, j, k) - ro(i - 1, j, k))
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (fx3(i + 1, j, k) - fx3(i - 1, j, k))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advx_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (fx1(i + 1, j, k) - fx1(i - 1, j, k))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disx_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      acc = acc + 0.5 * (fx2(i + 1, j, k) - fx2(i - 1, j, k))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visx_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsx_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (fx3(i + 1, j, k) - fx3(i - 1, j, k))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fymass
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (r(i, j + 1, k) - r(i, j - 1, k))
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      fy1(i, j, k) = fy1(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fymomm
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      acc = acc + 0.5 * (p(i, j + 1, k) - p(i, j - 1, k))
      fy2(i, j, k) = fy2(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fyener
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (e(i, j + 1, k) - e(i, j - 1, k))
      acc = acc + 0.5 * (p(i, j + 1, k) - p(i, j - 1, k))
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      fy3(i, j, k) = fy3(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advy_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (uo(i, j + 1, k) - uo(i, j - 1, k))
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      acc = acc + 0.5 * (fy1(i, j + 1, k) - fy1(i, j - 1, k))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disy_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (uo(i, j + 1, k) - uo(i, j - 1, k))
      acc = acc + 0.5 * (fy2(i, j + 1, k) - fy2(i, j - 1, k))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visy_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (uo(i, j + 1, k) - uo(i, j - 1, k))
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsy_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (uo(i, j + 1, k) - uo(i, j - 1, k))
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      acc = acc + 0.5 * (fy3(i, j + 1, k) - fy3(i, j - 1, k))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advy_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      acc = acc + 0.5 * (fy1(i, j + 1, k) - fy1(i, j - 1, k))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disy_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      acc = acc + 0.5 * (fy2(i, j + 1, k) - fy2(i, j - 1, k))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visy_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsy_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      acc = acc + 0.5 * (fy3(i, j + 1, k) - fy3(i, j - 1, k))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advy_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (wo(i, j + 1, k) - wo(i, j - 1, k))
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      acc = acc + 0.5 * (fy1(i, j + 1, k) - fy1(i, j - 1, k))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disy_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (wo(i, j + 1, k) - wo(i, j - 1, k))
      acc = acc + 0.5 * (fy2(i, j + 1, k) - fy2(i, j - 1, k))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visy_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (wo(i, j + 1, k) - wo(i, j - 1, k))
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsy_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (wo(i, j + 1, k) - wo(i, j - 1, k))
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      acc = acc + 0.5 * (fy3(i, j + 1, k) - fy3(i, j - 1, k))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advy_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      acc = acc + 0.5 * (fy1(i, j + 1, k) - fy1(i, j - 1, k))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disy_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      acc = acc + 0.5 * (fy2(i, j + 1, k) - fy2(i, j - 1, k))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visy_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsy_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      acc = acc + 0.5 * (fy3(i, j + 1, k) - fy3(i, j - 1, k))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advy_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (ro(i, j + 1, k) - ro(i, j - 1, k))
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      acc = acc + 0.5 * (fy1(i, j + 1, k) - fy1(i, j - 1, k))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disy_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (ro(i, j + 1, k) - ro(i, j - 1, k))
      acc = acc + 0.5 * (fy2(i, j + 1, k) - fy2(i, j - 1, k))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visy_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (ro(i, j + 1, k) - ro(i, j - 1, k))
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsy_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (ro(i, j + 1, k) - ro(i, j - 1, k))
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      acc = acc + 0.5 * (fy3(i, j + 1, k) - fy3(i, j - 1, k))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advy_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      acc = acc + 0.5 * (fy1(i, j + 1, k) - fy1(i, j - 1, k))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disy_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      acc = acc + 0.5 * (fy2(i, j + 1, k) - fy2(i, j - 1, k))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visy_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsy_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      acc = acc + 0.5 * (fy3(i, j + 1, k) - fy3(i, j - 1, k))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fzmass
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (r(i, j, k + 1) - r(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      fz1(i, j, k) = fz1(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fzmomm
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (p(i, j, k + 1) - p(i, j, k - 1))
      fz2(i, j, k) = fz2(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fzener
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (e(i, j, k + 1) - e(i, j, k - 1))
      acc = acc + 0.5 * (p(i, j, k + 1) - p(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      fz3(i, j, k) = fz3(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advz_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (uo(i, j, k + 1) - uo(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (fz1(i, j, k + 1) - fz1(i, j, k - 1))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disz_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (uo(i, j, k + 1) - uo(i, j, k - 1))
      acc = acc + 0.5 * (fz2(i, j, k + 1) - fz2(i, j, k - 1))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visz_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (uo(i, j, k + 1) - uo(i, j, k - 1))
      acc = acc + 0.5 * (eo(i, j, k + 1) - eo(i, j, k - 1))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsz_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (uo(i, j, k + 1) - uo(i, j, k - 1))
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (fz3(i, j, k + 1) - fz3(i, j, k - 1))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advz_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (vo(i, j, k + 1) - vo(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (fz1(i, j, k + 1) - fz1(i, j, k - 1))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disz_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (vo(i, j, k + 1) - vo(i, j, k - 1))
      acc = acc + 0.5 * (fz2(i, j, k + 1) - fz2(i, j, k - 1))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visz_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (vo(i, j, k + 1) - vo(i, j, k - 1))
      acc = acc + 0.5 * (eo(i, j, k + 1) - eo(i, j, k - 1))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsz_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (vo(i, j, k + 1) - vo(i, j, k - 1))
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (fz3(i, j, k + 1) - fz3(i, j, k - 1))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advz_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (fz1(i, j, k + 1) - fz1(i, j, k - 1))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disz_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (fz2(i, j, k + 1) - fz2(i, j, k - 1))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visz_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (eo(i, j, k + 1) - eo(i, j, k - 1))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsz_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (fz3(i, j, k + 1) - fz3(i, j, k - 1))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advz_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (fz1(i, j, k + 1) - fz1(i, j, k - 1))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disz_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (fz2(i, j, k + 1) - fz2(i, j, k - 1))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visz_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (eo(i, j, k + 1) - eo(i, j, k - 1))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsz_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (fz3(i, j, k + 1) - fz3(i, j, k - 1))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advz_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (fz1(i, j, k + 1) - fz1(i, j, k - 1))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disz_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      acc = acc + 0.5 * (fz2(i, j, k + 1) - fz2(i, j, k - 1))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visz_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      acc = acc + 0.5 * (eo(i, j, k + 1) - eo(i, j, k - 1))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsz_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (fz3(i, j, k + 1) - fz3(i, j, k - 1))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine advz_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (eo(i, j, k + 1) - eo(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (fz1(i, j, k + 1) - fz1(i, j, k - 1))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine disz_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (eo(i, j, k + 1) - eo(i, j, k - 1))
      acc = acc + 0.5 * (fz2(i, j, k + 1) - fz2(i, j, k - 1))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine visz_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (eo(i, j, k + 1) - eo(i, j, k - 1))
      acc = acc + 0.5 * (eo(i, j, k + 1) - eo(i, j, k - 1))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine rhsz_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (eo(i, j, k + 1) - eo(i, j, k - 1))
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (fz3(i, j, k + 1) - fz3(i, j, k - 1))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine corr_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (po(i + 1, j, k) - po(i - 1, j, k))
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (uo(i, j + 1, k) - uo(i, j - 1, k))
      acc = acc + 0.5 * (vo(i + 1, j, k) - vo(i - 1, j, k))
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine corr_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (ro(i + 1, j, k) - ro(i - 1, j, k))
      acc = acc + 0.5 * (ro(i, j + 1, k) - ro(i, j - 1, k))
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (uo(i, j + 1, k) - uo(i, j - 1, k))
      acc = acc + 0.5 * (vo(i + 1, j, k) - vo(i - 1, j, k))
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine corr_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 2, n1 - 1
      acc = 0.0
      acc = acc + 0.5 * (eo(i + 1, j, k) - eo(i - 1, j, k))
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      acc = acc + 0.5 * (uo(i + 1, j, k) - uo(i - 1, j, k))
      acc = acc + 0.5 * (uo(i, j + 1, k) - uo(i, j - 1, k))
      acc = acc + 0.5 * (vo(i + 1, j, k) - vo(i - 1, j, k))
      acc = acc + 0.5 * (vo(i, j + 1, k) - vo(i, j - 1, k))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine blay_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (uo(i, j + 1, k) - uo(i, j - 1, k))
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine blay_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (wo(i, j + 1, k) - wo(i, j - 1, k))
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine blay_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 1, n3
  do j = 2, n2 - 1
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (eo(i, j + 1, k) - eo(i, j - 1, k))
      acc = acc + 0.5 * (po(i, j + 1, k) - po(i, j - 1, k))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine smz_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (uo(i, j, k + 1) - uo(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine smz_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (vo(i, j, k + 1) - vo(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine smz_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine smz_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fltz_u
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (uo(i, j, k + 1) - uo(i, j, k - 1))
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      u(i, j, k) = u(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fltz_v
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (vo(i, j, k + 1) - vo(i, j, k - 1))
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      v(i, j, k) = v(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fltz_w
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (wo(i, j, k + 1) - wo(i, j, k - 1))
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      w(i, j, k) = w(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fltz_p
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (po(i, j, k + 1) - po(i, j, k - 1))
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      p(i, j, k) = p(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fltz_r
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      r(i, j, k) = r(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine fltz_e
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
real acc
do k = 2, n3 - 1
  do j = 1, n2
    do i = 1, n1
      acc = 0.0
      acc = acc + 0.5 * (eo(i, j, k + 1) - eo(i, j, k - 1))
      acc = acc + 0.5 * (ro(i, j, k + 1) - ro(i, j, k - 1))
      e(i, j, k) = e(i, j, k) * 0.98 + 0.01 * acc
    end do
  end do
end do
return
end
subroutine packq
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      q(i, j, k, 1) = 0.5 * (fx1(i - 1, j, k) + fx1(i + 1, j, k))
      q(i, j, k, 2) = 0.5 * (fx2(i - 1, j, k) + fx2(i + 1, j, k))
      q(i, j, k, 3) = 0.5 * (fx3(i - 1, j, k) + fx3(i + 1, j, k))
    end do
  end do
end do
return
end
subroutine sweepx
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      u(i, j, k) = 0.96 * u(i, j, k) + 0.02 * (u(i - 1, j, k) &
                 + u(i + 1, j, k)) + 0.005 * q(i, j, k, 2)
    end do
  end do
end do
return
end
subroutine sweepp
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      p(i, j, k) = 0.96 * p(i, j, k) + 0.02 * (p(i - 1, j, k) &
                 + p(i + 1, j, k)) + 0.005 * q(i, j, k, 1)
    end do
  end do
end do
return
end
subroutine sweepr
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      r(i, j, k) = 0.96 * r(i, j, k) + 0.02 * (r(i - 1, j, k) &
                 + r(i + 1, j, k)) + 0.005 * q(i, j, k, 1)
    end do
  end do
end do
return
end
subroutine sweepe
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
do k = 1, n3
  do j = 1, n2
    do i = 2, n1 - 1
      e(i, j, k) = 0.96 * e(i, j, k) + 0.02 * (e(i - 1, j, k) &
                 + e(i + 1, j, k)) + 0.005 * q(i, j, k, 3)
    end do
  end do
end do
return
end
subroutine sweepy
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
do k = 1, n3
  do i = 1, n1
    do j = 2, n2 - 1
      v(i, j, k) = 0.96 * v(i, j, k) + 0.02 * (vo(i, j - 1, k) &
                 + vo(i, j + 1, k)) + 0.005 * q(i, j, k, 3)
    end do
  end do
end do
return
end
subroutine resid
parameter (n1 = 40, n2 = 20, n3 = 8)
real u(n1, n2, n3), uo(n1, n2, n3)
real v(n1, n2, n3), vo(n1, n2, n3)
real w(n1, n2, n3), wo(n1, n2, n3)
real p(n1, n2, n3), po(n1, n2, n3)
real r(n1, n2, n3), ro(n1, n2, n3)
real e(n1, n2, n3), eo(n1, n2, n3)
real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)
real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)
real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)
real q(n1, n2, n3, 3)
real resmax
common /flow/ u, uo, v, vo, w, wo, p, po, r, ro, e, eo, fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax
integer i, j, k
resmax = 0.0
do k = 1, n3
  do j = 1, n2
    do i = 1, n1
      resmax = max(resmax, abs(u(i, j, k) - uo(i, j, k)))
    end do
  end do
end do
return
end

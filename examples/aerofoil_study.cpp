// Case study 1: the aerofoil simulation (paper section 6).
//
//   $ ./aerofoil_study [n1 n2 n3 frames]
//
// Parallelizes the 3-D aerofoil analog at a configurable grid size,
// reports the mirror-image decomposition the self-dependent relaxation
// sweeps require, sweeps the partitions the paper measured, and
// validates each parallel run against the sequential execution.
#include <cstdio>
#include <cstdlib>

#include "autocfd/cfd/apps.hpp"
#include "autocfd/core/pipeline.hpp"
#include "autocfd/fortran/parser.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;

  cfd::AerofoilParams params;
  params.n1 = 48;  // default: laptop-friendly subset of 99x41x13
  params.n2 = 20;
  params.n3 = 8;
  params.frames = 2;
  if (argc >= 4) {
    params.n1 = std::atoll(argv[1]);
    params.n2 = std::atoll(argv[2]);
    params.n3 = std::atoll(argv[3]);
  }
  if (argc >= 5) params.frames = std::atoi(argv[4]);

  std::printf("=== Case study 1: aerofoil simulation (%lldx%lldx%lld, %d frames) ===\n\n",
              params.n1, params.n2, params.n3, params.frames);

  const auto src = cfd::aerofoil_source(params);
  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(src, diags);

  std::printf("Generated Fortran source: %zu lines, %zu bytes\n",
              static_cast<std::size_t>(
                  std::count(src.begin(), src.end(), '\n')),
              src.size());

  const auto machine = mp::MachineConfig::pentium_ethernet_1999();
  auto seq_file = fortran::parse_source(src);
  const auto seq =
      codegen::run_sequential_timed(seq_file, dirs.status_arrays, machine);
  std::printf("Sequential run: %.3f virtual s (%.0fM flops)\n\n", seq.elapsed,
              seq.flops / 1e6);

  std::printf("%-10s %6s %6s %9s %9s %10s %9s  %s\n", "partition", "before",
              "after", "pipeline", "mirror", "time (s)", "speedup",
              "validated");
  for (const auto* part : {"2x1x1", "4x1x1", "2x2x1", "3x2x1"}) {
    dirs.partition = partition::PartitionSpec::parse(part);
    auto program = core::parallelize(src, dirs);
    auto par = program->run(machine);

    double max_diff = 0.0;
    for (const auto& name : dirs.status_arrays) {
      const auto& s = seq.arrays.at(name);
      const auto& g = par.gathered.at(name);
      for (std::size_t i = 0; i < s.size(); ++i) {
        max_diff = std::max(max_diff, std::abs(s[i] - g[i]));
      }
    }
    std::printf("%-10s %6d %6d %9d %9d %10.3f %9.2f  %s\n", part,
                program->report.syncs_before, program->report.syncs_after,
                program->report.pipelined_loops,
                program->report.mirror_image_loops, par.elapsed,
                seq.elapsed / par.elapsed,
                max_diff == 0.0 ? "bitwise" : "DIVERGED");
  }

  std::printf(
      "\nThe mirror-image sweeps (sweepx/sweepp/sweepr/sweepe) pipeline\n"
      "along X: each block waits for its upstream neighbor's updated\n"
      "boundary, sends line-grained messages downstream, and exchanges\n"
      "old values for the anti-dependence half before the sweep — the\n"
      "reason this case scales worse than the sprayer (paper Table 2).\n");
  return 0;
}

// Chaos study: the fault-injection differential harness as a CLI.
//
// Runs the sprayer case study under a sweep of seeded timing-only
// fault schedules and asserts the parallel results stay bit-identical
// to the sequential run; then injects one targeted drop and one
// targeted corruption and asserts both are *detected* (watchdog
// timeout with correct attribution, checksum mismatch); finally runs
// a recovered-vs-clean differential: the same lossy plans with
// reliable delivery enabled must complete and produce results
// bit-identical to the clean run, with every injected fault absorbed
// by retransmission. Writes a JSON artifact summarizing every run and
// exits non-zero if any property was violated — the CI chaos smoke
// job runs exactly this binary.
//
//   chaos_study [--seeds=N] [--out=chaos.json] [--grid=NXxNY]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "autocfd/cfd/apps.hpp"
#include "autocfd/core/pipeline.hpp"
#include "autocfd/fault/fault.hpp"
#include "autocfd/fortran/parser.hpp"
#include "autocfd/trace/recorder.hpp"

using namespace autocfd;

namespace {

struct RunRecord {
  std::string name;
  std::string plan;
  bool ok = false;
  std::string detail;
  double elapsed = 0.0;
  long long delayed = 0, dropped = 0, corrupted = 0;
  long long retransmits = 0, recovered = 0;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

void write_report(const std::string& path,
                  const std::vector<RunRecord>& records, bool all_ok) {
  std::ofstream os(path);
  os << "{\n  \"all_ok\": " << (all_ok ? "true" : "false")
     << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    os << "    {\"name\": \"" << json_escape(r.name) << "\", \"plan\": \""
       << json_escape(r.plan) << "\", \"ok\": " << (r.ok ? "true" : "false")
       << ", \"elapsed_s\": " << r.elapsed << ", \"delayed\": " << r.delayed
       << ", \"dropped\": " << r.dropped << ", \"corrupted\": " << r.corrupted
       << ", \"retransmits\": " << r.retransmits
       << ", \"recovered\": " << r.recovered
       << ", \"detail\": \"" << json_escape(r.detail) << "\"}"
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  if (!os) {
    std::fprintf(stderr, "chaos_study: cannot write report to '%s'\n",
                 path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 8;
  std::string out = "chaos.json";
  int nx = 18, ny = 12;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::stoi(arg.substr(8));
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else if (arg.rfind("--grid=", 0) == 0) {
      const auto spec = arg.substr(7);
      if (std::sscanf(spec.c_str(), "%dx%d", &nx, &ny) != 2) {
        std::fprintf(stderr, "chaos_study: bad --grid '%s'\n", spec.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: chaos_study [--seeds=N] [--out=FILE] "
                   "[--grid=NXxNY]\n");
      return 2;
    }
  }

  cfd::SprayerParams params;
  params.nx = nx;
  params.ny = ny;
  params.frames = 2;
  const auto source = cfd::sprayer_source(params);
  const auto machine = mp::MachineConfig::pentium_ethernet_1999();

  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(source, diags);
  if (diags.has_errors()) {
    std::fprintf(stderr, "%s\n", diags.dump().c_str());
    return 2;
  }
  dirs.partition = partition::PartitionSpec::parse("2x2");
  auto seq_file = fortran::parse_source(source);
  const auto seq =
      codegen::run_sequential_timed(seq_file, dirs.status_arrays, machine);
  auto program = core::parallelize(source, dirs);

  const auto bit_identical = [&](const codegen::SpmdRunResult& par,
                                 std::string* why) {
    for (const auto& name : dirs.status_arrays) {
      const auto& s = seq.arrays.at(name);
      const auto& g = par.gathered.at(name);
      if (s.size() != g.size()) {
        *why = "size mismatch in " + name;
        return false;
      }
      for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != g[i]) {
          *why = name + "[" + std::to_string(i) + "] differs";
          return false;
        }
      }
    }
    return true;
  };

  std::vector<RunRecord> records;
  std::printf("chaos_study: sprayer %dx%d on 2x2, %d timing seeds\n", nx, ny,
              seeds);

  // Phase 1: seeded timing-only schedules must not change results.
  for (int seed = 1; seed <= seeds; ++seed) {
    fault::FaultPlan plan;
    plan.seed = static_cast<std::uint64_t>(seed);
    plan.jitter_prob = 0.5;
    plan.jitter_max = 0.02;
    plan.windows.push_back({0.0, 1.0, 0.05, -1, -1});
    plan.stragglers.push_back({seed % 4, 1.0 + 0.5 * (seed % 3)});
    fault::FaultInjector injector(plan);
    codegen::SpmdRunOptions opts;
    opts.faults = &injector;

    RunRecord rec;
    rec.name = "timing-seed-" + std::to_string(seed);
    rec.plan = plan.str();
    try {
      const auto par = program->run(machine, opts);
      rec.elapsed = par.elapsed;
      std::string why;
      rec.ok = bit_identical(par, &why);
      rec.detail = rec.ok ? "bit-identical to sequential" : why;
    } catch (const std::exception& e) {
      rec.detail = std::string("unexpected error: ") + e.what();
    }
    rec.delayed = injector.counters().delayed;
    rec.dropped = injector.counters().dropped;
    rec.corrupted = injector.counters().corrupted;
    std::printf("  %-16s %-6s delayed=%-4lld elapsed=%.4f  %s\n",
                rec.name.c_str(), rec.ok ? "ok" : "FAIL", rec.delayed,
                rec.elapsed, rec.detail.c_str());
    records.push_back(rec);
  }

  // Find a message to target for the detection runs.
  int tag = -1, src = -1, dst = -1;
  {
    trace::TraceRecorder recorder;
    (void)program->run(machine, &recorder);
    for (const auto& rank_events : recorder.trace().per_rank) {
      for (const auto& e : rank_events) {
        if (e.kind == mp::EventKind::Send) {
          tag = e.tag;
          src = e.rank;
          dst = e.peer;
          break;
        }
      }
      if (tag >= 0) break;
    }
  }

  // Phase 2: a dropped message must trip the watchdog, attributed.
  {
    fault::FaultPlan plan;
    plan.drops.push_back({src, dst, tag, 0});
    fault::FaultInjector injector(plan);
    codegen::SpmdRunOptions opts;
    opts.faults = &injector;
    opts.watchdog = 5.0;
    RunRecord rec;
    rec.name = "drop-detection";
    rec.plan = plan.str();
    try {
      (void)program->run(machine, opts);
      rec.detail = "dropped message was not detected";
    } catch (const mp::CommTimeoutError& e) {
      const auto& info = e.info();
      rec.ok = info.rank == dst && info.peer == src && info.tag == tag;
      rec.detail = rec.ok ? std::string("watchdog: ") + e.what()
                          : "watchdog tripped with wrong attribution";
      rec.elapsed = info.time;
    } catch (const std::exception& e) {
      rec.detail = std::string("wrong error type: ") + e.what();
    }
    rec.dropped = injector.counters().dropped;
    std::printf("  %-16s %-6s %s\n", rec.name.c_str(),
                rec.ok ? "ok" : "FAIL", rec.detail.c_str());
    records.push_back(rec);
  }

  // Phase 3: a corrupted payload must fail its checksum.
  {
    fault::FaultPlan plan;
    plan.corruptions.push_back({src, dst, tag, 0});
    fault::FaultInjector injector(plan);
    codegen::SpmdRunOptions opts;
    opts.faults = &injector;
    RunRecord rec;
    rec.name = "corrupt-detection";
    rec.plan = plan.str();
    try {
      (void)program->run(machine, opts);
      rec.detail = "corrupted payload was consumed silently";
    } catch (const mp::CommChecksumError& e) {
      const auto& info = e.info();
      rec.ok = info.rank == dst && info.peer == src && info.tag == tag;
      rec.detail = rec.ok ? std::string("checksum: ") + e.what()
                          : "checksum error with wrong attribution";
    } catch (const std::exception& e) {
      rec.detail = std::string("wrong error type: ") + e.what();
    }
    rec.corrupted = injector.counters().corrupted;
    std::printf("  %-16s %-6s %s\n", rec.name.c_str(),
                rec.ok ? "ok" : "FAIL", rec.detail.c_str());
    records.push_back(rec);
  }

  // Phase 4: recovered-vs-clean differential. The same class of loss
  // the detection phases fail fast on must be *absorbed* once reliable
  // delivery is on: under seeded drop+corruption plans the run
  // completes and its gathered arrays are bit-identical to a clean
  // (fault-free) run of the same program.
  {
    const auto clean = program->run(machine, codegen::SpmdRunOptions{});
    const int recovery_seeds = seeds < 4 ? seeds : 4;
    for (int seed = 1; seed <= recovery_seeds; ++seed) {
      fault::FaultPlan plan;
      plan.seed = static_cast<std::uint64_t>(100 + seed);
      plan.drop_prob = 0.05;
      plan.corrupt_prob = 0.03;
      fault::FaultInjector injector(plan);
      codegen::SpmdRunOptions opts;
      opts.faults = &injector;
      opts.recovery = mp::RecoveryConfig::parse("default");

      RunRecord rec;
      rec.name = "recovery-seed-" + std::to_string(100 + seed);
      rec.plan = plan.str();
      try {
        const auto par = program->run(machine, opts);
        rec.elapsed = par.elapsed;
        for (const auto& st : par.cluster.ranks) {
          rec.retransmits += st.retransmits;
          rec.recovered += st.recovered;
        }
        std::string why;
        rec.ok = bit_identical(par, &why);
        if (rec.ok) {
          // Recovery re-sends the pristine payload, so loss must leave
          // no numerical trace: compare against the clean parallel run
          // too, element for element.
          for (const auto& name : dirs.status_arrays) {
            if (clean.gathered.at(name) != par.gathered.at(name)) {
              rec.ok = false;
              why = name + " differs from the clean run";
              break;
            }
          }
        }
        const long long faults =
            injector.counters().dropped + injector.counters().corrupted;
        if (rec.ok && faults > 0 && rec.recovered == 0) {
          rec.ok = false;
          why = "faults were injected but nothing was recovered";
        }
        rec.detail =
            rec.ok ? "recovered run bit-identical to clean run" : why;
      } catch (const std::exception& e) {
        rec.detail = std::string("recovery failed: ") + e.what();
      }
      rec.dropped = injector.counters().dropped;
      rec.corrupted = injector.counters().corrupted;
      std::printf(
          "  %-16s %-6s dropped=%-3lld corrupted=%-3lld "
          "retransmits=%-3lld %s\n",
          rec.name.c_str(), rec.ok ? "ok" : "FAIL", rec.dropped,
          rec.corrupted, rec.retransmits, rec.detail.c_str());
      records.push_back(rec);
    }
  }

  bool all_ok = true;
  for (const auto& r : records) all_ok = all_ok && r.ok;
  write_report(out, records, all_ok);
  std::printf("chaos_study: %s, report in %s\n",
              all_ok ? "all properties hold" : "PROPERTY VIOLATED",
              out.c_str());
  return all_ok ? 0 : 1;
}

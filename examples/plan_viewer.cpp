// plan_viewer: human view of a planner PlanFile.
//
//   plan_viewer plan.json
//
// Prints the chosen configuration with its rationale, the secondary
// decisions (self-dependent loop treatment, combining), and the full
// scored candidate table — predicted virtual time with its
// compute/communication/pipeline/fault decomposition — best first.
#include <cstdio>
#include <string>

#include "autocfd/plan/plan_file.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;

  if (argc != 2) {
    std::fprintf(stderr, "usage: plan_viewer plan.json\n");
    return 2;
  }
  std::string error;
  const auto plan = plan::PlanFile::load(argv[1], &error);
  if (!plan) {
    std::fprintf(stderr, "plan_viewer: %s\n", error.c_str());
    return 2;
  }

  std::printf("=== plan: %s (%d ranks) ===\n", plan->planned_from.c_str(),
              plan->nranks);
  if (!plan->fault_spec.empty()) {
    std::printf("fault plan: %s\n", plan->fault_spec.c_str());
  }
  std::printf("chosen:  %s (%s), predicted %.4f s\n", plan->partition.c_str(),
              plan->strategy.c_str(), plan->predicted_s);
  std::printf("static:  %s (%s), predicted %.4f s\n",
              plan->static_partition.c_str(), plan->static_strategy.c_str(),
              plan->static_predicted_s);
  std::printf("why:     %s\n", plan->rationale.c_str());
  for (const auto& d : plan->decisions) {
    std::printf("         %s\n", d.c_str());
  }

  std::printf("\n%-10s %-9s %10s %10s %10s %10s %10s %6s %5s\n", "partition",
              "strategy", "predicted", "compute", "comm", "pipeline",
              "fault", "syncs", "pipes");
  for (const auto& c : plan->candidates) {
    if (!c.feasible) {
      std::printf("%-10s %-9s %10s  rejected: %s\n", c.partition.c_str(),
                  c.strategy.c_str(), "-", c.note.c_str());
      continue;
    }
    std::printf("%-10s %-9s %9.4fs %9.4fs %9.4fs %9.4fs %9.4fs %6d %5d%s%s\n",
                c.partition.c_str(), c.strategy.c_str(), c.predicted_s,
                c.compute_s, c.comm_s, c.pipeline_s, c.fault_s,
                c.syncs_after, c.pipelined_loops, c.chosen ? "  <-- chosen" : "",
                !c.chosen && c.is_static ? "  (static)" : "");
  }
  return 0;
}

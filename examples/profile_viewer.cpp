// Source-attributed profiles of the two case-study applications.
//
//   $ ./profile_viewer [app] [partition] [view] [out.json]
//
//     app        aerofoil (default) | sprayer
//     partition  e.g. 2x2x1 (default: 2x2x1 aerofoil, 2x2 sprayer)
//     view       flat (default) | by-class | top[=N]
//     out.json   optional: also dump the full run report as JSON
//
// Parallelizes the chosen app, runs it on the simulated cluster with
// statement profiling enabled, and prints the requested view of the
// merged source-keyed profile:
//
//   flat      every attribution unit in source order, with flops,
//             virtual seconds, share and cross-rank imbalance;
//   by-class  time grouped by the loop-taxonomy class the explain
//             engine assigned (A/R/C/O, self-dependent);
//   top[=N]   the N hottest units (default 10) — where the virtual
//             cycles actually went.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "autocfd/cfd/apps.hpp"
#include "autocfd/core/pipeline.hpp"
#include "autocfd/prof/report.hpp"
#include "autocfd/trace/recorder.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: profile_viewer [aerofoil|sprayer] [partition] "
               "[flat|by-class|top[=N]] [out.json]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autocfd;

  const std::string app = argc >= 2 ? argv[1] : "aerofoil";
  std::string part = argc >= 3 ? argv[2] : "";
  const std::string view = argc >= 4 ? argv[3] : "flat";
  const std::string out = argc >= 5 ? argv[4] : "";

  std::string src;
  if (app == "aerofoil") {
    cfd::AerofoilParams params;
    params.n1 = 40;
    params.n2 = 20;
    params.n3 = 8;
    params.frames = 2;
    src = cfd::aerofoil_source(params);
    if (part.empty()) part = "2x2x1";
  } else if (app == "sprayer") {
    cfd::SprayerParams params;
    params.nx = 64;
    params.ny = 32;
    params.frames = 2;
    src = cfd::sprayer_source(params);
    if (part.empty()) part = "2x2";
  } else {
    usage();
    return 2;
  }

  std::size_t top_n = 10;
  if (view != "flat" && view != "by-class" &&
      !(view.rfind("top", 0) == 0 &&
        (view.size() == 3 ||
         (view[3] == '=' && std::atoi(view.c_str() + 4) > 0)))) {
    usage();
    return 2;
  }
  if (view.rfind("top=", 0) == 0) {
    top_n = static_cast<std::size_t>(std::atoi(view.c_str() + 4));
  }

  try {
    DiagnosticEngine diags;
    auto dirs = core::Directives::extract(src, diags);
    dirs.partition = partition::PartitionSpec::parse(part);

    obs::ObsContext obs;
    auto program =
        core::parallelize(src, dirs, sync::CombineStrategy::Min, &obs);

    trace::TraceRecorder recorder;
    codegen::SpmdRunOptions run_opts;
    run_opts.sink = &recorder;
    run_opts.profile = true;
    const auto result =
        program->run(mp::MachineConfig::pentium_ethernet_1999(), run_opts);

    prof::ReportOptions ropts;
    ropts.title = app;
    ropts.engine = "bytecode";
    const auto report = prof::build_run_report(
        *program, result, recorder.trace(), &obs.provenance, ropts);
    const auto& profile = report.profile;

    std::printf("=== %s, partition %s (%d ranks): %.4f virtual s, "
                "%.0f flops, %zu attribution units ===\n",
                app.c_str(), report.partition.c_str(), report.nranks,
                report.elapsed_s, report.total_flops,
                profile.entries.size());

    if (view == "flat") {
      std::printf("%8s %5s %-14s %12s %12s %8s %10s\n", "line", "kind",
                  "class", "flops", "time (ms)", "share", "imbalance");
      for (const auto& e : profile.entries) {
        std::printf("%8u %5s %-14s %12.0f %12.4f %7.2f%% %10.2f\n",
                    e.loc.line, e.is_loop ? "loop" : "stmt",
                    e.loop_class.empty() ? "-" : e.loop_class.c_str(),
                    e.flops, e.time_s * 1e3, e.share * 100.0,
                    e.imbalance(profile.nranks));
      }
    } else if (view == "by-class") {
      struct ClassAgg {
        double time_s = 0.0, flops = 0.0;
        long long units = 0;
      };
      std::map<std::string, ClassAgg> agg;
      for (const auto& e : profile.entries) {
        std::string key = !e.loop_class.empty()
                              ? e.loop_class
                              : (e.is_loop ? "unclassified" : "stmt");
        if (e.self_dependent) key += " self-dep";
        auto& a = agg[key];
        a.time_s += e.time_s;
        a.flops += e.flops;
        ++a.units;
      }
      std::printf("%-20s %6s %12s %12s %8s\n", "class", "units", "flops",
                  "time (ms)", "share");
      for (const auto& [key, a] : agg) {
        std::printf("%-20s %6lld %12.0f %12.4f %7.2f%%\n", key.c_str(),
                    a.units, a.flops, a.time_s * 1e3,
                    profile.total_seconds > 0.0
                        ? a.time_s / profile.total_seconds * 100.0
                        : 0.0);
      }
    } else {
      std::printf("top %zu hottest units:\n", top_n);
      for (const auto* e : profile.hottest(top_n)) {
        std::printf("  line %u %s%s%s: %.4f ms  %.2f%%  x%lld  "
                    "imbalance %.2f (max on rank %d)\n",
                    e->loc.line, e->is_loop ? "loop" : "stmt",
                    e->loop_class.empty() ? "" : " ",
                    e->loop_class.c_str(), e->time_s * 1e3,
                    e->share * 100.0, e->count,
                    e->imbalance(profile.nranks), e->max_rank);
      }
    }

    if (!out.empty()) {
      std::ofstream os(out);
      if (!os) {
        std::fprintf(stderr, "error: cannot open %s for writing\n",
                     out.c_str());
        return 1;
      }
      prof::write_report_json(report, os);
      std::printf("\nwrote %s (full run report)\n", out.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

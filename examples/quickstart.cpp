// Quickstart: parallelize a small sequential Jacobi solver and run it
// on the simulated cluster.
//
//   $ ./quickstart
//
// Shows the complete Auto-CFD flow on a 64x48 Laplace problem:
//   1. a sequential Fortran program with !$acfd directives,
//   2. the pre-compiler's analysis report (field loops, S_LDP,
//      synchronization points before/after combining),
//   3. the emitted SPMD source with message-passing calls,
//   4. execution on 4 simulated ranks, validated against the
//      sequential run, with per-rank communication statistics.
#include <cstdio>

#include "autocfd/core/pipeline.hpp"
#include "autocfd/fortran/parser.hpp"

namespace {

constexpr const char* kSource = R"(
!$acfd grid 64 48
!$acfd status t told
!$acfd nprocs 4
program heat
parameter (nx = 64, ny = 48)
real t(nx, ny), told(nx, ny)
real errmax, eps
integer i, j, it

! hot west wall, cold elsewhere
do j = 1, ny
  t(1, j) = 100.0
end do

eps = 1.0e-3
do it = 1, 500
  errmax = 0.0
  do i = 1, nx
    do j = 1, ny
      told(i, j) = t(i, j)
    end do
  end do
  do i = 2, nx - 1
    do j = 2, ny - 1
      t(i, j) = 0.25 * (told(i - 1, j) + told(i + 1, j) &
              + told(i, j - 1) + told(i, j + 1))
      errmax = max(errmax, abs(t(i, j) - told(i, j)))
    end do
  end do
  if (errmax .lt. eps) goto 99
end do
99 continue
write(6,*) 'residual', errmax
end
)";

}  // namespace

int main() {
  using namespace autocfd;

  std::printf("=== Auto-CFD quickstart ===\n\n");
  std::printf("Input: sequential Jacobi heat solver, 64x48 grid.\n");
  std::printf("Directives ask for the best partition on 4 processors.\n\n");

  // 1. Run the pre-compiler (directives are read from the source).
  auto program = core::parallelize(kSource);
  const auto& rep = program->report;
  std::printf("Pre-compiler report:\n");
  std::printf("  partition chosen          : %s\n",
              program->meta.spec.str().c_str());
  std::printf("  field loops               : %d\n", rep.field_loops);
  std::printf("  dependence pairs (S_LDP)  : %d\n", rep.dependence_pairs);
  std::printf("  sync points before/after  : %d / %d (%.0f%% removed)\n\n",
              rep.syncs_before, rep.syncs_after, rep.optimization_percent);

  // 2. Show a slice of the emitted SPMD program.
  std::printf("Emitted SPMD source (first 30 lines):\n");
  std::size_t pos = 0;
  for (int line = 0; line < 30 && pos != std::string::npos; ++line) {
    const auto next = program->parallel_source.find('\n', pos);
    std::printf("  %s\n",
                program->parallel_source.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }

  // 3. Run on the simulated cluster and compare with sequential.
  const auto machine = mp::MachineConfig::pentium_ethernet_1999();
  auto par = program->run(machine);

  auto seq_file = fortran::parse_source(kSource);
  const auto seq = codegen::run_sequential_timed(
      seq_file, {"t", "told"}, machine);

  std::printf("\nExecution on the simulated cluster:\n");
  std::printf("  sequential virtual time : %.4f s\n", seq.elapsed);
  std::printf("  parallel virtual time   : %.4f s (speedup %.2f on %d ranks)\n",
              par.elapsed, seq.elapsed / par.elapsed,
              program->meta.spec.num_tasks());
  for (std::size_t r = 0; r < par.cluster.ranks.size(); ++r) {
    const auto& st = par.cluster.ranks[r];
    std::printf(
        "  rank %zu: compute %.4f s, comm %.4f s, %lld messages, %lld bytes\n",
        r, st.compute_time, st.comm_time, st.messages_sent, st.bytes_sent);
  }

  // 4. Validate.
  double max_diff = 0.0;
  const auto& seq_t = seq.arrays.at("t");
  const auto& par_t = par.gathered.at("t");
  for (std::size_t i = 0; i < seq_t.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(seq_t[i] - par_t[i]));
  }
  std::printf("\nValidation: max |sequential - parallel| = %g %s\n", max_diff,
              max_diff == 0.0 ? "(bitwise identical)" : "");
  std::printf(
      "\nNote: a 64x48 grid is communication-bound on the simulated\n"
      "10 Mb Ethernet cluster — exactly the small-grid regime of the\n"
      "paper's Table 4. Run sprayer_study/aerofoil_study for scaling.\n");
  if (!par.rank0_output.empty()) {
    std::printf("Program output (rank 0): %s\n",
                par.rank0_output.front().c_str());
  }
  return max_diff == 0.0 ? 0 : 1;
}

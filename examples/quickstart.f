!$acfd grid 64 48
!$acfd status t told
!$acfd nprocs 4
program heat
parameter (nx = 64, ny = 48)
real t(nx, ny), told(nx, ny)
real errmax, eps
integer i, j, it

! hot west wall, cold elsewhere
do j = 1, ny
  t(1, j) = 100.0
end do

eps = 1.0e-3
do it = 1, 500
  errmax = 0.0
  do i = 1, nx
    do j = 1, ny
      told(i, j) = t(i, j)
    end do
  end do
  do i = 2, nx - 1
    do j = 2, ny - 1
      t(i, j) = 0.25 * (told(i - 1, j) + told(i + 1, j) &
              + told(i, j - 1) + told(i, j + 1))
      errmax = max(errmax, abs(t(i, j) - told(i, j)))
    end do
  end do
  if (errmax .lt. eps) goto 99
end do
99 continue
write(6,*) 'residual', errmax
end

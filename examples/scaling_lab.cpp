// Scaling observatory on the two case-study applications.
//
//   $ ./scaling_lab [app] [ranks] [out]
//
//     app    aerofoil (default) | sprayer
//     ranks  comma-separated rank counts (default 1,2,4,8)
//     out    optional path: .json writes the ScalingReport JSON,
//            .html the HTML view; anything else gets text
//
// Sweeps the app across the given rank counts (the static heuristic
// picks each scale's partition), prints the text view of the resulting
// ScalingReport — efficiency curves, Karp-Flatt serial fractions, the
// per-sync-site communication-share trend, and the planner's verdict
// per scale — and shows where the run turns comm-bound.
//
// An existing ScalingReport can be re-rendered without re-running:
//
//   $ ./scaling_lab --view scaling.json [text|html]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "autocfd/cfd/apps.hpp"
#include "autocfd/sweep/sweep.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: scaling_lab [aerofoil|sprayer] [ranks] [out]\n"
               "       scaling_lab --view report.json [text|html]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autocfd;

  if (argc >= 2 && std::string(argv[1]) == "--view") {
    if (argc < 3) {
      usage();
      return 2;
    }
    std::string err;
    const auto report = sweep::ScalingReport::load(argv[2], &err);
    if (!report) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    const auto format =
        sweep::parse_sweep_format(argc >= 4 ? argv[3] : "text");
    if (!format) {
      usage();
      return 2;
    }
    std::ostringstream os;
    sweep::write_scaling_report(*report, *format, os);
    std::printf("%s", os.str().c_str());
    return 0;
  }

  const std::string app = argc >= 2 ? argv[1] : "aerofoil";
  const std::string ranks_arg = argc >= 3 ? argv[2] : "1,2,4,8";
  const std::string out = argc >= 4 ? argv[3] : "";

  std::string src;
  if (app == "aerofoil") {
    cfd::AerofoilParams params;
    params.n1 = 40;
    params.n2 = 20;
    params.n3 = 8;
    params.frames = 2;
    src = cfd::aerofoil_source(params);
  } else if (app == "sprayer") {
    cfd::SprayerParams params;
    params.nx = 64;
    params.ny = 32;
    params.frames = 2;
    src = cfd::sprayer_source(params);
  } else {
    usage();
    return 2;
  }

  sweep::SweepSpec spec;
  spec.title = app;
  spec.plan = true;
  for (std::size_t pos = 0; pos < ranks_arg.size();) {
    const auto comma = ranks_arg.find(',', pos);
    const auto end = comma == std::string::npos ? ranks_arg.size() : comma;
    const int n = std::atoi(ranks_arg.substr(pos, end - pos).c_str());
    if (n < 1) {
      usage();
      return 2;
    }
    spec.ranks.push_back(n);
    pos = end + 1;
  }

  try {
    DiagnosticEngine diags;
    const auto dirs = core::Directives::extract(src, diags);
    const auto result = sweep::run_sweep(src, dirs, spec);

    std::ostringstream os;
    result.report.write_text(os);
    std::printf("%s", os.str().c_str());

    if (!out.empty()) {
      auto format = sweep::SweepFormat::Text;
      const auto dot = out.rfind('.');
      const std::string ext =
          dot == std::string::npos ? "" : out.substr(dot + 1);
      if (ext == "json") format = sweep::SweepFormat::Json;
      else if (ext == "html" || ext == "htm")
        format = sweep::SweepFormat::Html;
      std::ofstream ofs(out);
      if (!ofs) {
        std::fprintf(stderr, "error: cannot open %s for writing\n",
                     out.c_str());
        return 1;
      }
      sweep::write_scaling_report(result.report, format, ofs);
      std::printf("\nwrote %s\n", out.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

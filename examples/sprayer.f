!$acfd grid 64 32
!$acfd status u v uo vo psi psin omg omgn p po prs src c1 c1o c1t c2 c2o c2t c3 c3o c3t c4 c4o c4t c5 c5o c5t c6 c6o c6t tke tkeo tket eps epso epst ht hto htt hm hmo hmt
program sprayer
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
parameter (nt = 2)
integer it
call init
do it = 1, nt
  call fansrc
  call saveold
  call xmom
  call ymom
  call xprdc1
  call xprdc2
  call xprdc3
  call xprdc4
  call xprdc5
  call xprdc6
  call xprdtke
  call xprdeps
  call xprdht
  call xprdhm
  call xcorc1
  call xcorc2
  call xcorc3
  call xcorc4
  call xcorc5
  call xcorc6
  call xcortke
  call xcoreps
  call xcorht
  call xcorhm
  call yprdc1
  call yprdc2
  call yprdc3
  call yprdc4
  call yprdc5
  call yprdc6
  call yprdtke
  call yprdeps
  call yprdht
  call yprdhm
  call ycorc1
  call ycorc2
  call ycorc3
  call ycorc4
  call ycorc5
  call ycorc6
  call ycortke
  call ycoreps
  call ycorht
  call ycorhm
  call prhsx
  call prhsy
  call pcorx
  call pcory
  call psix
  call psicpx
  call psiy
  call psicpy
  call vortx
  call vorcpx
  call vorty
  call vorcpy
  call veloc
  call resid
  if (resmax .lt. 1.0e-12) goto 900
end do
900 continue
end
subroutine init
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 1, nx
    u(i, j) = 0.02 * j
    v(i, j) = 0.0
    uo(i, j) = u(i, j)
    vo(i, j) = 0.0
    psi(i, j) = 0.01 * i * j
    psin(i, j) = 0.0
    omg(i, j) = 0.001 * (i - j)
    omgn(i, j) = 0.0
    p(i, j) = 1.0
    po(i, j) = 1.0
    prs(i, j) = 0.0
    src(i, j) = 0.0
    c1(i, j) = 0.001 * 1 * (i + j)
    c1o(i, j) = c1(i, j)
    c1t(i, j) = 0.0
    c2(i, j) = 0.001 * 2 * (i + j)
    c2o(i, j) = c2(i, j)
    c2t(i, j) = 0.0
    c3(i, j) = 0.001 * 3 * (i + j)
    c3o(i, j) = c3(i, j)
    c3t(i, j) = 0.0
    c4(i, j) = 0.001 * 4 * (i + j)
    c4o(i, j) = c4(i, j)
    c4t(i, j) = 0.0
    c5(i, j) = 0.001 * 5 * (i + j)
    c5o(i, j) = c5(i, j)
    c5t(i, j) = 0.0
    c6(i, j) = 0.001 * 6 * (i + j)
    c6o(i, j) = c6(i, j)
    c6t(i, j) = 0.0
    tke(i, j) = 0.001 * 7 * (i + j)
    tkeo(i, j) = tke(i, j)
    tket(i, j) = 0.0
    eps(i, j) = 0.001 * 8 * (i + j)
    epso(i, j) = eps(i, j)
    epst(i, j) = 0.0
    ht(i, j) = 0.001 * 9 * (i + j)
    hto(i, j) = ht(i, j)
    htt(i, j) = 0.0
    hm(i, j) = 0.001 * 10 * (i + j)
    hmo(i, j) = hm(i, j)
    hmt(i, j) = 0.0
  end do
end do
return
end
subroutine fansrc
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  src(1, j) = 1.0 + 0.05 * j
  u(1, j) = 0.8
  u(nx, j) = 0.1
end do
do i = 1, nx
  v(i, 1) = 0.0
  v(i, ny) = 0.0
end do
return
end
subroutine saveold
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 1, nx
    uo(i, j) = u(i, j)
    vo(i, j) = v(i, j)
    po(i, j) = p(i, j)
  end do
end do
return
end
subroutine xmom
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    u(i, j) = 0.96 * uo(i, j) &
        + 0.001 * (uo(i + 1, j) - uo(i - 1, j)) &
        + 0.002 * (src(i + 1, j) - src(i - 1, j)) &
        + 0.003 * (po(i + 1, j) - po(i - 1, j))
  end do
end do
return
end
subroutine ymom
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    v(i, j) = 0.96 * vo(i, j) &
        + 0.001 * (vo(i, j + 1) - vo(i, j - 1)) &
        + 0.002 * (src(i, j + 1) - src(i, j - 1)) &
        + 0.003 * (po(i, j + 1) - po(i, j - 1))
  end do
end do
return
end
subroutine xprdc1
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c1t(i, j) = 0.96 * c1o(i, j) &
        + 0.001 * (c1o(i + 1, j) - c1o(i - 1, j)) &
        + 0.002 * (uo(i + 1, j) - uo(i - 1, j))
  end do
end do
return
end
subroutine xcorc1
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c1(i, j) = 0.96 * c1t(i, j) &
        + 0.001 * (c1t(i + 1, j) - c1t(i - 1, j)) &
        + 0.002 * (c1o(i + 1, j) - c1o(i - 1, j))
  end do
end do
return
end
subroutine yprdc1
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c1t(i, j) = 0.96 * c1(i, j) &
        + 0.001 * (c1(i, j + 1) - c1(i, j - 1)) &
        + 0.002 * (vo(i, j + 1) - vo(i, j - 1)) &
        + 0.003 * (src(i, j + 1) - src(i, j - 1))
  end do
end do
return
end
subroutine ycorc1
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c1o(i, j) = 0.96 * c1t(i, j) &
        + 0.001 * (c1t(i, j + 1) - c1t(i, j - 1)) &
        + 0.002 * (c1(i, j + 1) - c1(i, j - 1))
  end do
end do
return
end
subroutine xprdc2
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c2t(i, j) = 0.96 * c2o(i, j) &
        + 0.001 * (c2o(i + 1, j) - c2o(i - 1, j)) &
        + 0.002 * (uo(i + 1, j) - uo(i - 1, j))
  end do
end do
return
end
subroutine xcorc2
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c2(i, j) = 0.96 * c2t(i, j) &
        + 0.001 * (c2t(i + 1, j) - c2t(i - 1, j)) &
        + 0.002 * (c2o(i + 1, j) - c2o(i - 1, j))
  end do
end do
return
end
subroutine yprdc2
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c2t(i, j) = 0.96 * c2(i, j) &
        + 0.001 * (c2(i, j + 1) - c2(i, j - 1)) &
        + 0.002 * (vo(i, j + 1) - vo(i, j - 1)) &
        + 0.003 * (src(i, j + 1) - src(i, j - 1))
  end do
end do
return
end
subroutine ycorc2
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c2o(i, j) = 0.96 * c2t(i, j) &
        + 0.001 * (c2t(i, j + 1) - c2t(i, j - 1)) &
        + 0.002 * (c2(i, j + 1) - c2(i, j - 1))
  end do
end do
return
end
subroutine xprdc3
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c3t(i, j) = 0.96 * c3o(i, j) &
        + 0.001 * (c3o(i + 1, j) - c3o(i - 1, j)) &
        + 0.002 * (uo(i + 1, j) - uo(i - 1, j))
  end do
end do
return
end
subroutine xcorc3
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c3(i, j) = 0.96 * c3t(i, j) &
        + 0.001 * (c3t(i + 1, j) - c3t(i - 1, j)) &
        + 0.002 * (c3o(i + 1, j) - c3o(i - 1, j))
  end do
end do
return
end
subroutine yprdc3
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c3t(i, j) = 0.96 * c3(i, j) &
        + 0.001 * (c3(i, j + 1) - c3(i, j - 1)) &
        + 0.002 * (vo(i, j + 1) - vo(i, j - 1)) &
        + 0.003 * (src(i, j + 1) - src(i, j - 1))
  end do
end do
return
end
subroutine ycorc3
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c3o(i, j) = 0.96 * c3t(i, j) &
        + 0.001 * (c3t(i, j + 1) - c3t(i, j - 1)) &
        + 0.002 * (c3(i, j + 1) - c3(i, j - 1))
  end do
end do
return
end
subroutine xprdc4
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c4t(i, j) = 0.96 * c4o(i, j) &
        + 0.001 * (c4o(i + 1, j) - c4o(i - 1, j)) &
        + 0.002 * (uo(i + 1, j) - uo(i - 1, j))
  end do
end do
return
end
subroutine xcorc4
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c4(i, j) = 0.96 * c4t(i, j) &
        + 0.001 * (c4t(i + 1, j) - c4t(i - 1, j)) &
        + 0.002 * (c4o(i + 1, j) - c4o(i - 1, j))
  end do
end do
return
end
subroutine yprdc4
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c4t(i, j) = 0.96 * c4(i, j) &
        + 0.001 * (c4(i, j + 1) - c4(i, j - 1)) &
        + 0.002 * (vo(i, j + 1) - vo(i, j - 1)) &
        + 0.003 * (src(i, j + 1) - src(i, j - 1))
  end do
end do
return
end
subroutine ycorc4
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c4o(i, j) = 0.96 * c4t(i, j) &
        + 0.001 * (c4t(i, j + 1) - c4t(i, j - 1)) &
        + 0.002 * (c4(i, j + 1) - c4(i, j - 1))
  end do
end do
return
end
subroutine xprdc5
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c5t(i, j) = 0.96 * c5o(i, j) &
        + 0.001 * (c5o(i + 1, j) - c5o(i - 1, j)) &
        + 0.002 * (uo(i + 1, j) - uo(i - 1, j))
  end do
end do
return
end
subroutine xcorc5
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c5(i, j) = 0.96 * c5t(i, j) &
        + 0.001 * (c5t(i + 1, j) - c5t(i - 1, j)) &
        + 0.002 * (c5o(i + 1, j) - c5o(i - 1, j))
  end do
end do
return
end
subroutine yprdc5
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c5t(i, j) = 0.96 * c5(i, j) &
        + 0.001 * (c5(i, j + 1) - c5(i, j - 1)) &
        + 0.002 * (vo(i, j + 1) - vo(i, j - 1)) &
        + 0.003 * (src(i, j + 1) - src(i, j - 1))
  end do
end do
return
end
subroutine ycorc5
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c5o(i, j) = 0.96 * c5t(i, j) &
        + 0.001 * (c5t(i, j + 1) - c5t(i, j - 1)) &
        + 0.002 * (c5(i, j + 1) - c5(i, j - 1))
  end do
end do
return
end
subroutine xprdc6
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c6t(i, j) = 0.96 * c6o(i, j) &
        + 0.001 * (c6o(i + 1, j) - c6o(i - 1, j)) &
        + 0.002 * (uo(i + 1, j) - uo(i - 1, j))
  end do
end do
return
end
subroutine xcorc6
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    c6(i, j) = 0.96 * c6t(i, j) &
        + 0.001 * (c6t(i + 1, j) - c6t(i - 1, j)) &
        + 0.002 * (c6o(i + 1, j) - c6o(i - 1, j))
  end do
end do
return
end
subroutine yprdc6
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c6t(i, j) = 0.96 * c6(i, j) &
        + 0.001 * (c6(i, j + 1) - c6(i, j - 1)) &
        + 0.002 * (vo(i, j + 1) - vo(i, j - 1)) &
        + 0.003 * (src(i, j + 1) - src(i, j - 1))
  end do
end do
return
end
subroutine ycorc6
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    c6o(i, j) = 0.96 * c6t(i, j) &
        + 0.001 * (c6t(i, j + 1) - c6t(i, j - 1)) &
        + 0.002 * (c6(i, j + 1) - c6(i, j - 1))
  end do
end do
return
end
subroutine xprdtke
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    tket(i, j) = 0.96 * tkeo(i, j) &
        + 0.001 * (tkeo(i + 1, j) - tkeo(i - 1, j)) &
        + 0.002 * (uo(i + 1, j) - uo(i - 1, j))
  end do
end do
return
end
subroutine xcortke
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    tke(i, j) = 0.96 * tket(i, j) &
        + 0.001 * (tket(i + 1, j) - tket(i - 1, j)) &
        + 0.002 * (tkeo(i + 1, j) - tkeo(i - 1, j))
  end do
end do
return
end
subroutine yprdtke
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    tket(i, j) = 0.96 * tke(i, j) &
        + 0.001 * (tke(i, j + 1) - tke(i, j - 1)) &
        + 0.002 * (vo(i, j + 1) - vo(i, j - 1)) &
        + 0.003 * (src(i, j + 1) - src(i, j - 1))
  end do
end do
return
end
subroutine ycortke
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    tkeo(i, j) = 0.96 * tket(i, j) &
        + 0.001 * (tket(i, j + 1) - tket(i, j - 1)) &
        + 0.002 * (tke(i, j + 1) - tke(i, j - 1))
  end do
end do
return
end
subroutine xprdeps
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    epst(i, j) = 0.96 * epso(i, j) &
        + 0.001 * (epso(i + 1, j) - epso(i - 1, j)) &
        + 0.002 * (uo(i + 1, j) - uo(i - 1, j))
  end do
end do
return
end
subroutine xcoreps
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    eps(i, j) = 0.96 * epst(i, j) &
        + 0.001 * (epst(i + 1, j) - epst(i - 1, j)) &
        + 0.002 * (epso(i + 1, j) - epso(i - 1, j))
  end do
end do
return
end
subroutine yprdeps
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    epst(i, j) = 0.96 * eps(i, j) &
        + 0.001 * (eps(i, j + 1) - eps(i, j - 1)) &
        + 0.002 * (vo(i, j + 1) - vo(i, j - 1)) &
        + 0.003 * (src(i, j + 1) - src(i, j - 1))
  end do
end do
return
end
subroutine ycoreps
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    epso(i, j) = 0.96 * epst(i, j) &
        + 0.001 * (epst(i, j + 1) - epst(i, j - 1)) &
        + 0.002 * (eps(i, j + 1) - eps(i, j - 1))
  end do
end do
return
end
subroutine xprdht
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    htt(i, j) = 0.96 * hto(i, j) &
        + 0.001 * (hto(i + 1, j) - hto(i - 1, j)) &
        + 0.002 * (uo(i + 1, j) - uo(i - 1, j))
  end do
end do
return
end
subroutine xcorht
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    ht(i, j) = 0.96 * htt(i, j) &
        + 0.001 * (htt(i + 1, j) - htt(i - 1, j)) &
        + 0.002 * (hto(i + 1, j) - hto(i - 1, j))
  end do
end do
return
end
subroutine yprdht
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    htt(i, j) = 0.96 * ht(i, j) &
        + 0.001 * (ht(i, j + 1) - ht(i, j - 1)) &
        + 0.002 * (vo(i, j + 1) - vo(i, j - 1)) &
        + 0.003 * (src(i, j + 1) - src(i, j - 1))
  end do
end do
return
end
subroutine ycorht
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    hto(i, j) = 0.96 * htt(i, j) &
        + 0.001 * (htt(i, j + 1) - htt(i, j - 1)) &
        + 0.002 * (ht(i, j + 1) - ht(i, j - 1))
  end do
end do
return
end
subroutine xprdhm
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    hmt(i, j) = 0.96 * hmo(i, j) &
        + 0.001 * (hmo(i + 1, j) - hmo(i - 1, j)) &
        + 0.002 * (uo(i + 1, j) - uo(i - 1, j))
  end do
end do
return
end
subroutine xcorhm
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    hm(i, j) = 0.96 * hmt(i, j) &
        + 0.001 * (hmt(i + 1, j) - hmt(i - 1, j)) &
        + 0.002 * (hmo(i + 1, j) - hmo(i - 1, j))
  end do
end do
return
end
subroutine yprdhm
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    hmt(i, j) = 0.96 * hm(i, j) &
        + 0.001 * (hm(i, j + 1) - hm(i, j - 1)) &
        + 0.002 * (vo(i, j + 1) - vo(i, j - 1)) &
        + 0.003 * (src(i, j + 1) - src(i, j - 1))
  end do
end do
return
end
subroutine ycorhm
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    hmo(i, j) = 0.96 * hmt(i, j) &
        + 0.001 * (hmt(i, j + 1) - hmt(i, j - 1)) &
        + 0.002 * (hm(i, j + 1) - hm(i, j - 1))
  end do
end do
return
end
subroutine prhsx
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    prs(i, j) = 0.96 * po(i, j) &
        + 0.001 * (u(i + 1, j) - u(i - 1, j))
  end do
end do
return
end
subroutine prhsy
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    prs(i, j) = 0.96 * prs(i, j) &
        + 0.001 * (v(i, j + 1) - v(i, j - 1))
  end do
end do
return
end
subroutine pcorx
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    p(i, j) = 0.96 * po(i, j) &
        + 0.001 * (po(i + 1, j) - po(i - 1, j)) &
        + 0.002 * (prs(i + 1, j) - prs(i - 1, j))
  end do
end do
return
end
subroutine pcory
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    p(i, j) = 0.96 * p(i, j) &
        + 0.001 * (po(i, j + 1) - po(i, j - 1)) &
        + 0.002 * (prs(i, j + 1) - prs(i, j - 1))
  end do
end do
return
end
subroutine psix
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    psin(i, j) = 0.96 * psi(i, j) &
        + 0.001 * (psi(i + 1, j) - psi(i - 1, j)) &
        + 0.002 * (omg(i + 1, j) - omg(i - 1, j))
  end do
end do
return
end
subroutine psicpx
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    psi(i, j) = psin(i, j)
  end do
end do
return
end
subroutine psiy
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    psin(i, j) = 0.96 * psi(i, j) &
        + 0.001 * (psi(i, j + 1) - psi(i, j - 1)) &
        + 0.002 * (omg(i, j + 1) - omg(i, j - 1))
  end do
end do
return
end
subroutine psicpy
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    psi(i, j) = psin(i, j)
  end do
end do
return
end
subroutine vortx
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    omgn(i, j) = 0.96 * omg(i, j) &
        + 0.001 * (omg(i + 1, j) - omg(i - 1, j)) &
        + 0.002 * (u(i + 1, j) - u(i - 1, j))
  end do
end do
return
end
subroutine vorcpx
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 1, ny
  do i = 2, nx - 1
    omg(i, j) = omgn(i, j)
  end do
end do
return
end
subroutine vorty
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    omgn(i, j) = 0.96 * omg(i, j) &
        + 0.001 * (omg(i, j + 1) - omg(i, j - 1)) &
        + 0.002 * (v(i, j + 1) - v(i, j - 1))
  end do
end do
return
end
subroutine vorcpy
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    omg(i, j) = omgn(i, j)
  end do
end do
return
end
subroutine veloc
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
do j = 2, ny - 1
  do i = 1, nx
    u(i, j) = u(i, j) + 0.1 * (psi(i, j + 1) - psi(i, j - 1))
  end do
end do
do j = 1, ny
  do i = 2, nx - 1
    v(i, j) = v(i, j) - 0.1 * (psi(i + 1, j) - psi(i - 1, j))
  end do
end do
return
end
subroutine resid
parameter (nx = 64, ny = 32)
real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)
real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)
real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)
real resmax
common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, src, resmax
real c1(nx, ny), c1o(nx, ny), c1t(nx, ny)
common /spc1/ c1, c1o, c1t
real c2(nx, ny), c2o(nx, ny), c2t(nx, ny)
common /spc2/ c2, c2o, c2t
real c3(nx, ny), c3o(nx, ny), c3t(nx, ny)
common /spc3/ c3, c3o, c3t
real c4(nx, ny), c4o(nx, ny), c4t(nx, ny)
common /spc4/ c4, c4o, c4t
real c5(nx, ny), c5o(nx, ny), c5t(nx, ny)
common /spc5/ c5, c5o, c5t
real c6(nx, ny), c6o(nx, ny), c6t(nx, ny)
common /spc6/ c6, c6o, c6t
real tke(nx, ny), tkeo(nx, ny), tket(nx, ny)
common /sptke/ tke, tkeo, tket
real eps(nx, ny), epso(nx, ny), epst(nx, ny)
common /speps/ eps, epso, epst
real ht(nx, ny), hto(nx, ny), htt(nx, ny)
common /spht/ ht, hto, htt
real hm(nx, ny), hmo(nx, ny), hmt(nx, ny)
common /sphm/ hm, hmo, hmt
integer i, j
resmax = 0.0
do j = 1, ny
  do i = 1, nx
    resmax = max(resmax, abs(u(i, j) - uo(i, j)))
  end do
end do
return
end

// Case study 2: the sprayer flow simulation (paper section 6).
//
//   $ ./sprayer_study [nx ny frames]
//
// Runs the 2-D ADI sprayer analog across processor counts, printing
// the Table 3-style speedup/efficiency rows, the partition the
// section 4.1 search picks for each processor count, and per-rank
// communication statistics for the largest run.
#include <cstdio>
#include <cstdlib>

#include "autocfd/cfd/apps.hpp"
#include "autocfd/core/pipeline.hpp"
#include "autocfd/fortran/parser.hpp"
#include "autocfd/partition/comm_model.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;

  cfd::SprayerParams params;
  params.nx = 120;  // default: laptop-friendly subset of 300x100
  params.ny = 60;
  params.frames = 3;
  if (argc >= 3) {
    params.nx = std::atoll(argv[1]);
    params.ny = std::atoll(argv[2]);
  }
  if (argc >= 4) params.frames = std::atoi(argv[3]);

  std::printf("=== Case study 2: sprayer flow simulation (%lldx%lld, %d frames) ===\n\n",
              params.nx, params.ny, params.frames);

  const auto src = cfd::sprayer_source(params);
  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(src, diags);

  const auto machine = mp::MachineConfig::pentium_ethernet_1999();
  auto seq_file = fortran::parse_source(src);
  const auto seq =
      codegen::run_sequential_timed(seq_file, dirs.status_arrays, machine);
  std::printf("Sequential run: %.3f virtual s\n\n", seq.elapsed);

  std::printf("%-6s %-10s %8s %8s %10s %10s %12s\n", "procs", "partition",
              "before", "after", "time (s)", "speedup", "efficiency");
  codegen::SpmdRunResult last;
  for (const int procs : {2, 3, 4, 6}) {
    // Section 4.1: search all factorizations for the best partition.
    const auto spec = partition::find_best_partition(
        dirs.grid, procs, partition::HaloWidths::uniform(2, 1));
    dirs.partition = spec;
    auto program = core::parallelize(src, dirs);
    auto par = program->run(machine);
    std::printf("%-6d %-10s %8d %8d %10.3f %10.2f %11.0f%%\n", procs,
                spec.str().c_str(), program->report.syncs_before,
                program->report.syncs_after, par.elapsed,
                seq.elapsed / par.elapsed,
                100.0 * seq.elapsed / par.elapsed / procs);
    last = std::move(par);
  }

  std::printf("\nPer-rank statistics of the 6-processor run:\n");
  for (std::size_t r = 0; r < last.cluster.ranks.size(); ++r) {
    const auto& st = last.cluster.ranks[r];
    std::printf(
        "  rank %zu: compute %.3f s, comm %.3f s (%lld msgs, %.1f KB)\n", r,
        st.compute_time, st.comm_time, st.messages_sent,
        static_cast<double>(st.bytes_sent) / 1024.0);
  }

  // Validation against the sequential run (largest processor count).
  double max_diff = 0.0;
  for (const auto& name : dirs.status_arrays) {
    const auto& s = seq.arrays.at(name);
    const auto& g = last.gathered.at(name);
    for (std::size_t i = 0; i < s.size(); ++i) {
      max_diff = std::max(max_diff, std::abs(s[i] - g[i]));
    }
  }
  std::printf("\nValidation (6 procs vs sequential): max diff = %g %s\n",
              max_diff, max_diff == 0.0 ? "(bitwise identical)" : "");
  return max_diff == 0.0 ? 0 : 1;
}

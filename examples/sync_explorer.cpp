// Synchronization explorer: feed any Fortran-subset program through
// the pre-compiler and inspect what the synchronization optimizer did.
//
//   $ ./sync_explorer program.f [partition]
//   $ ./sync_explorer                       (built-in demo program)
//
// Prints the S_LDP dependence pairs, each pair's upper-bound region,
// the combined synchronization points under all three strategies, and
// the final SPMD source.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "autocfd/core/pipeline.hpp"
#include "autocfd/depend/dep_pairs.hpp"
#include "autocfd/fortran/parser.hpp"
#include "autocfd/sync/sync_plan.hpp"

namespace {

constexpr const char* kDemo = R"(
!$acfd grid 32 32
!$acfd status a b c w
program demo
parameter (n = 32)
real a(n, n), b(n, n), c(n, n), w(n, n)
integer i, j, it
do it = 1, 10
  do i = 1, n
    do j = 1, n
      a(i, j) = 1.0
      b(i, j) = 2.0
    end do
  end do
  do i = 2, n - 1
    do j = 2, n - 1
      c(i, j) = a(i - 1, j) + b(i, j + 1)
    end do
  end do
  do i = 2, n - 1
    do j = 2, n - 1
      w(i, j) = c(i + 1, j) + a(i, j - 1)
    end do
  end do
end do
end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace autocfd;

  std::string source = kDemo;
  std::string part = "2x2";
  if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }
  if (argc >= 3) part = argv[2];

  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(source, diags);
  dirs.partition = partition::PartitionSpec::parse(part);
  dirs.validate(diags);
  if (diags.has_errors()) {
    std::fprintf(stderr, "%s", diags.dump().c_str());
    return 1;
  }

  auto file = fortran::parse_source(source);
  const auto cfg = dirs.field_config();
  std::map<std::string, std::vector<ir::FieldLoop>> loops;
  for (const auto& unit : file.units) {
    loops[unit.name] = ir::analyze_field_loops(unit, cfg, diags);
  }
  auto trace = depend::ProgramTrace::build(file, loops, diags);
  auto deps = depend::analyze_dependences(trace, *dirs.partition, diags);
  auto prog =
      sync::InlinedProgram::build(file, trace, *dirs.partition, diags);

  std::printf("=== Dependence pairs (S_LDP) under partition %s ===\n",
              part.c_str());
  for (const auto* pair : deps.sync_pairs()) {
    std::printf(
        "  %-8s writer seq %d (%s) -> reader seq %d (%s)%s  halo lo[",
        pair->array.c_str(), pair->writer->seq, pair->writer->unit->name.c_str(),
        pair->reader->seq, pair->reader->unit->name.c_str(),
        pair->wraps ? "  [wraps]" : "");
    for (const int w : pair->halo.lo) std::printf(" %d", w);
    std::printf(" ] hi[");
    for (const int w : pair->halo.hi) std::printf(" %d", w);
    std::printf(" ]\n");
  }
  for (const auto* pair : deps.self_pairs()) {
    std::printf("  %-8s self-dependent loop at seq %d (mirror-image)\n",
                pair->array.c_str(), pair->reader->seq);
  }

  std::printf("\n=== Upper-bound regions and combining ===\n");
  auto plan = sync::plan_synchronization(prog, deps, *dirs.partition);
  for (const auto& region : plan.regions) {
    std::printf("  region for '%s': %zu legal slot(s)\n",
                region.pair->array.c_str(), region.slots.size());
  }
  std::printf("\n  strategy   sync points\n");
  for (const auto& [name, strategy] :
       {std::pair{"none", sync::CombineStrategy::None},
        std::pair{"pairwise", sync::CombineStrategy::Pairwise},
        std::pair{"minimal", sync::CombineStrategy::Min}}) {
    auto p = sync::plan_synchronization(prog, deps, *dirs.partition, strategy);
    std::printf("  %-10s %d\n", name, p.syncs_after());
  }

  std::printf("\n=== Emitted SPMD program ===\n");
  auto program = core::parallelize(source, dirs);
  std::printf("%s", program->parallel_source.c_str());
  return 0;
}

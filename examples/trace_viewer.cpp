// Dumps an attributed execution trace of a parallelized run.
//
//   $ ./trace_viewer [out.json] [partition]
//
// Parallelizes the aerofoil analog under the default (Min) combining
// strategy, records every cluster event of the run, prints the text
// report (per-rank time decomposition, critical path, checker verdict)
// and writes a Chrome trace_event JSON file. Open the JSON in
// chrome://tracing or https://ui.perfetto.dev to browse the run:
// one lane per rank, compute/send/recv/collective spans, and flow
// arrows from every send to its matched receive.
#include <cstdio>
#include <fstream>
#include <string>

#include "autocfd/cfd/apps.hpp"
#include "autocfd/core/pipeline.hpp"
#include "autocfd/trace/check.hpp"
#include "autocfd/trace/critical_path.hpp"
#include "autocfd/trace/export.hpp"
#include "autocfd/trace/recorder.hpp"

int main(int argc, char** argv) {
  using namespace autocfd;

  const std::string out = argc >= 2 ? argv[1] : "trace_aerofoil.json";
  const std::string part = argc >= 3 ? argv[2] : "4x1x1";

  cfd::AerofoilParams params;
  params.n1 = 48;  // laptop-friendly subset of the paper's 99x41x13
  params.n2 = 20;
  params.n3 = 8;
  params.frames = 2;

  std::printf(
      "=== Trace viewer: aerofoil %lldx%lldx%lld, %d frames, "
      "partition %s, CombineStrategy::Min ===\n",
      params.n1, params.n2, params.n3, params.frames, part.c_str());

  const auto src = cfd::aerofoil_source(params);
  DiagnosticEngine diags;
  auto dirs = core::Directives::extract(src, diags);
  try {
    dirs.partition = partition::PartitionSpec::parse(part);
  } catch (const std::exception&) {
    std::fprintf(stderr, "error: bad partition '%s' (expected e.g. 4x1x1)\n",
                 part.c_str());
    return 1;
  }

  auto program = core::parallelize(src, dirs, sync::CombineStrategy::Min);
  trace::TraceRecorder recorder;
  const auto result =
      program->run(mp::MachineConfig::pentium_ethernet_1999(), &recorder);
  const auto& trace = recorder.trace();

  std::printf("run: %.3f virtual s on %d ranks, %zu events recorded\n\n",
              result.elapsed, trace.nranks, trace.event_count());
  std::printf("%s", trace::text_report(trace, &program->meta.tags).c_str());

  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", out.c_str());
    return 1;
  }
  trace::write_chrome_trace(os, trace, &program->meta.tags);
  os.close();
  std::printf(
      "\nwrote %s — open it in chrome://tracing or https://ui.perfetto.dev\n",
      out.c_str());
  return 0;
}

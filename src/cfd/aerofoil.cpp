#include <sstream>
#include <vector>

#include "autocfd/cfd/apps.hpp"

namespace autocfd::cfd {

namespace {

// Flow variables carried by the aerofoil solver: velocities, pressure,
// density, energy — each with an old-time-level copy (`*o`).
constexpr const char* kVars[] = {"u", "v", "w", "p", "r", "e"};

/// One generated stage: a subroutine holding one field-loop nest that
/// writes `writes` and reads `reads` with unit offsets along `dims`
/// ("x", "y", "z", or a combination like "xy" for the full-stencil
/// loops that make partitioned dimensions interact).
struct Stage {
  std::string name;
  std::string dims;
  std::string writes;
  std::vector<std::string> reads;
};

std::string offset_ref(const std::string& array, char dim, int off) {
  std::ostringstream os;
  os << array << '(';
  os << (dim == 'x' ? (off == 0 ? "i" : (off > 0 ? "i + 1" : "i - 1")) : "i");
  os << ", ";
  os << (dim == 'y' ? (off == 0 ? "j" : (off > 0 ? "j + 1" : "j - 1")) : "j");
  os << ", ";
  os << (dim == 'z' ? (off == 0 ? "k" : (off > 0 ? "k + 1" : "k - 1")) : "k");
  os << ')';
  return os.str();
}

void emit_commons(std::ostringstream& os) {
  os << "parameter (n1 = %N1%, n2 = %N2%, n3 = %N3%)\n";
  for (const auto* v : kVars) {
    os << "real " << v << "(n1, n2, n3), " << v << "o(n1, n2, n3)\n";
  }
  os << "real fx1(n1, n2, n3), fx2(n1, n2, n3), fx3(n1, n2, n3)\n";
  os << "real fy1(n1, n2, n3), fy2(n1, n2, n3), fy3(n1, n2, n3)\n";
  os << "real fz1(n1, n2, n3), fz2(n1, n2, n3), fz3(n1, n2, n3)\n";
  os << "real q(n1, n2, n3, 3)\n";
  os << "real resmax\n";
  os << "common /flow/";
  bool first = true;
  for (const auto* v : kVars) {
    os << (first ? " " : ", ") << v << ", " << v << 'o';
    first = false;
  }
  os << ", fx1, fx2, fx3, fy1, fy2, fy3, fz1, fz2, fz3, q, resmax\n";
}

void emit_stage(std::ostringstream& os, const Stage& st) {
  os << "subroutine " << st.name << "\n";
  emit_commons(os);
  os << "integer i, j, k\n";
  os << "real acc\n";
  const bool x = st.dims.find('x') != std::string::npos;
  const bool y = st.dims.find('y') != std::string::npos;
  const bool z = st.dims.find('z') != std::string::npos;
  os << "do k = " << (z ? "2, n3 - 1" : "1, n3") << "\n";
  os << "  do j = " << (y ? "2, n2 - 1" : "1, n2") << "\n";
  os << "    do i = " << (x ? "2, n1 - 1" : "1, n1") << "\n";
  os << "      acc = 0.0\n";
  for (const auto& rd : st.reads) {
    for (const char d : st.dims) {
      os << "      acc = acc + 0.5 * (" << offset_ref(rd, d, +1) << " - "
         << offset_ref(rd, d, -1) << ")\n";
    }
  }
  os << "      " << st.writes << "(i, j, k) = "
     << offset_ref(st.writes, ' ', 0) << " * 0.98 + 0.01 * acc\n";
  os << "    end do\n";
  os << "  end do\n";
  os << "end do\n";
  os << "return\n";
  os << "end\n";
}

}  // namespace

std::string AerofoilParams::directive_grid() const {
  std::ostringstream os;
  os << "!$acfd grid " << n1 << ' ' << n2 << ' ' << n3;
  return os.str();
}

std::string aerofoil_source(const AerofoilParams& p) {
  // Stage table: the per-direction flux and update phases of the
  // solver. Each stage becomes one subroutine; the read lists drive the
  // dependence pairs (and thus the Table 1 synchronization counts).
  std::vector<Stage> stages;
  // Directionally split solver: for each direction, flux evaluation
  // followed by the per-variable update passes that consume those
  // fluxes. The Y and Z fluxes read the *current* velocities (updated
  // by the preceding direction's passes), which chains the
  // synchronization windows through the frame the way real
  // direction-split codes do.
  for (const std::string d : {"x", "y", "z"}) {
    const bool first = d == "x";
    const std::string conv = d == "x" ? "uo" : (d == "y" ? "vo" : "wo");
    const std::string f = "f" + d;
    stages.push_back({"f" + d + "mass", d, f + "1",
                      {first ? "ro" : "r", conv}});
    stages.push_back({"f" + d + "momm", d, f + "2",
                      {conv, first ? "po" : "p"}});
    stages.push_back({"f" + d + "ener", d, f + "3",
                      {first ? "eo" : "e", first ? "po" : "p", conv}});
    for (const auto* var : kVars) {
      stages.push_back({std::string("adv") + d + "_" + var, d,
                        std::string(var),
                        {std::string(var) + "o", conv, f + "1"}});
      stages.push_back({std::string("dis") + d + "_" + var, d,
                        std::string(var),
                        {std::string(var) + "o", f + "2"}});
      stages.push_back({std::string("vis") + d + "_" + var, d,
                        std::string(var),
                        {std::string(var) + "o", "eo"}});
      stages.push_back({std::string("rhs") + d + "_" + var, d,
                        std::string(var),
                        {std::string(var) + "o", "po", f + "3"}});
    }
  }
  // Full-stencil corrector loops (offsets in X and Y): these are the
  // pairs that overlap between the 4x1x1 and 1x4x1 partitions and make
  // the 4x4x1 count smaller than their sum (Table 1).
  for (const auto* var : {"p", "r", "e"}) {
    stages.push_back({std::string("corr_") + var, "xy", std::string(var),
                      {std::string(var) + "o", "uo", "vo"}});
  }
  // Boundary-layer analysis: wall-normal (Y) direction-limited
  // references near the aerofoil surface (case 2 of section 4.2).
  for (const auto* var : {"u", "w", "e"}) {
    stages.push_back({std::string("blay_") + var, "y", std::string(var),
                      {std::string(var) + "o", "po"}});
  }
  // Spanwise smoothing and end-plate filters (Z): the spanwise
  // dimension carries extra per-variable work, as wing codes do.
  for (const auto* var : {"u", "v", "p", "r"}) {
    stages.push_back({std::string("smz_") + var, "z", std::string(var),
                      {std::string(var) + "o", "wo"}});
  }
  for (const auto* var : kVars) {
    stages.push_back({std::string("fltz_") + var, "z", std::string(var),
                      {std::string(var) + "o", "ro"}});
  }

  std::ostringstream os;
  os << "!$acfd grid " << p.n1 << ' ' << p.n2 << ' ' << p.n3 << '\n';
  os << "!$acfd status";
  for (const auto* v : kVars) os << ' ' << v << ' ' << v << 'o';
  os << " fx1 fx2 fx3 fy1 fy2 fy3 fz1 fz2 fz3 q\n";

  // ---- main ----------------------------------------------------------------
  os << "program aerofoil\n";
  emit_commons(os);
  os << "parameter (nt = %NT%)\n";
  os << "integer it\n";
  os << "call init\n";
  os << "do it = 1, nt\n";
  os << "  call bcond\n";
  os << "  call savold\n";
  for (const auto& st : stages) os << "  call " << st.name << "\n";
  os << "  call packq\n";
  os << "  call sweepx\n";
  os << "  call sweepp\n";
  os << "  call sweepr\n";
  os << "  call sweepe\n";
  os << "  call sweepy\n";
  os << "  call resid\n";
  os << "  if (resmax .lt. 1.0e-12) goto 910\n";
  os << "end do\n";
  os << "910 continue\n";
  os << "end\n";

  // ---- init ----------------------------------------------------------------
  os << "subroutine init\n";
  emit_commons(os);
  os << "integer i, j, k, m\n";
  os << "do k = 1, n3\n";
  os << "  do j = 1, n2\n";
  os << "    do i = 1, n1\n";
  int phase = 1;
  for (const auto* v : kVars) {
    os << "      " << v << "(i, j, k) = 0.001 * " << phase
       << " * (i + 2 * j + 3 * k)\n";
    os << "      " << v << "o(i, j, k) = " << v << "(i, j, k)\n";
    ++phase;
  }
  for (const auto* f : {"fx1", "fx2", "fx3", "fy1", "fy2", "fy3", "fz1",
                        "fz2", "fz3"}) {
    os << "      " << f << "(i, j, k) = 0.0\n";
  }
  os << "      do m = 1, 3\n";
  os << "        q(i, j, k, m) = 0.0\n";
  os << "      end do\n";
  os << "    end do\n";
  os << "  end do\n";
  os << "end do\n";
  os << "return\n";
  os << "end\n";

  // ---- boundary conditions (planes of the computational box) ----------------
  os << "subroutine bcond\n";
  emit_commons(os);
  os << "integer i, j, k\n";
  os << "do k = 1, n3\n";
  os << "  do j = 1, n2\n";
  os << "    u(1, j, k) = 1.0\n";
  os << "    u(n1, j, k) = 0.98\n";
  os << "    p(1, j, k) = 1.0\n";
  os << "  end do\n";
  os << "end do\n";
  os << "do k = 1, n3\n";
  os << "  do i = 1, n1\n";
  os << "    v(i, 1, k) = 0.0\n";
  os << "    w(i, 1, k) = 0.0\n";
  os << "    u(i, n2, k) = 1.0\n";
  os << "  end do\n";
  os << "end do\n";
  os << "return\n";
  os << "end\n";

  // ---- previous time level ---------------------------------------------------
  os << "subroutine savold\n";
  emit_commons(os);
  os << "integer i, j, k\n";
  os << "do k = 1, n3\n";
  os << "  do j = 1, n2\n";
  os << "    do i = 1, n1\n";
  for (const auto* v : kVars) {
    os << "      " << v << "o(i, j, k) = " << v << "(i, j, k)\n";
  }
  os << "    end do\n";
  os << "  end do\n";
  os << "end do\n";
  os << "return\n";
  os << "end\n";

  // ---- generated flux/update stages ------------------------------------------
  for (const auto& st : stages) emit_stage(os, st);

  // ---- packed status array (section 4.2 case 4) --------------------------------
  os << "subroutine packq\n";
  emit_commons(os);
  os << "integer i, j, k\n";
  os << "do k = 1, n3\n";
  os << "  do j = 1, n2\n";
  os << "    do i = 2, n1 - 1\n";
  os << "      q(i, j, k, 1) = 0.5 * (fx1(i - 1, j, k) + fx1(i + 1, j, k))\n";
  os << "      q(i, j, k, 2) = 0.5 * (fx2(i - 1, j, k) + fx2(i + 1, j, k))\n";
  os << "      q(i, j, k, 3) = 0.5 * (fx3(i - 1, j, k) + fx3(i + 1, j, k))\n";
  os << "    end do\n";
  os << "  end do\n";
  os << "end do\n";
  os << "return\n";
  os << "end\n";

  // ---- relaxation sweeps: self-dependent, mixed direction (Figure 3b) ---------
  os << "subroutine sweepx\n";
  emit_commons(os);
  os << "integer i, j, k\n";
  os << "do k = 1, n3\n";
  os << "  do j = 1, n2\n";
  os << "    do i = 2, n1 - 1\n";
  os << "      u(i, j, k) = 0.96 * u(i, j, k) + 0.02 * (u(i - 1, j, k) &\n";
  os << "                 + u(i + 1, j, k)) + 0.005 * q(i, j, k, 2)\n";
  os << "    end do\n";
  os << "  end do\n";
  os << "end do\n";
  os << "return\n";
  os << "end\n";

  os << "subroutine sweepp\n";
  emit_commons(os);
  os << "integer i, j, k\n";
  os << "do k = 1, n3\n";
  os << "  do j = 1, n2\n";
  os << "    do i = 2, n1 - 1\n";
  os << "      p(i, j, k) = 0.96 * p(i, j, k) + 0.02 * (p(i - 1, j, k) &\n";
  os << "                 + p(i + 1, j, k)) + 0.005 * q(i, j, k, 1)\n";
  os << "    end do\n";
  os << "  end do\n";
  os << "end do\n";
  os << "return\n";
  os << "end\n";

  os << "subroutine sweepr\n";
  emit_commons(os);
  os << "integer i, j, k\n";
  os << "do k = 1, n3\n";
  os << "  do j = 1, n2\n";
  os << "    do i = 2, n1 - 1\n";
  os << "      r(i, j, k) = 0.96 * r(i, j, k) + 0.02 * (r(i - 1, j, k) &\n";
  os << "                 + r(i + 1, j, k)) + 0.005 * q(i, j, k, 1)\n";
  os << "    end do\n";
  os << "  end do\n";
  os << "end do\n";
  os << "return\n";
  os << "end\n";

  os << "subroutine sweepe\n";
  emit_commons(os);
  os << "integer i, j, k\n";
  os << "do k = 1, n3\n";
  os << "  do j = 1, n2\n";
  os << "    do i = 2, n1 - 1\n";
  os << "      e(i, j, k) = 0.96 * e(i, j, k) + 0.02 * (e(i - 1, j, k) &\n";
  os << "                 + e(i + 1, j, k)) + 0.005 * q(i, j, k, 3)\n";
  os << "    end do\n";
  os << "  end do\n";
  os << "end do\n";
  os << "return\n";
  os << "end\n";

  os << "subroutine sweepy\n";
  emit_commons(os);
  os << "integer i, j, k\n";
  os << "do k = 1, n3\n";
  os << "  do i = 1, n1\n";
  os << "    do j = 2, n2 - 1\n";
  os << "      v(i, j, k) = 0.96 * v(i, j, k) + 0.02 * (vo(i, j - 1, k) &\n";
  os << "                 + vo(i, j + 1, k)) + 0.005 * q(i, j, k, 3)\n";
  os << "    end do\n";
  os << "  end do\n";
  os << "end do\n";
  os << "return\n";
  os << "end\n";

  // ---- residual ----------------------------------------------------------------
  os << "subroutine resid\n";
  emit_commons(os);
  os << "integer i, j, k\n";
  os << "resmax = 0.0\n";
  os << "do k = 1, n3\n";
  os << "  do j = 1, n2\n";
  os << "    do i = 1, n1\n";
  os << "      resmax = max(resmax, abs(u(i, j, k) - uo(i, j, k)))\n";
  os << "    end do\n";
  os << "  end do\n";
  os << "end do\n";
  os << "return\n";
  os << "end\n";

  auto text = os.str();
  const auto replace_all = [&text](const std::string& key,
                                   const std::string& value) {
    std::size_t pos = 0;
    while ((pos = text.find(key, pos)) != std::string::npos) {
      text.replace(pos, key.size(), value);
      pos += value.size();
    }
  };
  replace_all("%N1%", std::to_string(p.n1));
  replace_all("%N2%", std::to_string(p.n2));
  replace_all("%N3%", std::to_string(p.n3));
  replace_all("%NT%", std::to_string(p.frames));
  return text;
}

}  // namespace autocfd::cfd

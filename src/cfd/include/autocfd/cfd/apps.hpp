// The two case-study applications of the paper's evaluation, rebuilt
// as structurally faithful analogs in the supported Fortran subset.
//
// The originals (a 3,600-line aerofoil simulation and a 6,100-line
// sprayer-flow simulation from NWPU) are proprietary; what matters for
// reproducing the paper's tables is their *structure*:
//
//   * Case study 1 (aerofoil, 3-D): many field loops spread over
//     subroutines; per-direction flux phases whose stencils reach along
//     a single dimension; several full-stencil loops reaching along
//     more than one dimension (these make the 4x4x1 sync count smaller
//     than the 4x1x1 + 1x4x1 sum, as in Table 1); boundary-plane
//     sections; and relaxation sweeps that are *self-dependent with
//     mixed directions* — the mirror-image decomposition workload that
//     limits its speedup (Table 2).
//
//   * Case study 2 (sprayer, 2-D): ADI-flavoured direction-split
//     passes — x-offset loops and y-offset loops are disjoint, so the
//     4x4 sync count is the sum of the 4x1 and 1x4 counts (Table 1) —
//     plus fan source terms and a residual reduction. No mixed
//     self-dependences, which is why it parallelizes efficiently
//     (Tables 3-5).
//
// Both generators are parameterized by grid size and frame count so
// the scaling tables can sweep them.
#pragma once

#include <string>

namespace autocfd::cfd {

struct AerofoilParams {
  long long n1 = 99;  // chordwise
  long long n2 = 41;  // normal
  long long n3 = 13;  // spanwise
  int frames = 3;

  [[nodiscard]] std::string directive_grid() const;
};

/// Case study 1: 3-D aerofoil simulation analog (velocity distribution
/// + boundary-layer analysis), with mirror-image relaxation sweeps.
[[nodiscard]] std::string aerofoil_source(const AerofoilParams& p);

struct SprayerParams {
  long long nx = 300;
  long long ny = 100;
  int frames = 5;

  [[nodiscard]] std::string directive_grid() const;
};

/// Case study 2: 2-D sprayer-flow simulation analog (air velocity
/// around a fan), ADI-style direction-split passes.
[[nodiscard]] std::string sprayer_source(const SprayerParams& p);

}  // namespace autocfd::cfd

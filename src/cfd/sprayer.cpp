#include <sstream>
#include <vector>

#include "autocfd/cfd/apps.hpp"

namespace autocfd::cfd {

namespace {

/// Transported variables: droplet size classes (spray codes bin the
/// droplet spectrum), the k-epsilon turbulence pair, heat and humidity.
constexpr const char* kComps[] = {"c1", "c2", "c3", "c4", "c5", "c6",
                                  "tke", "eps", "ht", "hm"};

struct Ctx {
  std::ostringstream os;

  void commons() {
    os << "parameter (nx = %NX%, ny = %NY%)\n";
    os << "real u(nx, ny), v(nx, ny), uo(nx, ny), vo(nx, ny)\n";
    os << "real psi(nx, ny), psin(nx, ny), omg(nx, ny), omgn(nx, ny)\n";
    os << "real p(nx, ny), po(nx, ny), prs(nx, ny), src(nx, ny)\n";
    os << "real resmax\n";
    os << "common /flow/ u, v, uo, vo, psi, psin, omg, omgn, p, po, prs, "
          "src, resmax\n";
    for (const auto* c : kComps) {
      os << "real " << c << "(nx, ny), " << c << "o(nx, ny), " << c
         << "t(nx, ny)\n";
      os << "common /sp" << c << "/ " << c << ", " << c << "o, " << c
         << "t\n";
    }
  }

  void header(const std::string& name) {
    os << "subroutine " << name << "\n";
    commons();
    os << "integer i, j\n";
  }

  void footer() {
    os << "return\n";
    os << "end\n";
  }

  /// X-direction pass: writes `w(i,j)` from reads with i-offsets.
  void xloop(const std::string& w, const std::vector<std::string>& reads,
             const std::string& base) {
    os << "do j = 1, ny\n";
    os << "  do i = 2, nx - 1\n";
    os << "    " << w << "(i, j) = 0.96 * " << base << "(i, j)";
    int coef = 1;
    for (const auto& r : reads) {
      os << " &\n        + 0.00" << coef << " * (" << r << "(i + 1, j) - "
         << r << "(i - 1, j))";
      ++coef;
    }
    os << "\n";
    os << "  end do\n";
    os << "end do\n";
  }

  void yloop(const std::string& w, const std::vector<std::string>& reads,
             const std::string& base) {
    os << "do j = 2, ny - 1\n";
    os << "  do i = 1, nx\n";
    os << "    " << w << "(i, j) = 0.96 * " << base << "(i, j)";
    int coef = 1;
    for (const auto& r : reads) {
      os << " &\n        + 0.00" << coef << " * (" << r << "(i, j + 1) - "
         << r << "(i, j - 1))";
      ++coef;
    }
    os << "\n";
    os << "  end do\n";
    os << "end do\n";
  }
};

}  // namespace

std::string SprayerParams::directive_grid() const {
  std::ostringstream os;
  os << "!$acfd grid " << nx << ' ' << ny;
  return os.str();
}

std::string sprayer_source(const SprayerParams& p) {
  Ctx c;
  auto& os = c.os;

  os << "!$acfd grid " << p.nx << ' ' << p.ny << '\n';
  os << "!$acfd status u v uo vo psi psin omg omgn p po prs src";
  for (const auto* s : kComps) os << ' ' << s << ' ' << s << "o " << s << 't';
  os << '\n';

  // ---- main ------------------------------------------------------------------
  os << "program sprayer\n";
  c.commons();
  os << "parameter (nt = %NT%)\n";
  os << "integer it\n";
  os << "call init\n";
  os << "do it = 1, nt\n";
  os << "  call fansrc\n";
  os << "  call saveold\n";
  os << "  call xmom\n";
  os << "  call ymom\n";
  // Alternating-direction transport, phase major: all X predictors,
  // all X correctors, then the Y half — so the per-component
  // synchronization windows of one phase overlap and combine.
  for (const auto* s : kComps) os << "  call xprd" << s << "\n";
  for (const auto* s : kComps) os << "  call xcor" << s << "\n";
  for (const auto* s : kComps) os << "  call yprd" << s << "\n";
  for (const auto* s : kComps) os << "  call ycor" << s << "\n";
  os << "  call prhsx\n";
  os << "  call prhsy\n";
  os << "  call pcorx\n";
  os << "  call pcory\n";
  os << "  call psix\n";
  os << "  call psicpx\n";
  os << "  call psiy\n";
  os << "  call psicpy\n";
  os << "  call vortx\n";
  os << "  call vorcpx\n";
  os << "  call vorty\n";
  os << "  call vorcpy\n";
  os << "  call veloc\n";
  os << "  call resid\n";
  os << "  if (resmax .lt. 1.0e-12) goto 900\n";
  os << "end do\n";
  os << "900 continue\n";
  os << "end\n";

  // ---- init ------------------------------------------------------------------
  os << "subroutine init\n";
  c.commons();
  os << "integer i, j\n";
  os << "do j = 1, ny\n";
  os << "  do i = 1, nx\n";
  os << "    u(i, j) = 0.02 * j\n";
  os << "    v(i, j) = 0.0\n";
  os << "    uo(i, j) = u(i, j)\n";
  os << "    vo(i, j) = 0.0\n";
  os << "    psi(i, j) = 0.01 * i * j\n";
  os << "    psin(i, j) = 0.0\n";
  os << "    omg(i, j) = 0.001 * (i - j)\n";
  os << "    omgn(i, j) = 0.0\n";
  os << "    p(i, j) = 1.0\n";
  os << "    po(i, j) = 1.0\n";
  os << "    prs(i, j) = 0.0\n";
  os << "    src(i, j) = 0.0\n";
  int phase = 1;
  for (const auto* s : kComps) {
    os << "    " << s << "(i, j) = 0.001 * " << phase << " * (i + j)\n";
    os << "    " << s << "o(i, j) = " << s << "(i, j)\n";
    os << "    " << s << "t(i, j) = 0.0\n";
    ++phase;
  }
  os << "  end do\n";
  os << "end do\n";
  c.footer();

  // ---- fan source (boundary sections) -----------------------------------------
  c.header("fansrc");
  os << "do j = 1, ny\n";
  os << "  src(1, j) = 1.0 + 0.05 * j\n";
  os << "  u(1, j) = 0.8\n";
  os << "  u(nx, j) = 0.1\n";
  os << "end do\n";
  os << "do i = 1, nx\n";
  os << "  v(i, 1) = 0.0\n";
  os << "  v(i, ny) = 0.0\n";
  os << "end do\n";
  c.footer();

  // ---- previous time level -------------------------------------------------------
  c.header("saveold");
  os << "do j = 1, ny\n";
  os << "  do i = 1, nx\n";
  os << "    uo(i, j) = u(i, j)\n";
  os << "    vo(i, j) = v(i, j)\n";
  os << "    po(i, j) = p(i, j)\n";
  os << "  end do\n";
  os << "end do\n";
  c.footer();

  // ---- momentum --------------------------------------------------------------------
  c.header("xmom");
  c.xloop("u", {"uo", "src", "po"}, "uo");
  c.footer();
  c.header("ymom");
  c.yloop("v", {"vo", "src", "po"}, "vo");
  c.footer();

  // ---- transported components (ADI predictor/corrector) ------------------------------
  for (const auto* s : kComps) {
    const std::string cn = s;
    c.header("xprd" + cn);
    c.xloop(cn + "t", {cn + "o", "uo"}, cn + "o");
    c.footer();
    c.header("xcor" + cn);
    c.xloop(cn, {cn + "t", cn + "o"}, cn + "t");
    c.footer();
    c.header("yprd" + cn);
    c.yloop(cn + "t", {cn, "vo", "src"}, cn);
    c.footer();
    c.header("ycor" + cn);
    c.yloop(cn + "o", {cn + "t", cn}, cn + "t");
    c.footer();
  }

  // ---- pressure correction --------------------------------------------------------------
  c.header("prhsx");
  c.xloop("prs", {"u"}, "po");
  c.footer();
  c.header("prhsy");
  c.yloop("prs", {"v"}, "prs");
  c.footer();
  c.header("pcorx");
  c.xloop("p", {"po", "prs"}, "po");
  c.footer();
  c.header("pcory");
  c.yloop("p", {"po", "prs"}, "p");
  c.footer();

  // ---- stream function (Jacobi half-steps via psin) ----------------------------------------
  c.header("psix");
  c.xloop("psin", {"psi", "omg"}, "psi");
  c.footer();
  c.header("psicpx");
  os << "do j = 1, ny\n";
  os << "  do i = 2, nx - 1\n";
  os << "    psi(i, j) = psin(i, j)\n";
  os << "  end do\n";
  os << "end do\n";
  c.footer();
  c.header("psiy");
  c.yloop("psin", {"psi", "omg"}, "psi");
  c.footer();
  c.header("psicpy");
  os << "do j = 2, ny - 1\n";
  os << "  do i = 1, nx\n";
  os << "    psi(i, j) = psin(i, j)\n";
  os << "  end do\n";
  os << "end do\n";
  c.footer();

  // ---- vorticity ------------------------------------------------------------------------------
  c.header("vortx");
  c.xloop("omgn", {"omg", "u"}, "omg");
  c.footer();
  c.header("vorcpx");
  os << "do j = 1, ny\n";
  os << "  do i = 2, nx - 1\n";
  os << "    omg(i, j) = omgn(i, j)\n";
  os << "  end do\n";
  os << "end do\n";
  c.footer();
  c.header("vorty");
  c.yloop("omgn", {"omg", "v"}, "omg");
  c.footer();
  c.header("vorcpy");
  os << "do j = 2, ny - 1\n";
  os << "  do i = 1, nx\n";
  os << "    omg(i, j) = omgn(i, j)\n";
  os << "  end do\n";
  os << "end do\n";
  c.footer();

  // ---- velocities from the stream function -----------------------------------------------------
  c.header("veloc");
  os << "do j = 2, ny - 1\n";
  os << "  do i = 1, nx\n";
  os << "    u(i, j) = u(i, j) + 0.1 * (psi(i, j + 1) - psi(i, j - 1))\n";
  os << "  end do\n";
  os << "end do\n";
  os << "do j = 1, ny\n";
  os << "  do i = 2, nx - 1\n";
  os << "    v(i, j) = v(i, j) - 0.1 * (psi(i + 1, j) - psi(i - 1, j))\n";
  os << "  end do\n";
  os << "end do\n";
  c.footer();

  // ---- residual ---------------------------------------------------------------------------------
  c.header("resid");
  os << "resmax = 0.0\n";
  os << "do j = 1, ny\n";
  os << "  do i = 1, nx\n";
  os << "    resmax = max(resmax, abs(u(i, j) - uo(i, j)))\n";
  os << "  end do\n";
  os << "end do\n";
  c.footer();

  auto text = os.str();
  const auto replace_all = [&text](const std::string& key,
                                   const std::string& value) {
    std::size_t pos = 0;
    while ((pos = text.find(key, pos)) != std::string::npos) {
      text.replace(pos, key.size(), value);
      pos += value.size();
    }
  };
  replace_all("%NX%", std::to_string(p.nx));
  replace_all("%NY%", std::to_string(p.ny));
  replace_all("%NT%", std::to_string(p.frames));
  return text;
}

}  // namespace autocfd::cfd

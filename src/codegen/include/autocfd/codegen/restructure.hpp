// SPMD restructurer (paper section 3, "restructuring procedure").
//
// Transforms the analyzed sequential program — in place — into the
// SPMD message-passing program:
//   * status arrays are re-declared with local bounds plus ghost
//     layers: dim d becomes (acfd_lo<d> - G : acfd_hi<d> + G), where
//     the acfd_* scalars are set per rank by the runtime and G is the
//     union of all dependency distances seen for the array;
//   * field-loop bounds are clamped to the owned block
//     (max(lo, acfd_lo) / min(hi, acfd_hi), mirrored for descending
//     loops), keeping global index space so subscripts are untouched;
//   * boundary-section writes with loop-invariant subscripts are
//     guarded by ownership tests (paper section 4.2 case 3);
//   * one aggregated HaloExchange is inserted at every combined
//     synchronization point of the SyncPlan;
//   * scalar reductions detected in field loops get an AllReduce
//     right after the nest;
//   * mirror-image loops are bracketed by PipelineStart/PipelineEnd.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "autocfd/depend/dep_pairs.hpp"
#include "autocfd/fortran/ast.hpp"
#include "autocfd/fortran/symbols.hpp"
#include "autocfd/sync/sync_plan.hpp"
#include "autocfd/sync/tag_registry.hpp"

namespace autocfd::codegen {

struct SpmdOptions {
  ir::FieldConfig field;
  partition::Grid grid;
  partition::PartitionSpec spec;
};

/// Metadata the runtime needs to execute the restructured program.
struct SpmdMeta {
  partition::Grid grid;
  partition::PartitionSpec spec;
  std::vector<std::string> status_arrays;
  /// Ghost widths allocated per status array (union of all halos).
  std::map<std::string, partition::HaloWidths> ghosts;
  /// Global (sequential) shape of each status array, for gather.
  std::map<std::string, fortran::ArrayShape> global_shapes;
  /// One CommSite per communication-emitting construct the
  /// restructurer generated; the site id is the wire tag (or the
  /// collective `site`), so a trace of the run can attribute every
  /// event back to its synchronization point.
  sync::TagRegistry tags;

  [[nodiscard]] static std::string lo_name(int dim) {
    return "acfd_lo" + std::to_string(dim + 1);
  }
  [[nodiscard]] static std::string hi_name(int dim) {
    return "acfd_hi" + std::to_string(dim + 1);
  }
};

/// Restructures `file` in place. All analysis structures must have
/// been computed against this same file.
[[nodiscard]] SpmdMeta restructure(
    fortran::SourceFile& file, const SpmdOptions& opts,
    const std::map<std::string, std::vector<ir::FieldLoop>>& loops_by_unit,
    const depend::DependenceSet& deps, const sync::SyncPlan& plan,
    const sync::InlinedProgram& prog, DiagnosticEngine& diags);

}  // namespace autocfd::codegen

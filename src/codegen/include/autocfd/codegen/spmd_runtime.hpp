// Executes a restructured SPMD program on the simulated cluster.
//
// Each rank interprets the same restructured AST with its own
// environment: the acfd_lo*/acfd_hi* scalars describe the owned block,
// status arrays are allocated locally with ghost layers, and the
// interpreter's extension hook implements HaloExchange / AllReduce /
// Pipeline / Barrier against the mp::Cluster. Virtual time advances by
// interpreted flops x flop time x the memory-hierarchy factor of the
// rank's working set, plus the alpha-beta cost of every message.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "autocfd/codegen/restructure.hpp"
#include "autocfd/interp/interpreter.hpp"
#include "autocfd/mp/cluster.hpp"

namespace autocfd::codegen {

struct SpmdRunResult {
  mp::Cluster::RunResult cluster;
  double elapsed = 0.0;  // slowest rank's virtual time (seconds)
  /// Global status arrays assembled from the owned blocks (column
  /// major, same layout as a sequential run) — for validation.
  std::map<std::string, std::vector<double>> gathered;
  std::vector<std::string> rank0_output;
  double total_flops = 0.0;
  /// Bytecode-engine counters summed over all ranks (zeros when the
  /// run used the tree-walker).
  interp::bytecode::EngineStats engine_stats;
  /// One raw statement profile per rank when SpmdRunOptions::profile
  /// was set (empty otherwise). Keys point into the executed
  /// SourceFile; see interp/stmt_profile.hpp and prof/source_profile.hpp
  /// for the merged source-keyed views.
  std::vector<interp::StmtProfile> profiles;
};

/// Runtime knobs of a simulated SPMD run.
struct SpmdRunOptions {
  /// When non-null the cluster streams every event of the run into it
  /// (see autocfd/mp/events.hpp); pair with a trace::TraceRecorder and
  /// meta.tags to get an attributed execution trace.
  mp::EventSink* sink = nullptr;
  /// Fault-injection hook (e.g. a fault::FaultInjector); nullptr runs
  /// clean. The hook must outlive the run.
  mp::FaultHook* faults = nullptr;
  /// Watchdog deadline in virtual seconds (<= 0 disables); see
  /// mp::Cluster::set_watchdog.
  double watchdog = mp::Cluster::kDefaultWatchdog;
  /// Reliable-delivery protocol (ack/retransmit with virtual-time
  /// backoff); disabled by default — the fail-fast semantics. See
  /// mp::Cluster::set_recovery.
  mp::RecoveryConfig recovery{};
  /// Statement executor every rank's interpreter uses.
  interp::EngineKind engine = interp::EngineKind::Bytecode;
  /// Collect a per-rank source-attributed statement profile into
  /// SpmdRunResult::profiles. Off by default: with profiling off the
  /// hooks cost one pointer test per dispatched statement.
  bool profile = false;
};

/// Runs the restructured `file` on spec.num_tasks() simulated ranks.
/// The file is resolved in place (ProgramImage annotation). The
/// cluster gets meta.tags as its tag labeler, so communication errors
/// (timeout, checksum) name the sync-plan site that issued the
/// operation.
[[nodiscard]] SpmdRunResult run_spmd(fortran::SourceFile& file,
                                     const SpmdMeta& meta,
                                     const mp::MachineConfig& machine,
                                     const SpmdRunOptions& options);

/// Convenience overload: default options with an optional event sink.
[[nodiscard]] SpmdRunResult run_spmd(fortran::SourceFile& file,
                                     const SpmdMeta& meta,
                                     const mp::MachineConfig& machine,
                                     mp::EventSink* sink = nullptr);

struct SeqRunResult {
  double elapsed = 0.0;
  double flops = 0.0;
  std::map<std::string, std::vector<double>> arrays;  // status arrays
  std::vector<std::string> output;
  interp::bytecode::EngineStats engine_stats;
};

/// Runs an *unrestructured* sequential program under the same machine
/// model (flops x flop time x memory factor of the full working set).
[[nodiscard]] SeqRunResult run_sequential_timed(
    fortran::SourceFile& file, const std::vector<std::string>& status_arrays,
    const mp::MachineConfig& machine,
    interp::EngineKind engine = interp::EngineKind::Bytecode);

/// Appends the slab of `av` where dimension `dim` spans [d_lo, d_hi]
/// (global indices; every other dimension spans the full local
/// allocation) to `out` in column-major element order. The slab always
/// decomposes into lines that are contiguous in memory, which are
/// copied wholesale — this is the halo-packing fast path.
void pack_slab(const interp::ArrayValue& av, int dim, long long d_lo,
               long long d_hi, std::vector<double>& out);

/// Inverse of pack_slab: writes the same slab from `in` starting at
/// `pos` (advanced past the consumed elements). Throws CompileError
/// when `in` holds fewer elements than the slab needs.
void unpack_slab(interp::ArrayValue& av, int dim, long long d_lo,
                 long long d_hi, const std::vector<double>& in,
                 std::size_t& pos);

}  // namespace autocfd::codegen

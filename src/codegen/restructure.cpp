#include "autocfd/codegen/restructure.hpp"

#include <algorithm>

namespace autocfd::codegen {

using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;
using fortran::StmtList;
using partition::HaloWidths;

namespace {

fortran::ExprPtr lo_var(int dim) {
  return fortran::make_var(SpmdMeta::lo_name(dim));
}
fortran::ExprPtr hi_var(int dim) {
  return fortran::make_var(SpmdMeta::hi_name(dim));
}

fortran::ExprPtr make_max(fortran::ExprPtr a, fortran::ExprPtr b) {
  std::vector<fortran::ExprPtr> args;
  args.push_back(std::move(a));
  args.push_back(std::move(b));
  return fortran::make_intrinsic("max", std::move(args));
}
fortran::ExprPtr make_min(fortran::ExprPtr a, fortran::ExprPtr b) {
  std::vector<fortran::ExprPtr> args;
  args.push_back(std::move(a));
  args.push_back(std::move(b));
  return fortran::make_intrinsic("min", std::move(args));
}

/// acfd_lo<d> .le. e .and. e .le. acfd_hi<d>
fortran::ExprPtr ownership_test(int dim, const Expr& subscript) {
  auto lower = fortran::make_binary(fortran::BinOp::Le, lo_var(dim),
                                    subscript.clone());
  auto upper = fortran::make_binary(fortran::BinOp::Le, subscript.clone(),
                                    hi_var(dim));
  return fortran::make_binary(fortran::BinOp::And, std::move(lower),
                              std::move(upper));
}

struct Restructurer {
  const SpmdOptions* opts;
  const std::map<std::string, std::vector<ir::FieldLoop>>* loops_by_unit;
  DiagnosticEngine* diags;
  SpmdMeta* meta;
  bool warned_invariant_read = false;
  int reduction_ordinal = 0;
  int pipeline_ordinal = 0;

  /// Registers the wire tags of one aggregated halo exchange (one per
  /// cut grid dimension) and stamps them into the statement.
  void register_halo_tags(Stmt& halo, int point_ordinal) {
    const int rank = opts->grid.rank();
    halo.comm_tags.assign(static_cast<std::size_t>(rank), -1);
    std::string arrays;
    for (const auto& h : halo.halo_arrays) {
      if (!arrays.empty()) arrays += ",";
      arrays += h.array;
    }
    for (int d = 0; d < rank; ++d) {
      if (opts->spec.cuts[static_cast<std::size_t>(d)] <= 1) continue;
      sync::CommSite site;
      site.kind = sync::CommSite::Kind::Halo;
      site.ordinal = point_ordinal;
      site.dim = d;
      site.label = "halo#" + std::to_string(point_ordinal) + " dim" +
                   std::to_string(d) + " {" + arrays + "}";
      halo.comm_tags[static_cast<std::size_t>(d)] = meta->tags.add(site);
    }
  }

  // ---- ghost width computation -------------------------------------------

  void compute_ghosts(const depend::DependenceSet& deps,
                      const sync::SyncPlan& plan) {
    const int rank = opts->grid.rank();
    for (const auto& a : opts->field.status_arrays) {
      meta->ghosts[a] = HaloWidths::uniform(rank, 0);
    }
    const auto add = [&](const std::string& array, const HaloWidths& h) {
      auto it = meta->ghosts.find(array);
      if (it == meta->ghosts.end()) return;
      it->second = HaloWidths::merge(it->second, h);
    };
    for (const auto& p : deps.pairs) add(p.array, p.halo);
    for (const auto& r : plan.regions) add(r.pair->array, r.pair->halo);
    for (const auto& pp : plan.pipelines) {
      add(pp.plan.array, pp.plan.flow_halo);
      add(pp.plan.array, pp.plan.pre_halo);
    }
  }

  // ---- declarations --------------------------------------------------------

  void add_runtime_common(fortran::ProgramUnit& unit) {
    fortran::CommonBlock blk;
    blk.block_name = "acfdrt";
    for (int d = 0; d < opts->grid.rank(); ++d) {
      const auto lo = SpmdMeta::lo_name(d);
      const auto hi = SpmdMeta::hi_name(d);
      blk.vars.push_back(lo);
      blk.vars.push_back(hi);
      fortran::VarDecl decl;
      decl.type = fortran::TypeKind::Integer;
      decl.name = lo;
      unit.decls.push_back(decl.clone());
      decl.name = hi;
      unit.decls.push_back(std::move(decl));
    }
    blk.vars.push_back("acfd_rank");
    blk.vars.push_back("acfd_nprocs");
    fortran::VarDecl decl;
    decl.type = fortran::TypeKind::Integer;
    decl.name = "acfd_rank";
    unit.decls.push_back(decl.clone());
    decl.name = "acfd_nprocs";
    unit.decls.push_back(std::move(decl));
    unit.commons.push_back(std::move(blk));
  }

  void rewrite_array_decls(fortran::ProgramUnit& unit) {
    fortran::ConstEvaluator eval(unit);
    for (auto& d : unit.decls) {
      if (!d.is_array() || !opts->field.is_status(d.name)) continue;
      const int n_status =
          opts->field.status_dims(static_cast<int>(d.dims.size()));
      const auto& ghosts = meta->ghosts.at(d.name);
      // Record the global shape once (first declaring unit wins; the
      // GlobalSymbols pass already enforced consistency for commons).
      if (!meta->global_shapes.contains(d.name)) {
        fortran::ArrayShape shape;
        bool ok = true;
        for (const auto& dim : d.dims) {
          fortran::ArrayShape::Dim out;
          if (dim.lower) {
            const auto lo = eval.eval_int(*dim.lower);
            ok = ok && lo.has_value();
            if (lo) out.lower = *lo;
          }
          const auto hi = eval.eval_int(*dim.upper);
          ok = ok && hi.has_value();
          if (hi) out.upper = *hi;
          shape.dims.push_back(out);
        }
        if (ok) meta->global_shapes[d.name] = std::move(shape);
      }
      for (int dim = 0; dim < n_status; ++dim) {
        const auto du = static_cast<std::size_t>(dim);
        // The subset requires status dimensions indexed 1..N matching
        // the grid (checked here).
        if (d.dims[du].lower) {
          const auto lo = eval.eval_int(*d.dims[du].lower);
          if (!lo || *lo != 1) {
            diags->error(d.loc,
                         "status array '" + d.name +
                             "': status dimensions must start at 1");
            continue;
          }
        }
        const auto hi = eval.eval_int(*d.dims[du].upper);
        if (hi && *hi != opts->grid.extents[du]) {
          diags->error(d.loc, "status array '" + d.name + "' dimension " +
                                  std::to_string(dim + 1) +
                                  " does not match the grid extent");
        }
        // Uncut dimensions keep their original declaration (the whole
        // extent is local to every block).
        if (opts->spec.cuts[du] <= 1) continue;
        d.dims[du].lower = fortran::make_binary(
            fortran::BinOp::Sub, lo_var(dim),
            fortran::make_int(ghosts.lo[du]));
        d.dims[du].upper = fortran::make_binary(
            fortran::BinOp::Add, hi_var(dim),
            fortran::make_int(ghosts.hi[du]));
      }
    }
  }

  // ---- loop bounds and boundary guards ------------------------------------

  const ir::FieldLoop* field_loop_for(const fortran::ProgramUnit& unit,
                                      const Stmt& stmt) const {
    const auto it = loops_by_unit->find(unit.name);
    if (it == loops_by_unit->end()) return nullptr;
    for (const auto& fl : it->second) {
      if (fl.loop == &stmt) return &fl;
    }
    return nullptr;
  }

  void clamp_nest(Stmt& root, const ir::FieldLoop& fl) {
    clamp_do_bounds(root, fl);
    clamp_list(root.body, fl);
    clamp_list(root.else_body, fl);
  }

  void clamp_do_bounds(Stmt& stmt, const ir::FieldLoop& fl) {
    if (stmt.kind != StmtKind::Do) return;
    const auto it = fl.var_dims.find(stmt.do_var);
    if (it == fl.var_dims.end()) return;
    const int dim = it->second;
    const int dir =
        fl.var_dirs.count(stmt.do_var) ? fl.var_dirs.at(stmt.do_var) : +1;
    if (opts->spec.cuts[static_cast<std::size_t>(dim)] <= 1) return;
    if (dir >= 0) {
      stmt.lo = make_max(std::move(stmt.lo), lo_var(dim));
      stmt.hi = make_min(std::move(stmt.hi), hi_var(dim));
    } else {
      stmt.lo = make_min(std::move(stmt.lo), hi_var(dim));
      stmt.hi = make_max(std::move(stmt.hi), lo_var(dim));
    }
  }

  /// One pass over the nest: clamps loop bounds and wraps
  /// boundary-section writes (invariant subscript in a cut status
  /// dimension) in ownership guards. Wrapped statements are not
  /// revisited.
  void clamp_list(StmtList& list, const ir::FieldLoop& fl) {
    for (auto& s : list) {
      if (s->kind == StmtKind::Assign) {
        maybe_guard(s, fl);
        continue;  // the fresh wrapper needs no further processing
      }
      clamp_do_bounds(*s, fl);
      clamp_list(s->body, fl);
      clamp_list(s->else_body, fl);
    }
  }

  void maybe_guard(fortran::StmtPtr& s, const ir::FieldLoop& fl) {
    if (s->lhs->kind != ExprKind::ArrayRef) return;
    if (!opts->field.is_status(s->lhs->name)) return;
    const int n_status =
        opts->field.status_dims(static_cast<int>(s->lhs->args.size()));
    fortran::ExprPtr guard;
    for (int d = 0; d < n_status; ++d) {
      const auto du = static_cast<std::size_t>(d);
      if (opts->spec.cuts[du] <= 1) continue;
      const auto pat = ir::classify_subscript(*s->lhs->args[du], fl.var_dims);
      if (pat.kind != ir::SubscriptPattern::Kind::Invariant) continue;
      auto test = ownership_test(d, *s->lhs->args[du]);
      guard = guard ? fortran::make_binary(fortran::BinOp::And,
                                           std::move(guard), std::move(test))
                    : std::move(test);
    }
    if (guard) {
      auto wrapper = fortran::make_stmt(StmtKind::If, s->loc);
      wrapper->cond = std::move(guard);
      wrapper->body.push_back(std::move(s));
      s = std::move(wrapper);
    }
  }

  void warn_invariant_reads(const ir::FieldLoop& fl) {
    if (warned_invariant_read) return;
    for (const auto& [name, info] : fl.arrays) {
      for (const auto& read : info.reads) {
        const int n_status =
            opts->field.status_dims(static_cast<int>(read.subs.size()));
        for (int d = 0; d < n_status; ++d) {
          const auto du = static_cast<std::size_t>(d);
          if (opts->spec.cuts[du] <= 1) continue;
          if (read.subs[du].kind == ir::SubscriptPattern::Kind::Invariant &&
              read.subs[du].const_value.has_value()) {
            diags->warning(read.stmt->loc,
                           "read of '" + name +
                               "' at a fixed index in a cut dimension: "
                               "only the owning block can access it");
            warned_invariant_read = true;
            return;
          }
        }
      }
    }
  }

  // ---- reductions ----------------------------------------------------------

  void insert_allreduces(fortran::ProgramUnit& unit, StmtList& list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      Stmt& s = *list[i];
      if (const auto* fl = field_loop_for(unit, s)) {
        std::size_t insert_at = i + 1;
        // One AllReduce per distinct reduction variable.
        std::vector<std::string> done;
        for (const auto& red : fl->reductions) {
          if (std::find(done.begin(), done.end(), red.var) != done.end()) {
            continue;
          }
          done.push_back(red.var);
          auto ar = fortran::make_stmt(StmtKind::AllReduce, s.loc);
          ar->reduce_var = red.var;
          ar->callee = red.op;
          sync::CommSite site;
          site.kind = sync::CommSite::Kind::Collective;
          site.ordinal = reduction_ordinal++;
          site.label = "allreduce(" + red.op + ") " + red.var;
          ar->sync_site = meta->tags.add(site);
          list.insert(list.begin() + static_cast<std::ptrdiff_t>(insert_at++),
                      std::move(ar));
        }
        i = insert_at - 1;
        continue;  // do not descend into the nest
      }
      insert_allreduces(unit, s.body);
      insert_allreduces(unit, s.else_body);
    }
  }

  // ---- pipelines -----------------------------------------------------------

  void insert_pipelines(fortran::ProgramUnit& unit, StmtList& list,
                        const sync::SyncPlan& plan,
                        std::vector<const Stmt*>& done) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      Stmt& s = *list[i];
      // Find a pipeline plan whose loop is this statement.
      const sync::PipelinePlan* pp = nullptr;
      for (const auto& cand : plan.pipelines) {
        if (cand.site->loop->loop == &s) {
          pp = &cand;
          break;
        }
      }
      if (pp && std::find(done.begin(), done.end(), &s) == done.end()) {
        done.push_back(&s);
        fortran::HaloSpec flow;
        flow.array = pp->plan.array;
        flow.lo_width = pp->plan.flow_halo.lo;
        flow.hi_width = pp->plan.flow_halo.hi;
        // One wire tag per (pipeline, dimension, direction), shared by
        // the PipelineStart that receives the boundary and the
        // PipelineEnd that sends it downstream.
        const int this_pipeline = pipeline_ordinal++;
        std::vector<int> wave_tags;
        for (const auto& [dim, dir] : pp->plan.pipeline_dims) {
          sync::CommSite site;
          site.kind = sync::CommSite::Kind::Pipeline;
          site.ordinal = this_pipeline;
          site.dim = dim;
          site.dir = dir;
          site.label = "pipeline#" + std::to_string(this_pipeline) + " " +
                       pp->plan.array + " dim" + std::to_string(dim) +
                       (dir > 0 ? "+" : "-");
          wave_tags.push_back(meta->tags.add(site));
        }
        std::size_t at = i;
        std::size_t wave = 0;
        for (const auto& [dim, dir] : pp->plan.pipeline_dims) {
          auto start = fortran::make_stmt(StmtKind::PipelineStart, s.loc);
          start->pipeline_dim = dim;
          start->pipeline_dir = dir;
          start->halo_arrays = {flow};
          start->comm_tags = {wave_tags[wave++]};
          list.insert(list.begin() + static_cast<std::ptrdiff_t>(at++),
                      std::move(start));
        }
        std::size_t after = at + 1;  // loop shifted right by inserts
        wave = 0;
        for (const auto& [dim, dir] : pp->plan.pipeline_dims) {
          auto end = fortran::make_stmt(StmtKind::PipelineEnd, s.loc);
          end->pipeline_dim = dim;
          end->pipeline_dir = dir;
          end->halo_arrays = {flow};
          end->comm_tags = {wave_tags[wave++]};
          list.insert(list.begin() + static_cast<std::ptrdiff_t>(after++),
                      std::move(end));
        }
        i = after - 1;
        continue;
      }
      insert_pipelines(unit, s.body, plan, done);
      insert_pipelines(unit, s.else_body, plan, done);
    }
  }
};

}  // namespace

SpmdMeta restructure(
    fortran::SourceFile& file, const SpmdOptions& opts,
    const std::map<std::string, std::vector<ir::FieldLoop>>& loops_by_unit,
    const depend::DependenceSet& deps, const sync::SyncPlan& plan,
    const sync::InlinedProgram& prog, DiagnosticEngine& diags) {
  SpmdMeta meta;
  meta.grid = opts.grid;
  meta.spec = opts.spec;
  meta.status_arrays = opts.field.status_arrays;

  Restructurer r{&opts, &loops_by_unit, &diags, &meta, false};
  r.compute_ghosts(deps, plan);

  // 1. Communication statements at the combined synchronization points.
  //    Collected first (slot indices reference the original statement
  //    lists), applied per block in descending index order so earlier
  //    indices stay valid.
  struct Insertion {
    const fortran::StmtList* block;
    int index;
    fortran::StmtPtr stmt;
  };
  std::vector<Insertion> insertions;
  for (std::size_t k = 0; k < plan.points.size(); ++k) {
    const auto& point = plan.points[k];
    const auto& slot = prog.slot(point.chosen_slot);
    if (!slot.source_block) {
      diags.error({}, "synchronization point has no source location");
      continue;
    }
    auto halo = fortran::make_stmt(StmtKind::HaloExchange);
    halo->halo_arrays = sync::SyncPlan::halos_for(point);
    r.register_halo_tags(*halo, static_cast<int>(k));
    insertions.push_back(Insertion{slot.source_block, slot.index,
                                   std::move(halo)});
  }
  std::stable_sort(insertions.begin(), insertions.end(),
                   [](const Insertion& a, const Insertion& b) {
                     if (a.block != b.block) return a.block < b.block;
                     return a.index > b.index;
                   });
  for (auto& ins : insertions) {
    // The source blocks belong to `file`, which the caller hands us as
    // mutable; the const comes from the analysis-side view.
    auto* block = const_cast<fortran::StmtList*>(ins.block);
    block->insert(block->begin() + ins.index, std::move(ins.stmt));
  }

  // 2. Per-unit transformations.
  std::vector<const Stmt*> pipelines_done;
  for (auto& unit : file.units) {
    r.add_runtime_common(unit);
    r.rewrite_array_decls(unit);
    const auto it = loops_by_unit.find(unit.name);
    if (it != loops_by_unit.end()) {
      for (const auto& fl : it->second) {
        r.warn_invariant_reads(fl);
        // The analysis holds const pointers into this same AST.
        auto* loop = const_cast<Stmt*>(fl.loop);
        r.clamp_nest(*loop, fl);
      }
    }
    r.insert_allreduces(unit, unit.body);
    r.insert_pipelines(unit, unit.body, plan, pipelines_done);
  }

  assign_stmt_ids(file);
  return meta;
}

}  // namespace autocfd::codegen

#include "autocfd/codegen/spmd_runtime.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "autocfd/partition/grid.hpp"

namespace autocfd::codegen {

using fortran::Stmt;
using fortran::StmtKind;
using interp::ArrayValue;
using interp::Env;
using partition::BlockPartition;

namespace {

/// Per-rank execution context implementing the extension statements.
struct RankRuntime {
  mp::Comm* comm;
  const SpmdMeta* meta;
  const BlockPartition* part;
  const interp::ProgramImage* image;
  interp::Interpreter* interp = nullptr;
  Env* env;
  double mem_factor = 1.0;
  double flop_time = 0.0;
  double last_flops = 0.0;

  void flush_compute() {
    const double f = interp->flops();
    const double delta = f - last_flops;
    last_flops = f;
    if (delta > 0.0) comm->add_compute(delta * flop_time * mem_factor);
  }

  const partition::SubGrid& mine() const {
    return part->subgrid(comm->rank());
  }

  ArrayValue& array(const std::string& name) {
    // Status arrays live in common storage: the global key resolves
    // regardless of unit.
    const int slot = image->find_array_slot(name);
    if (slot < 0) {
      throw autocfd::CompileError("status array '" + name +
                                  "' not found at run time");
    }
    return env->arrays[static_cast<std::size_t>(slot)];
  }

  /// One aggregated halo exchange (a combined synchronization point).
  /// Dimensions are processed in ascending order so corner ghosts fill
  /// transitively; within a dimension, the low side is exchanged before
  /// the high side.
  void halo_exchange(const Stmt& s) {
    flush_compute();
    const auto& sg = mine();
    for (int dim = 0; dim < meta->grid.rank(); ++dim) {
      const auto du = static_cast<std::size_t>(dim);
      if (meta->spec.cuts[du] <= 1) continue;
      for (const int dir : {-1, +1}) {
        const auto peer = part->neighbor(comm->rank(), dim, dir);
        if (!peer) continue;
        // Width of the layers the *peer* needs from us, and the width
        // we need from the peer, per array.
        std::vector<double> outbox;
        for (const auto& h : s.halo_arrays) {
          // Peer on the high side needs our top h.lo layers (it reads
          // v(i - k)); peer on the low side needs our bottom h.hi.
          const int send_w = dir > 0 ? h.lo_width[du] : h.hi_width[du];
          if (send_w <= 0) continue;
          auto& av = array(h.array);
          const long long base = dir > 0 ? sg.hi[du] - send_w + 1 : sg.lo[du];
          pack_slab(av, dim, base, base + send_w - 1, outbox);
        }
        // One logical exchange per (dimension, neighbor pair): both
        // peers must use the same tag for the paired sendrecv. The
        // restructurer assigns a registry tag per (sync point, dim) so
        // traces can attribute the message; fall back to the dimension
        // for hand-built statements.
        const int tag = du < s.comm_tags.size() && s.comm_tags[du] >= 0
                            ? s.comm_tags[du]
                            : dim;
        auto inbox = comm->sendrecv(*peer, tag, std::move(outbox));
        std::size_t pos = 0;
        for (const auto& h : s.halo_arrays) {
          const int recv_w = dir > 0 ? h.hi_width[du] : h.lo_width[du];
          if (recv_w <= 0) continue;
          auto& av = array(h.array);
          const long long base =
              dir > 0 ? sg.hi[du] + 1 : sg.lo[du] - recv_w;
          unpack_slab(av, dim, base, base + recv_w - 1, inbox, pos);
        }
        if (pos != inbox.size()) {
          throw autocfd::CompileError("halo exchange size mismatch");
        }
      }
    }
  }

  void allreduce(const Stmt& s, Env& e) {
    flush_compute();
    const double v = e.scalar(s.slot);
    double r = 0.0;
    if (s.callee == "sum") {
      r = comm->allreduce_sum(v, s.sync_site);
    } else if (s.callee == "min") {
      r = -comm->allreduce_max(-v, s.sync_site);
    } else {
      r = comm->allreduce_max(v, s.sync_site);
    }
    e.set_scalar(s.slot, r);
  }

  /// Mirror-image pipelined sweep entry: receive the updated boundary
  /// from the upstream block (the flow half of the decomposition).
  void pipeline_start(const Stmt& s) {
    flush_compute();
    const int dim = s.pipeline_dim;
    const int up = -s.pipeline_dir;  // upstream side
    const auto peer = part->neighbor(comm->rank(), dim, up);
    if (!peer) return;  // first block in the sweep starts immediately
    const auto du = static_cast<std::size_t>(dim);
    const auto& sg = mine();
    const int tag = !s.comm_tags.empty() ? s.comm_tags[0]
                                         : 64 + dim * 4 + (up > 0 ? 1 : 0);
    auto inbox = comm->recv(*peer, tag);
    std::size_t pos = 0;
    for (const auto& h : s.halo_arrays) {
      const int w = up < 0 ? h.lo_width[du] : h.hi_width[du];
      if (w <= 0) continue;
      auto& av = array(h.array);
      const long long base = up < 0 ? sg.lo[du] - w : sg.hi[du] + 1;
      unpack_slab(av, dim, base, base + w - 1, inbox, pos);
    }
  }

  /// Pipelined sweep exit: send our updated boundary downstream.
  void pipeline_end(const Stmt& s) {
    flush_compute();
    const int dim = s.pipeline_dim;
    const int down = s.pipeline_dir;
    const auto peer = part->neighbor(comm->rank(), dim, down);
    if (!peer) return;  // last block
    const auto du = static_cast<std::size_t>(dim);
    const auto& sg = mine();
    std::vector<double> outbox;
    for (const auto& h : s.halo_arrays) {
      const int w = down > 0 ? h.lo_width[du] : h.hi_width[du];
      if (w <= 0) continue;
      auto& av = array(h.array);
      const long long base =
          down > 0 ? sg.hi[du] - w + 1 : sg.lo[du];
      pack_slab(av, dim, base, base + w - 1, outbox);
    }
    // One message per grid line of the owned face: the fine-grained
    // pipelining of the mirror-image sweep (this is what makes the
    // 4x1x1 aerofoil partition communication-bound, Table 2).
    long long lines = 1;
    for (int d = 0; d < meta->grid.rank(); ++d) {
      if (d == dim) continue;
      lines *= sg.extent(d);
    }
    const int tag = !s.comm_tags.empty() ? s.comm_tags[0]
                                         : 64 + dim * 4 + (-down > 0 ? 1 : 0);
    comm->send_chunked(*peer, tag, std::move(outbox), lines);
  }

  void on_extension(const Stmt& s, Env& e) {
    switch (s.kind) {
      case StmtKind::HaloExchange: halo_exchange(s); break;
      case StmtKind::AllReduce: allreduce(s, e); break;
      case StmtKind::PipelineStart: pipeline_start(s); break;
      case StmtKind::PipelineEnd: pipeline_end(s); break;
      case StmtKind::Barrier:
        flush_compute();
        comm->barrier(s.sync_site);
        break;
      default: break;
    }
  }
};

}  // namespace

namespace {

/// Shape of a slab as contiguous memory chunks. A slab fixes one
/// dimension to [d_lo, d_hi] and spans every other dimension fully, so
/// in column-major storage it is `nblocks` blocks of `chunk`
/// contiguous doubles, one block every `block_stride` elements — the
/// element order is exactly the old per-element column-major walk.
struct SlabChunks {
  std::size_t base = 0;          // linear index of the first element
  std::size_t chunk = 0;         // contiguous doubles per block
  std::size_t block_stride = 0;  // element distance between blocks
  std::size_t nblocks = 0;
  std::size_t total = 0;
};

SlabChunks slab_chunks(const ArrayValue& av, int dim, long long d_lo,
                       long long d_hi) {
  const int rank = av.rank();
  if (dim < 0 || dim >= rank) {
    throw autocfd::CompileError("slab dimension out of range");
  }
  // Bounds check with the exact message ArrayValue::index would give.
  {
    std::vector<long long> corner(static_cast<std::size_t>(rank));
    for (int d = 0; d < rank; ++d) {
      corner[static_cast<std::size_t>(d)] =
          d == dim ? d_lo : av.lower[static_cast<std::size_t>(d)];
    }
    (void)av.index(corner);
    corner[static_cast<std::size_t>(dim)] = d_hi;
    (void)av.index(corner);
  }
  SlabChunks s;
  const auto du = static_cast<std::size_t>(dim);
  std::size_t inner = 1;  // elements per unit step of `dim`
  for (std::size_t d = 0; d < du; ++d) {
    inner *= static_cast<std::size_t>(av.extent[d]);
  }
  const auto span = static_cast<std::size_t>(d_hi - d_lo + 1);
  s.base = static_cast<std::size_t>(d_lo - av.lower[du]) * inner;
  s.chunk = inner * span;
  s.block_stride = inner * static_cast<std::size_t>(av.extent[du]);
  s.nblocks = 1;
  for (std::size_t d = du + 1; d < static_cast<std::size_t>(rank); ++d) {
    s.nblocks *= static_cast<std::size_t>(av.extent[d]);
  }
  s.total = s.chunk * s.nblocks;
  return s;
}

}  // namespace

void pack_slab(const ArrayValue& av, int dim, long long d_lo, long long d_hi,
               std::vector<double>& out) {
  const SlabChunks s = slab_chunks(av, dim, d_lo, d_hi);
  std::size_t at = out.size();
  out.resize(at + s.total);
  const double* src = av.data.data() + s.base;
  for (std::size_t b = 0; b < s.nblocks; ++b) {
    std::memcpy(out.data() + at, src, s.chunk * sizeof(double));
    at += s.chunk;
    src += s.block_stride;
  }
}

void unpack_slab(ArrayValue& av, int dim, long long d_lo, long long d_hi,
                 const std::vector<double>& in, std::size_t& pos) {
  const SlabChunks s = slab_chunks(av, dim, d_lo, d_hi);
  if (pos + s.total > in.size()) {
    throw autocfd::CompileError("halo exchange size mismatch");
  }
  double* dst = av.data.data() + s.base;
  for (std::size_t b = 0; b < s.nblocks; ++b) {
    std::memcpy(dst, in.data() + pos, s.chunk * sizeof(double));
    pos += s.chunk;
    dst += s.block_stride;
  }
}

SpmdRunResult run_spmd(fortran::SourceFile& file, const SpmdMeta& meta,
                       const mp::MachineConfig& machine,
                       mp::EventSink* sink) {
  SpmdRunOptions options;
  options.sink = sink;
  return run_spmd(file, meta, machine, options);
}

SpmdRunResult run_spmd(fortran::SourceFile& file, const SpmdMeta& meta,
                       const mp::MachineConfig& machine,
                       const SpmdRunOptions& options) {
  DiagnosticEngine diags;
  auto image = interp::ProgramImage::build(file, diags);
  throw_if_errors(diags, "spmd image build");

  const BlockPartition part(meta.grid, meta.spec);
  const int nprocs = meta.spec.num_tasks();
  mp::Cluster cluster(nprocs, machine);
  cluster.set_event_sink(options.sink);
  cluster.set_fault_hook(options.faults);
  cluster.set_watchdog(options.watchdog);
  cluster.set_recovery(options.recovery);
  // Wire / collective ids are sync-plan site ids; resolving them
  // through the tag registry gives errors their source attribution.
  cluster.set_tag_labeler([&meta](int id) { return meta.tags.label(id); });

  std::vector<Env> envs;
  envs.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) envs.emplace_back(image);
  std::vector<std::vector<std::string>> outputs(
      static_cast<std::size_t>(nprocs));
  std::vector<double> flops(static_cast<std::size_t>(nprocs), 0.0);
  std::vector<interp::bytecode::EngineStats> engine_stats(
      static_cast<std::size_t>(nprocs));
  std::vector<interp::StmtProfile> profiles(
      options.profile ? static_cast<std::size_t>(nprocs) : 0u);

  auto result_cluster = cluster.run([&](mp::Comm& comm) {
    const int r = comm.rank();
    Env& env = envs[static_cast<std::size_t>(r)];
    const auto& sg = part.subgrid(r);

    // Rank scalars drive the local array bounds and loop clamps.
    DiagnosticEngine rank_diags;
    for (int d = 0; d < meta.grid.rank(); ++d) {
      const auto du = static_cast<std::size_t>(d);
      const int lo_slot = image.scalar_slot("", SpmdMeta::lo_name(d));
      const int hi_slot = image.scalar_slot("", SpmdMeta::hi_name(d));
      if (lo_slot >= 0) env.set_scalar(lo_slot, static_cast<double>(sg.lo[du]));
      if (hi_slot >= 0) env.set_scalar(hi_slot, static_cast<double>(sg.hi[du]));
    }
    if (const int rs = image.scalar_slot("", "acfd_rank"); rs >= 0) {
      env.set_scalar(rs, static_cast<double>(r));
    }
    if (const int ns = image.scalar_slot("", "acfd_nprocs"); ns >= 0) {
      env.set_scalar(ns, static_cast<double>(nprocs));
    }
    env.allocate_arrays(image, rank_diags);
    throw_if_errors(rank_diags, "rank array allocation");

    RankRuntime rt;
    rt.comm = &comm;
    rt.meta = &meta;
    rt.part = &part;
    rt.image = &image;
    rt.env = &env;
    rt.flop_time = machine.flop_time;
    rt.mem_factor = machine.memory_factor(env.array_bytes());

    interp::Interpreter::Hooks hooks;
    hooks.on_extension = [&rt](const Stmt& s, Env& e) {
      rt.on_extension(s, e);
    };
    hooks.on_write = [&outputs, r](const std::string& line) {
      outputs[static_cast<std::size_t>(r)].push_back(line);
    };
    interp::Interpreter interp(image, hooks, options.engine);
    rt.interp = &interp;
    if (options.profile) {
      auto& prof = profiles[static_cast<std::size_t>(r)];
      prof.seconds_per_flop = rt.flop_time * rt.mem_factor;
      interp.set_profile(&prof);
    }
    interp.run(env);
    rt.flush_compute();
    flops[static_cast<std::size_t>(r)] = interp.flops();
    engine_stats[static_cast<std::size_t>(r)] = interp.engine_stats();
  });

  SpmdRunResult result;
  result.cluster = std::move(result_cluster);
  result.elapsed = result.cluster.elapsed();
  result.rank0_output = std::move(outputs[0]);
  for (const auto f : flops) result.total_flops += f;
  for (const auto& es : engine_stats) result.engine_stats += es;
  result.profiles = std::move(profiles);

  // Gather owned blocks into global arrays for validation.
  for (const auto& name : meta.status_arrays) {
    const auto git = meta.global_shapes.find(name);
    if (git == meta.global_shapes.end()) continue;
    const auto& shape = git->second;
    std::vector<double> global(
        static_cast<std::size_t>(shape.element_count()), 0.0);
    const int slot = image.find_array_slot(name);
    if (slot < 0) continue;
    for (int r = 0; r < nprocs; ++r) {
      const auto& sg = part.subgrid(r);
      const auto& av = envs[static_cast<std::size_t>(r)]
                           .arrays[static_cast<std::size_t>(slot)];
      if (!av.allocated()) continue;
      // Walk the owned region (global indices) of the local array.
      const int arank = av.rank();
      std::vector<long long> lo(static_cast<std::size_t>(arank));
      std::vector<long long> hi(static_cast<std::size_t>(arank));
      for (int d = 0; d < arank; ++d) {
        const auto du = static_cast<std::size_t>(d);
        if (d < meta.grid.rank()) {
          lo[du] = sg.lo[du];
          hi[du] = sg.hi[du];
        } else {
          lo[du] = av.lower[du];
          hi[du] = av.upper(d);
        }
      }
      std::vector<long long> idx = lo;
      while (true) {
        // Global linear index (column major over the global shape).
        long long gidx = 0;
        long long stride = 1;
        for (int d = 0; d < arank; ++d) {
          const auto du = static_cast<std::size_t>(d);
          gidx += (idx[du] - shape.dims[du].lower) * stride;
          stride *= shape.dims[du].extent();
        }
        global[static_cast<std::size_t>(gidx)] =
            av.data[static_cast<std::size_t>(av.index(idx))];
        int d = 0;
        while (d < arank) {
          const auto du = static_cast<std::size_t>(d);
          if (++idx[du] <= hi[du]) break;
          idx[du] = lo[du];
          ++d;
        }
        if (d == arank) break;
      }
    }
    result.gathered[name] = std::move(global);
  }
  return result;
}

SeqRunResult run_sequential_timed(fortran::SourceFile& file,
                                  const std::vector<std::string>& status_arrays,
                                  const mp::MachineConfig& machine,
                                  interp::EngineKind engine) {
  DiagnosticEngine diags;
  auto image = interp::ProgramImage::build(file, diags);
  throw_if_errors(diags, "sequential image build");
  Env env(image);
  env.allocate_arrays(image, diags);
  throw_if_errors(diags, "sequential allocation");
  interp::Interpreter interp(image, {}, engine);
  interp.run(env);

  SeqRunResult out;
  out.flops = interp.flops();
  out.engine_stats = interp.engine_stats();
  out.elapsed =
      out.flops * machine.flop_time * machine.memory_factor(env.array_bytes());
  out.output = interp.output();
  for (const auto& name : status_arrays) {
    const int slot = image.find_array_slot(name);
    if (slot < 0) continue;
    out.arrays[name] = env.arrays[static_cast<std::size_t>(slot)].data;
  }
  return out;
}

}  // namespace autocfd::codegen

#include "autocfd/core/directives.hpp"

#include <charconv>

#include "autocfd/partition/comm_model.hpp"
#include "autocfd/support/strings.hpp"

namespace autocfd::core {

Directives Directives::extract(std::string_view source,
                               DiagnosticEngine& diags) {
  Directives out;
  std::uint32_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const auto nl = source.find('\n', pos);
    const auto end = (nl == std::string_view::npos) ? source.size() : nl;
    const auto line = trim(source.substr(pos, end - pos));
    ++line_no;
    pos = (nl == std::string_view::npos) ? source.size() + 1 : nl + 1;

    if (!starts_with_ci(line, "!$acfd")) continue;
    const auto words = split_ws(line.substr(6));
    if (words.empty()) {
      diags.error({line_no, 1}, "empty !$acfd directive");
      continue;
    }
    const auto& kind = words[0];
    if (kind == "grid") {
      out.grid.extents.clear();
      for (std::size_t i = 1; i < words.size(); ++i) {
        long long v = 0;
        const auto& w = words[i];
        const auto [p, ec] = std::from_chars(w.data(), w.data() + w.size(), v);
        if (ec != std::errc{} || p != w.data() + w.size() || v < 1) {
          diags.error({line_no, 1}, "bad grid extent '" + w + "'");
          v = 1;
        }
        out.grid.extents.push_back(v);
      }
      if (out.grid.extents.empty()) {
        diags.error({line_no, 1}, "grid directive needs extents");
      }
    } else if (kind == "status") {
      for (std::size_t i = 1; i < words.size(); ++i) {
        out.status_arrays.push_back(to_lower(words[i]));
      }
    } else if (kind == "partition") {
      if (words.size() != 2) {
        diags.error({line_no, 1}, "partition directive needs one spec");
      } else {
        try {
          out.partition = partition::PartitionSpec::parse(words[1]);
        } catch (const std::exception& e) {
          diags.error({line_no, 1}, std::string("bad partition: ") + e.what());
        }
      }
    } else if (kind == "nprocs") {
      if (words.size() != 2) {
        diags.error({line_no, 1}, "nprocs directive needs one value");
      } else {
        out.nprocs = std::stoi(words[1]);
      }
    } else {
      diags.error({line_no, 1}, "unknown !$acfd directive '" + kind + "'");
    }
  }
  return out;
}

ir::FieldConfig Directives::field_config() const {
  ir::FieldConfig cfg;
  cfg.grid_rank = grid.rank();
  cfg.status_arrays = status_arrays;
  return cfg;
}

partition::PartitionSpec Directives::resolve_partition() const {
  if (partition) return *partition;
  return partition::find_best_partition(
      grid, nprocs, partition::HaloWidths::uniform(grid.rank(), 1));
}

void Directives::validate(DiagnosticEngine& diags) const {
  if (grid.rank() == 0) {
    diags.error({}, "missing !$acfd grid directive");
  }
  if (status_arrays.empty()) {
    diags.error({}, "missing !$acfd status directive");
  }
  if (partition && partition->rank() != grid.rank()) {
    diags.error({}, "partition rank does not match grid rank");
  }
}

}  // namespace autocfd::core

// User directives (the paper's Appendix 1): the minimum information
// Auto-CFD needs that it cannot infer from a sequential CFD source —
// the flow-field grid, the status arrays, and (optionally) the
// partition. Directives are comment lines embedded in the Fortran
// source, so the program stays compilable by any Fortran compiler:
//
//   !$acfd grid 99 41 13
//   !$acfd status v w q
//   !$acfd partition 4x1x1        (optional; best partition searched
//                                  for `nprocs` when omitted)
//   !$acfd nprocs 6               (used by the partition search)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "autocfd/ir/field_loop.hpp"
#include "autocfd/partition/grid.hpp"
#include "autocfd/support/diagnostics.hpp"

namespace autocfd::core {

struct Directives {
  partition::Grid grid;
  std::vector<std::string> status_arrays;
  std::optional<partition::PartitionSpec> partition;
  int nprocs = 1;

  /// Scans `source` for !$acfd comment lines.
  [[nodiscard]] static Directives extract(std::string_view source,
                                          DiagnosticEngine& diags);

  [[nodiscard]] ir::FieldConfig field_config() const;
  /// The partition to use: the explicit one, or the section-4.1-optimal
  /// search result for `nprocs` with a uniform unit halo.
  [[nodiscard]] partition::PartitionSpec resolve_partition() const;
  /// Validates completeness (grid set, status arrays named).
  void validate(DiagnosticEngine& diags) const;
};

}  // namespace autocfd::core

// The Auto-CFD pre-compiler pipeline (paper Figure 2):
//
//   sequential Fortran CFD source + directives
//     -> parse                         (fortran)
//     -> field-loop classification     (ir)
//     -> grid partitioning             (partition)
//     -> dependency analysis after
//        partitioning -> S_LDP         (depend)
//     -> self-dependence / mirror-
//        image decomposition           (depend)
//     -> upper-bound sync regions,
//        combining                     (sync)
//     -> SPMD restructuring            (codegen)
//     -> parallel source (printed) + executable program + report
#pragma once

#include <memory>
#include <string>

#include "autocfd/codegen/restructure.hpp"
#include "autocfd/codegen/spmd_runtime.hpp"
#include "autocfd/core/directives.hpp"
#include "autocfd/obs/obs.hpp"

namespace autocfd::core {

/// Summary the pre-compiler reports (Table 1's columns and more).
struct Report {
  int field_loops = 0;
  int dependence_pairs = 0;     // |S_LDP|
  int self_dependent_loops = 0;
  int mirror_image_loops = 0;   // mixed-direction self-dependences
  int pipelined_loops = 0;
  int syncs_before = 0;         // synchronization points before combining
  int syncs_after = 0;          // after combining
  double optimization_percent = 0.0;
};

/// Everything the pre-compiler produces. Owns the restructured AST;
/// run() executes it on the simulated cluster.
struct ParallelProgram {
  fortran::SourceFile file;  // restructured SPMD program
  codegen::SpmdMeta meta;
  Report report;
  std::string parallel_source;  // printed SPMD source with MPI calls

  /// Executes on the simulated cluster. Attach an event sink (e.g. a
  /// trace::TraceRecorder) to capture the run's full event stream;
  /// meta.tags resolves its message tags back to sync-plan sites.
  [[nodiscard]] codegen::SpmdRunResult run(const mp::MachineConfig& machine,
                                           mp::EventSink* sink = nullptr) {
    return codegen::run_spmd(file, meta, machine, sink);
  }

  /// Overload with the full runtime knobs (fault injection, watchdog).
  [[nodiscard]] codegen::SpmdRunResult run(
      const mp::MachineConfig& machine,
      const codegen::SpmdRunOptions& options) {
    return codegen::run_spmd(file, meta, machine, options);
  }
};

/// Runs the whole pre-compiler. Throws CompileError on any hard error.
/// `strategy` selects how synchronizations are combined (the ablation
/// benches compare Min against Pairwise and None).
/// With an observability context, every pipeline phase is timed into
/// `obs->profiler` (wall time + phase counters), every classification /
/// hoisting / combining decision lands in `obs->provenance`, and the
/// profile is exported into `obs->metrics` under "compile.*".
[[nodiscard]] std::unique_ptr<ParallelProgram> parallelize(
    std::string_view source, const Directives& directives,
    sync::CombineStrategy strategy = sync::CombineStrategy::Min,
    obs::ObsContext* obs = nullptr);

/// Directive extraction + parallelize in one call.
[[nodiscard]] std::unique_ptr<ParallelProgram> parallelize(
    std::string_view source, obs::ObsContext* obs = nullptr);

/// Analysis-only entry point: computes the report (sync counts etc.)
/// for one partition without restructuring. Used by the Table 1 bench
/// to sweep partitions cheaply.
[[nodiscard]] Report analyze_only(std::string_view source,
                                  const Directives& directives,
                                  obs::ObsContext* obs = nullptr);

}  // namespace autocfd::core

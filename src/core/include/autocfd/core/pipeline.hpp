// The Auto-CFD pre-compiler pipeline (paper Figure 2):
//
//   sequential Fortran CFD source + directives
//     -> parse                         (fortran)
//     -> field-loop classification     (ir)
//     -> grid partitioning             (partition)
//     -> dependency analysis after
//        partitioning -> S_LDP         (depend)
//     -> self-dependence / mirror-
//        image decomposition           (depend)
//     -> upper-bound sync regions,
//        combining                     (sync)
//     -> SPMD restructuring            (codegen)
//     -> parallel source (printed) + executable program + report
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "autocfd/codegen/restructure.hpp"
#include "autocfd/codegen/spmd_runtime.hpp"
#include "autocfd/core/directives.hpp"
#include "autocfd/depend/self_dep.hpp"
#include "autocfd/obs/obs.hpp"

namespace autocfd::core {

/// Summary the pre-compiler reports (Table 1's columns and more).
struct Report {
  int field_loops = 0;
  int dependence_pairs = 0;     // |S_LDP|
  int self_dependent_loops = 0;
  int mirror_image_loops = 0;   // mixed-direction self-dependences
  int pipelined_loops = 0;
  int syncs_before = 0;         // synchronization points before combining
  int syncs_after = 0;          // after combining
  double optimization_percent = 0.0;
  /// The combining strategy the counts above were produced under.
  sync::CombineStrategy strategy = sync::CombineStrategy::Min;
};

/// Decisions a profile-guided plan (src/plan) imposes on the pipeline
/// in place of its static heuristics. Every override is recorded in
/// the provenance log under the "planned" tag, so --explain shows what
/// the planner changed and why.
struct PlanOverrides {
  std::optional<partition::PartitionSpec> partition;
  std::optional<sync::CombineStrategy> strategy;
  /// Where the plan came from (plan-file path or "planner"), quoted in
  /// the provenance rationale.
  std::string origin;
  /// One human-readable line per planner decision ("chose 4x2 over
  /// 8x1; predicted 1.31x from measured comm matrix"), appended to the
  /// explain log verbatim.
  std::vector<std::string> decisions;
};

/// Everything the pre-compiler produces. Owns the restructured AST;
/// run() executes it on the simulated cluster.
struct ParallelProgram {
  fortran::SourceFile file;  // restructured SPMD program
  codegen::SpmdMeta meta;
  Report report;
  std::string parallel_source;  // printed SPMD source with MPI calls

  /// Executes on the simulated cluster. Attach an event sink (e.g. a
  /// trace::TraceRecorder) to capture the run's full event stream;
  /// meta.tags resolves its message tags back to sync-plan sites.
  [[nodiscard]] codegen::SpmdRunResult run(const mp::MachineConfig& machine,
                                           mp::EventSink* sink = nullptr) {
    return codegen::run_spmd(file, meta, machine, sink);
  }

  /// Overload with the full runtime knobs (fault injection, watchdog).
  [[nodiscard]] codegen::SpmdRunResult run(
      const mp::MachineConfig& machine,
      const codegen::SpmdRunOptions& options) {
    return codegen::run_spmd(file, meta, machine, options);
  }
};

/// Runs the whole pre-compiler. Throws CompileError on any hard error.
/// `strategy` selects how synchronizations are combined (the ablation
/// benches compare Min against Pairwise and None).
/// With an observability context, every pipeline phase is timed into
/// `obs->profiler` (wall time + phase counters), every classification /
/// hoisting / combining decision lands in `obs->provenance`, and the
/// profile is exported into `obs->metrics` under "compile.*".
/// With `plan`, the plan's partition/strategy replace the static
/// choices and its decision lines land in the provenance log.
[[nodiscard]] std::unique_ptr<ParallelProgram> parallelize(
    std::string_view source, const Directives& directives,
    sync::CombineStrategy strategy = sync::CombineStrategy::Min,
    obs::ObsContext* obs = nullptr, const PlanOverrides* plan = nullptr);

/// Directive extraction + parallelize in one call.
[[nodiscard]] std::unique_ptr<ParallelProgram> parallelize(
    std::string_view source, obs::ObsContext* obs = nullptr);

/// Analysis-only entry point: computes the report (sync counts etc.)
/// for one partition without restructuring. Used by the Table 1 bench
/// to sweep partitions cheaply.
[[nodiscard]] Report analyze_only(std::string_view source,
                                  const Directives& directives,
                                  obs::ObsContext* obs = nullptr);

/// analyze_only under an explicit combining strategy (the planner
/// scores Min/Pairwise/None candidates with this).
[[nodiscard]] Report analyze_only(std::string_view source,
                                  const Directives& directives,
                                  sync::CombineStrategy strategy,
                                  obs::ObsContext* obs);

/// What the planner's cost model needs to know about one candidate
/// configuration, extracted without restructuring or running: the
/// combined synchronization points with their aggregated halo content,
/// the ghost widths restructuring would allocate per status array
/// (they pad the slab payloads of every halo exchange), and the
/// self-dependent loops with their pipeline geometry.
struct PlanningFacts {
  Report report;
  partition::Grid grid;
  partition::PartitionSpec spec;
  sync::CombineStrategy strategy = sync::CombineStrategy::Min;

  /// Aggregated halo content of each combined synchronization point,
  /// in plan order (mirrors SyncPlan::halos_for).
  std::vector<std::vector<fortran::HaloSpec>> points;
  /// Per status array: union ghost widths (dependence pairs + regions
  /// + pipeline pre/flow halos), as codegen's ghost planner computes.
  std::map<std::string, partition::HaloWidths> ghosts;

  struct SelfDep {
    int line = 0;  // source line of the self-dependent loop
    std::string array;
    depend::SelfDepKind kind = depend::SelfDepKind::None;
    /// Cut dimensions whose flow dependences force pipelining (dim,
    /// dir); empty when the partition leaves the loop local.
    std::vector<std::pair<int, int>> pipeline_dims;
    partition::HaloWidths pre_halo;
    partition::HaloWidths flow_halo;
  };
  std::vector<SelfDep> self_deps;
};

/// Full analysis (classify -> depend -> sync plan) for one candidate
/// configuration. Throws CompileError when the candidate is infeasible
/// (e.g. a diagonal self-dependence across a cut dimension); the
/// planner treats that as "candidate rejected".
[[nodiscard]] PlanningFacts analyze_for_plan(
    std::string_view source, const Directives& directives,
    sync::CombineStrategy strategy = sync::CombineStrategy::Min,
    obs::ObsContext* obs = nullptr);

}  // namespace autocfd::core

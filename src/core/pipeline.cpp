#include "autocfd/core/pipeline.hpp"

#include "autocfd/fortran/parser.hpp"
#include "autocfd/fortran/printer.hpp"

namespace autocfd::core {

namespace {

using obs::ObsContext;
using PhaseTimer = obs::PassProfiler::PhaseTimer;

struct Analysis {
  std::map<std::string, std::vector<ir::FieldLoop>> loops_by_unit;
  depend::ProgramTrace trace;
  depend::DependenceSet deps;
  sync::InlinedProgram prog;
  sync::SyncPlan plan;
  partition::PartitionSpec spec;

  static Analysis run(fortran::SourceFile& file, const Directives& dirs,
                      DiagnosticEngine& diags,
                      sync::CombineStrategy strategy =
                          sync::CombineStrategy::Min,
                      ObsContext* obs = nullptr) {
    auto* profiler = ObsContext::profiler_of(obs);
    auto* prov = ObsContext::provenance_of(obs);

    Analysis a;
    {
      PhaseTimer t(profiler, "partition");
      a.spec = dirs.resolve_partition();
      t.count("tasks", a.spec.num_tasks());
      if (prov != nullptr) {
        prov->add(obs::DecisionKind::PartitionChoice, SourceLoc{},
                  "grid partition", a.spec.str(),
                  dirs.partition.has_value()
                      ? "taken verbatim from the partition directive"
                      : "balance-optimal partition for the directive's "
                        "processor count");
      }
    }
    const auto cfg = dirs.field_config();
    {
      PhaseTimer t(profiler, "classify");
      for (const auto& unit : file.units) {
        a.loops_by_unit[unit.name] =
            ir::analyze_field_loops(unit, cfg, diags, prov);
        for (const auto& fl : a.loops_by_unit[unit.name]) {
          t.count("loops");
          for (const auto& [name, info] : fl.arrays) {
            t.count(std::string("class_") +
                    std::string(ir::loop_type_name(fl.type_for(name))));
          }
        }
      }
    }
    {
      PhaseTimer t(profiler, "depend");
      depend::DependenceStats stats;
      a.trace = depend::ProgramTrace::build(file, a.loops_by_unit, diags);
      a.deps = depend::analyze_dependences(a.trace, a.spec, diags, &stats);
      t.count("sites", static_cast<double>(a.trace.sites().size()));
      t.count("edges_tested", stats.edges_tested);
      t.count("pairs_admitted", stats.pairs_admitted);
      t.count("halo_carrying", stats.halo_carrying);
    }
    {
      PhaseTimer t(profiler, "inline");
      a.prog = sync::InlinedProgram::build(file, a.trace, a.spec, diags);
      t.count("slots", static_cast<double>(a.prog.slots().size()));
    }
    a.plan = sync::plan_synchronization(a.prog, a.deps, a.spec, strategy, obs);
    for (const auto& pp : a.plan.pipelines) {
      if (pp.plan.unsupported_diagonal) {
        diags.error(pp.site->loop->loop->loc,
                    "self-dependent loop on '" + pp.plan.array +
                        "' has diagonal dependences across a cut "
                        "dimension; mirror-image decomposition does not "
                        "apply (choose a partition that does not cut "
                        "those dimensions)");
      }
    }
    return a;
  }

  Report report() const {
    Report r;
    for (const auto& [unit, loops] : loops_by_unit) {
      r.field_loops += static_cast<int>(loops.size());
    }
    r.dependence_pairs = static_cast<int>(deps.pairs.size());
    r.self_dependent_loops = static_cast<int>(deps.self_pairs().size());
    for (const auto& pp : plan.pipelines) {
      ++r.pipelined_loops;
      if (pp.plan.kind == depend::SelfDepKind::Mixed) {
        ++r.mirror_image_loops;
      }
    }
    r.syncs_before = plan.syncs_before();
    r.syncs_after = plan.syncs_after();
    r.optimization_percent = plan.optimization_percent();
    return r;
  }
};

}  // namespace

std::unique_ptr<ParallelProgram> parallelize(std::string_view source,
                                             const Directives& directives,
                                             sync::CombineStrategy strategy,
                                             obs::ObsContext* obs) {
  auto* profiler = ObsContext::profiler_of(obs);
  obs::PassProfiler::TotalTimer total(profiler);

  DiagnosticEngine diags;
  {
    PhaseTimer t(profiler, "directives");
    directives.validate(diags);
  }
  throw_if_errors(diags, "directives");

  auto program = std::make_unique<ParallelProgram>();
  {
    PhaseTimer t(profiler, "parse");
    program->file = fortran::parse_source(source, diags);
    t.count("units", static_cast<double>(program->file.units.size()));
  }
  throw_if_errors(diags, "parse");

  auto analysis =
      Analysis::run(program->file, directives, diags, strategy, obs);
  throw_if_errors(diags, "analysis");
  program->report = analysis.report();

  codegen::SpmdOptions opts;
  opts.field = directives.field_config();
  opts.grid = directives.grid;
  opts.spec = analysis.spec;
  {
    PhaseTimer t(profiler, "restructure");
    program->meta =
        codegen::restructure(program->file, opts, analysis.loops_by_unit,
                             analysis.deps, analysis.plan, analysis.prog,
                             diags);
    t.count("sync_points", program->report.syncs_after);
    t.count("pipelined_loops", program->report.pipelined_loops);
  }
  throw_if_errors(diags, "restructure");

  {
    PhaseTimer t(profiler, "print");
    program->parallel_source = fortran::print_file(program->file);
    t.count("bytes", static_cast<double>(program->parallel_source.size()));
  }
  return program;
}

std::unique_ptr<ParallelProgram> parallelize(std::string_view source,
                                             obs::ObsContext* obs) {
  DiagnosticEngine diags;
  auto dirs = Directives::extract(source, diags);
  throw_if_errors(diags, "directive extraction");
  return parallelize(source, dirs, sync::CombineStrategy::Min, obs);
}

Report analyze_only(std::string_view source, const Directives& directives,
                    obs::ObsContext* obs) {
  auto* profiler = ObsContext::profiler_of(obs);
  obs::PassProfiler::TotalTimer total(profiler);

  DiagnosticEngine diags;
  {
    PhaseTimer t(profiler, "directives");
    directives.validate(diags);
  }
  throw_if_errors(diags, "directives");
  fortran::SourceFile file;
  {
    PhaseTimer t(profiler, "parse");
    file = fortran::parse_source(source, diags);
    t.count("units", static_cast<double>(file.units.size()));
  }
  throw_if_errors(diags, "parse");
  auto analysis = Analysis::run(file, directives, diags,
                                sync::CombineStrategy::Min, obs);
  throw_if_errors(diags, "analysis");
  return analysis.report();
}

}  // namespace autocfd::core

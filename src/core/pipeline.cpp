#include "autocfd/core/pipeline.hpp"

#include "autocfd/fortran/parser.hpp"
#include "autocfd/fortran/printer.hpp"

namespace autocfd::core {

namespace {

struct Analysis {
  std::map<std::string, std::vector<ir::FieldLoop>> loops_by_unit;
  depend::ProgramTrace trace;
  depend::DependenceSet deps;
  sync::InlinedProgram prog;
  sync::SyncPlan plan;
  partition::PartitionSpec spec;

  static Analysis run(fortran::SourceFile& file, const Directives& dirs,
                      DiagnosticEngine& diags,
                      sync::CombineStrategy strategy =
                          sync::CombineStrategy::Min) {
    Analysis a;
    a.spec = dirs.resolve_partition();
    const auto cfg = dirs.field_config();
    for (const auto& unit : file.units) {
      a.loops_by_unit[unit.name] =
          ir::analyze_field_loops(unit, cfg, diags);
    }
    a.trace = depend::ProgramTrace::build(file, a.loops_by_unit, diags);
    a.deps = depend::analyze_dependences(a.trace, a.spec, diags);
    a.prog = sync::InlinedProgram::build(file, a.trace, a.spec, diags);
    a.plan = sync::plan_synchronization(a.prog, a.deps, a.spec, strategy);
    for (const auto& pp : a.plan.pipelines) {
      if (pp.plan.unsupported_diagonal) {
        diags.error(pp.site->loop->loop->loc,
                    "self-dependent loop on '" + pp.plan.array +
                        "' has diagonal dependences across a cut "
                        "dimension; mirror-image decomposition does not "
                        "apply (choose a partition that does not cut "
                        "those dimensions)");
      }
    }
    return a;
  }

  Report report() const {
    Report r;
    for (const auto& [unit, loops] : loops_by_unit) {
      r.field_loops += static_cast<int>(loops.size());
    }
    r.dependence_pairs = static_cast<int>(deps.pairs.size());
    r.self_dependent_loops = static_cast<int>(deps.self_pairs().size());
    for (const auto& pp : plan.pipelines) {
      ++r.pipelined_loops;
      if (pp.plan.kind == depend::SelfDepKind::Mixed) {
        ++r.mirror_image_loops;
      }
    }
    r.syncs_before = plan.syncs_before();
    r.syncs_after = plan.syncs_after();
    r.optimization_percent = plan.optimization_percent();
    return r;
  }
};

}  // namespace

std::unique_ptr<ParallelProgram> parallelize(std::string_view source,
                                             const Directives& directives,
                                             sync::CombineStrategy strategy) {
  DiagnosticEngine diags;
  directives.validate(diags);
  throw_if_errors(diags, "directives");

  auto program = std::make_unique<ParallelProgram>();
  program->file = fortran::parse_source(source, diags);
  throw_if_errors(diags, "parse");

  auto analysis = Analysis::run(program->file, directives, diags, strategy);
  throw_if_errors(diags, "analysis");
  program->report = analysis.report();

  codegen::SpmdOptions opts;
  opts.field = directives.field_config();
  opts.grid = directives.grid;
  opts.spec = analysis.spec;
  program->meta =
      codegen::restructure(program->file, opts, analysis.loops_by_unit,
                           analysis.deps, analysis.plan, analysis.prog, diags);
  throw_if_errors(diags, "restructure");

  program->parallel_source = fortran::print_file(program->file);
  return program;
}

std::unique_ptr<ParallelProgram> parallelize(std::string_view source) {
  DiagnosticEngine diags;
  auto dirs = Directives::extract(source, diags);
  throw_if_errors(diags, "directive extraction");
  return parallelize(source, dirs);
}

Report analyze_only(std::string_view source, const Directives& directives) {
  DiagnosticEngine diags;
  directives.validate(diags);
  throw_if_errors(diags, "directives");
  auto file = fortran::parse_source(source, diags);
  throw_if_errors(diags, "parse");
  auto analysis = Analysis::run(file, directives, diags);
  throw_if_errors(diags, "analysis");
  return analysis.report();
}

}  // namespace autocfd::core

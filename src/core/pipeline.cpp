#include "autocfd/core/pipeline.hpp"

#include "autocfd/fortran/parser.hpp"
#include "autocfd/fortran/printer.hpp"

namespace autocfd::core {

namespace {

using obs::ObsContext;
using PhaseTimer = obs::PassProfiler::PhaseTimer;

struct Analysis {
  std::map<std::string, std::vector<ir::FieldLoop>> loops_by_unit;
  depend::ProgramTrace trace;
  depend::DependenceSet deps;
  sync::InlinedProgram prog;
  sync::SyncPlan plan;
  partition::PartitionSpec spec;

  sync::CombineStrategy strategy = sync::CombineStrategy::Min;

  static Analysis run(fortran::SourceFile& file, const Directives& dirs,
                      DiagnosticEngine& diags,
                      sync::CombineStrategy strategy =
                          sync::CombineStrategy::Min,
                      ObsContext* obs = nullptr,
                      const PlanOverrides* overrides = nullptr) {
    auto* profiler = ObsContext::profiler_of(obs);
    auto* prov = ObsContext::provenance_of(obs);

    const std::string plan_origin =
        overrides != nullptr && !overrides->origin.empty() ? overrides->origin
                                                           : "plan";
    if (overrides != nullptr && overrides->strategy.has_value()) {
      strategy = *overrides->strategy;
    }

    Analysis a;
    a.strategy = strategy;
    {
      PhaseTimer t(profiler, "partition");
      if (overrides != nullptr && overrides->partition.has_value()) {
        a.spec = *overrides->partition;
      } else {
        a.spec = dirs.resolve_partition();
      }
      t.count("tasks", a.spec.num_tasks());
      if (prov != nullptr) {
        const char* rationale =
            overrides != nullptr && overrides->partition.has_value()
                ? nullptr
                : dirs.partition.has_value()
                      ? "taken verbatim from the partition directive"
                      : "balance-optimal partition for the directive's "
                        "processor count";
        prov->add(obs::DecisionKind::PartitionChoice, SourceLoc{},
                  "grid partition", a.spec.str(),
                  rationale != nullptr
                      ? std::string(rationale)
                      : "planned: imposed by " + plan_origin);
      }
    }
    if (prov != nullptr && overrides != nullptr) {
      if (overrides->strategy.has_value()) {
        prov->add(obs::DecisionKind::PlannerOverride, SourceLoc{},
                  "combine strategy",
                  sync::combine_strategy_name(*overrides->strategy),
                  "planned: imposed by " + plan_origin);
      }
      for (const auto& line : overrides->decisions) {
        prov->add(obs::DecisionKind::PlannerOverride, SourceLoc{}, "planner",
                  line, "from " + plan_origin);
      }
    }
    const auto cfg = dirs.field_config();
    {
      PhaseTimer t(profiler, "classify");
      for (const auto& unit : file.units) {
        a.loops_by_unit[unit.name] =
            ir::analyze_field_loops(unit, cfg, diags, prov);
        for (const auto& fl : a.loops_by_unit[unit.name]) {
          t.count("loops");
          for (const auto& [name, info] : fl.arrays) {
            t.count(std::string("class_") +
                    std::string(ir::loop_type_name(fl.type_for(name))));
          }
        }
      }
    }
    {
      PhaseTimer t(profiler, "depend");
      depend::DependenceStats stats;
      a.trace = depend::ProgramTrace::build(file, a.loops_by_unit, diags);
      a.deps = depend::analyze_dependences(a.trace, a.spec, diags, &stats);
      t.count("sites", static_cast<double>(a.trace.sites().size()));
      t.count("edges_tested", stats.edges_tested);
      t.count("pairs_admitted", stats.pairs_admitted);
      t.count("halo_carrying", stats.halo_carrying);
    }
    {
      PhaseTimer t(profiler, "inline");
      a.prog = sync::InlinedProgram::build(file, a.trace, a.spec, diags);
      t.count("slots", static_cast<double>(a.prog.slots().size()));
    }
    a.plan = sync::plan_synchronization(a.prog, a.deps, a.spec, strategy, obs);
    for (const auto& pp : a.plan.pipelines) {
      if (pp.plan.unsupported_diagonal) {
        diags.error(pp.site->loop->loop->loc,
                    "self-dependent loop on '" + pp.plan.array +
                        "' has diagonal dependences across a cut "
                        "dimension; mirror-image decomposition does not "
                        "apply (choose a partition that does not cut "
                        "those dimensions)");
      }
    }
    return a;
  }

  Report report() const {
    Report r;
    for (const auto& [unit, loops] : loops_by_unit) {
      r.field_loops += static_cast<int>(loops.size());
    }
    r.dependence_pairs = static_cast<int>(deps.pairs.size());
    r.self_dependent_loops = static_cast<int>(deps.self_pairs().size());
    for (const auto& pp : plan.pipelines) {
      ++r.pipelined_loops;
      if (pp.plan.kind == depend::SelfDepKind::Mixed) {
        ++r.mirror_image_loops;
      }
    }
    r.syncs_before = plan.syncs_before();
    r.syncs_after = plan.syncs_after();
    r.optimization_percent = plan.optimization_percent();
    r.strategy = strategy;
    return r;
  }
};

}  // namespace

std::unique_ptr<ParallelProgram> parallelize(std::string_view source,
                                             const Directives& directives,
                                             sync::CombineStrategy strategy,
                                             obs::ObsContext* obs,
                                             const PlanOverrides* plan) {
  auto* profiler = ObsContext::profiler_of(obs);
  obs::PassProfiler::TotalTimer total(profiler);

  DiagnosticEngine diags;
  {
    PhaseTimer t(profiler, "directives");
    directives.validate(diags);
  }
  throw_if_errors(diags, "directives");

  auto program = std::make_unique<ParallelProgram>();
  {
    PhaseTimer t(profiler, "parse");
    program->file = fortran::parse_source(source, diags);
    t.count("units", static_cast<double>(program->file.units.size()));
  }
  throw_if_errors(diags, "parse");

  auto analysis =
      Analysis::run(program->file, directives, diags, strategy, obs, plan);
  throw_if_errors(diags, "analysis");
  program->report = analysis.report();

  codegen::SpmdOptions opts;
  opts.field = directives.field_config();
  opts.grid = directives.grid;
  opts.spec = analysis.spec;
  {
    PhaseTimer t(profiler, "restructure");
    program->meta =
        codegen::restructure(program->file, opts, analysis.loops_by_unit,
                             analysis.deps, analysis.plan, analysis.prog,
                             diags);
    t.count("sync_points", program->report.syncs_after);
    t.count("pipelined_loops", program->report.pipelined_loops);
  }
  throw_if_errors(diags, "restructure");

  {
    PhaseTimer t(profiler, "print");
    program->parallel_source = fortran::print_file(program->file);
    t.count("bytes", static_cast<double>(program->parallel_source.size()));
  }
  return program;
}

std::unique_ptr<ParallelProgram> parallelize(std::string_view source,
                                             obs::ObsContext* obs) {
  DiagnosticEngine diags;
  auto dirs = Directives::extract(source, diags);
  throw_if_errors(diags, "directive extraction");
  return parallelize(source, dirs, sync::CombineStrategy::Min, obs);
}

namespace {

/// Shared front half of the analysis-only entry points: validate the
/// directives, parse, and run the analysis pipeline.
Analysis analyze_source(std::string_view source, const Directives& directives,
                        sync::CombineStrategy strategy, obs::ObsContext* obs,
                        fortran::SourceFile& file) {
  auto* profiler = ObsContext::profiler_of(obs);
  obs::PassProfiler::TotalTimer total(profiler);

  DiagnosticEngine diags;
  {
    PhaseTimer t(profiler, "directives");
    directives.validate(diags);
  }
  throw_if_errors(diags, "directives");
  {
    PhaseTimer t(profiler, "parse");
    file = fortran::parse_source(source, diags);
    t.count("units", static_cast<double>(file.units.size()));
  }
  throw_if_errors(diags, "parse");
  auto analysis = Analysis::run(file, directives, diags, strategy, obs);
  throw_if_errors(diags, "analysis");
  return analysis;
}

}  // namespace

Report analyze_only(std::string_view source, const Directives& directives,
                    obs::ObsContext* obs) {
  return analyze_only(source, directives, sync::CombineStrategy::Min, obs);
}

Report analyze_only(std::string_view source, const Directives& directives,
                    sync::CombineStrategy strategy, obs::ObsContext* obs) {
  fortran::SourceFile file;
  return analyze_source(source, directives, strategy, obs, file).report();
}

PlanningFacts analyze_for_plan(std::string_view source,
                               const Directives& directives,
                               sync::CombineStrategy strategy,
                               obs::ObsContext* obs) {
  fortran::SourceFile file;
  auto analysis = analyze_source(source, directives, strategy, obs, file);

  PlanningFacts facts;
  facts.report = analysis.report();
  facts.grid = directives.grid;
  facts.spec = analysis.spec;
  facts.strategy = analysis.strategy;

  facts.points.reserve(analysis.plan.points.size());
  for (const auto& point : analysis.plan.points) {
    facts.points.push_back(sync::SyncPlan::halos_for(point));
  }

  // Mirror codegen's ghost planner: the slab payload of every halo
  // exchange spans the full local allocation (ghosts included) in the
  // non-exchange dimensions, so the cost model needs these widths.
  const int rank = directives.grid.rank();
  for (const auto& a : directives.field_config().status_arrays) {
    facts.ghosts[a] = partition::HaloWidths::uniform(rank, 0);
  }
  const auto add_ghost = [&](const std::string& array,
                             const partition::HaloWidths& h) {
    auto it = facts.ghosts.find(array);
    if (it == facts.ghosts.end()) return;
    it->second = partition::HaloWidths::merge(it->second, h);
  };
  for (const auto& p : analysis.deps.pairs) add_ghost(p.array, p.halo);
  for (const auto& r : analysis.plan.regions) {
    add_ghost(r.pair->array, r.pair->halo);
  }
  for (const auto& pp : analysis.plan.pipelines) {
    add_ghost(pp.plan.array, pp.plan.flow_halo);
    add_ghost(pp.plan.array, pp.plan.pre_halo);
  }

  facts.self_deps.reserve(analysis.plan.pipelines.size());
  for (const auto& pp : analysis.plan.pipelines) {
    PlanningFacts::SelfDep sd;
    sd.line = pp.site->loop->loop->loc.line;
    sd.array = pp.plan.array;
    sd.kind = pp.plan.kind;
    sd.pipeline_dims = pp.plan.pipeline_dims;
    sd.pre_halo = pp.plan.pre_halo;
    sd.flow_halo = pp.plan.flow_halo;
    facts.self_deps.push_back(std::move(sd));
  }
  return facts;
}

}  // namespace autocfd::core

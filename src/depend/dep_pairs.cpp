#include "autocfd/depend/dep_pairs.hpp"

#include <algorithm>
#include <set>

namespace autocfd::depend {

using fortran::Stmt;
using fortran::StmtKind;

namespace {

struct TraceBuilder {
  const fortran::SourceFile* file;
  const std::map<std::string, std::vector<ir::FieldLoop>>* loops_by_unit;
  DiagnosticEngine* diags;
  std::vector<TraceSite>* out;
  std::vector<const Stmt*> context;
  std::set<std::string> visiting;  // cycle guard (recursion is an error
                                   // reported by CallGraph already)

  const ir::FieldLoop* field_loop_for(const fortran::ProgramUnit& unit,
                                      const Stmt& stmt) const {
    const auto it = loops_by_unit->find(unit.name);
    if (it == loops_by_unit->end()) return nullptr;
    for (const auto& fl : it->second) {
      if (fl.loop == &stmt) return &fl;
    }
    return nullptr;
  }

  void walk(const fortran::ProgramUnit& unit, const fortran::StmtList& stmts) {
    for (const auto& s : stmts) {
      switch (s->kind) {
        case StmtKind::Do: {
          if (const auto* fl = field_loop_for(unit, *s)) {
            TraceSite site;
            site.seq = static_cast<int>(out->size());
            site.loop = fl;
            site.unit = &unit;
            site.context = context;
            out->push_back(std::move(site));
            // Calls inside a field nest are outside the subset: the
            // restructurer cannot split a field sweep around a call.
            fortran::for_each_stmt(s->body, [&](const Stmt& inner, int) {
              if (inner.kind == StmtKind::Call) {
                diags->error(inner.loc,
                             "subroutine call inside a field loop is not "
                             "supported by the pre-compiler");
              }
            });
            break;  // the nest is one trace site; don't descend
          }
          context.push_back(s.get());
          walk(unit, s->body);
          context.pop_back();
          break;
        }
        case StmtKind::Call: {
          const auto* callee = file->find_unit(s->callee);
          if (!callee) break;  // reported by CallGraph
          if (visiting.contains(callee->name)) break;  // recursion guard
          visiting.insert(callee->name);
          context.push_back(s.get());
          walk(*callee, callee->body);
          context.pop_back();
          visiting.erase(callee->name);
          break;
        }
        case StmtKind::If:
          walk(unit, s->body);
          walk(unit, s->else_body);
          break;
        default:
          break;
      }
    }
  }
};

}  // namespace

ProgramTrace ProgramTrace::build(
    const fortran::SourceFile& file,
    const std::map<std::string, std::vector<ir::FieldLoop>>& loops_by_unit,
    DiagnosticEngine& diags) {
  ProgramTrace trace;
  const auto* main = file.main_program();
  if (!main) {
    diags.error({}, "source file has no main program");
    return trace;
  }
  TraceBuilder b{&file, &loops_by_unit, &diags, &trace.sites_, {}, {}};
  b.visiting.insert(main->name);
  b.walk(*main, main->body);
  return trace;
}

const Stmt* ProgramTrace::common_loop(const TraceSite& a, const TraceSite& b) {
  const Stmt* innermost = nullptr;
  const auto n = std::min(a.context.size(), b.context.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.context[i] != b.context[i]) break;
    if (a.context[i]->kind == StmtKind::Do) innermost = a.context[i];
  }
  return innermost;
}

std::vector<const LoopDependence*> DependenceSet::sync_pairs() const {
  std::vector<const LoopDependence*> out;
  for (const auto& p : pairs) {
    if (!p.self && p.needs_comm()) out.push_back(&p);
  }
  return out;
}

std::vector<const LoopDependence*> DependenceSet::self_pairs() const {
  std::vector<const LoopDependence*> out;
  for (const auto& p : pairs) {
    if (p.self && p.needs_comm()) out.push_back(&p);
  }
  return out;
}

partition::HaloWidths halo_for_reads(const ir::FieldLoop& loop,
                                     const ir::ArrayInfo& info,
                                     const partition::PartitionSpec& spec) {
  partition::HaloWidths halo =
      partition::HaloWidths::uniform(spec.rank(), 0);
  for (const auto& read : info.reads) {
    const int n_status =
        std::min(static_cast<int>(read.subs.size()), spec.rank());
    for (int d = 0; d < n_status; ++d) {
      if (spec.cuts[static_cast<std::size_t>(d)] <= 1) continue;  // uncut
      const auto& sub = read.subs[static_cast<std::size_t>(d)];
      const auto du = static_cast<std::size_t>(d);
      switch (sub.kind) {
        case ir::SubscriptPattern::Kind::LoopIndex: {
          // The subscript's variable must scan this same dimension;
          // var_dims guarantees it by construction.
          if (sub.offset < 0) {
            halo.lo[du] =
                std::max(halo.lo[du], static_cast<int>(-sub.offset));
          } else if (sub.offset > 0) {
            halo.hi[du] = std::max(halo.hi[du], static_cast<int>(sub.offset));
          }
          break;
        }
        case ir::SubscriptPattern::Kind::Invariant:
          // A fixed index read by every task (boundary data). Within
          // the supported programs such reads stay inside the owning
          // block; no neighbor halo is implied.
          break;
        case ir::SubscriptPattern::Kind::Complex:
          // Conservative: one layer each way.
          halo.lo[du] = std::max(halo.lo[du], 1);
          halo.hi[du] = std::max(halo.hi[du], 1);
          break;
      }
    }
  }
  (void)loop;
  return halo;
}

DependenceSet analyze_dependences(const ProgramTrace& trace,
                                  const partition::PartitionSpec& spec,
                                  DiagnosticEngine& diags,
                                  DependenceStats* stats) {
  DependenceSet set;
  DependenceStats local;
  if (stats == nullptr) stats = &local;
  const auto& sites = trace.sites();

  // Gather, per array, the writer and reader site indices.
  std::map<std::string, std::vector<int>> writers;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (const auto& [name, info] : sites[i].loop->arrays) {
      if (info.assigned()) writers[name].push_back(static_cast<int>(i));
    }
  }

  bool warned_complex = false;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto& reader = sites[i];
    for (const auto& [name, info] : reader.loop->arrays) {
      if (!info.referenced()) continue;
      const auto halo = halo_for_reads(*reader.loop, info, spec);
      if (!warned_complex) {
        for (const auto& read : info.reads) {
          for (const auto& sub : read.subs) {
            if (sub.kind == ir::SubscriptPattern::Kind::Complex) {
              diags.warning(read.stmt->loc,
                            "complex subscript: assuming dependency "
                            "distance 1 in each cut dimension");
              warned_complex = true;
            }
          }
        }
      }

      LoopDependence base;
      base.reader = &reader;
      base.array = name;
      base.halo = halo;

      if (info.assigned()) {
        // Same loop writes and reads the array: self-dependent
        // (resolved by wavefront / mirror-image decomposition). Other
        // writers may still feed this reader's first execution, so do
        // not stop here.
        ++stats->edges_tested;
        LoopDependence self = base;
        self.writer = &reader;
        self.self = true;
        set.pairs.push_back(std::move(self));
      }

      const auto wit = writers.find(name);
      if (wit == writers.end()) continue;  // array never written: no dep
      const int self_idx = static_cast<int>(i);

      // (1) Nearest preceding writer in the frame trace: feeds the
      // reader's current-iteration (and first) execution.
      int prev = -1;
      for (const int w : wit->second) {
        if (w < self_idx) prev = w;
      }
      if (prev >= 0) {
        ++stats->edges_tested;
        LoopDependence dep = base;
        dep.writer = &sites[static_cast<std::size_t>(prev)];
        set.pairs.push_back(std::move(dep));
      }

      // (2) Wrap-around: the last writer that follows the reader inside
      // a common loop feeds the *next* iteration's read — unless a
      // preceding writer inside that same loop kills the back-edge
      // value first.
      int wrapw = -1;
      const fortran::Stmt* wrap_loop = nullptr;
      for (const int w : wit->second) {
        if (w <= self_idx) continue;
        if (w == self_idx) continue;
        const auto* loop =
            ProgramTrace::common_loop(sites[static_cast<std::size_t>(w)],
                                      reader);
        if (loop) {
          wrapw = w;
          wrap_loop = loop;
        }
      }
      if (wrapw >= 0) {
        ++stats->edges_tested;
        bool killed = false;
        if (prev >= 0) {
          const auto& p = sites[static_cast<std::size_t>(prev)];
          killed = std::find(p.context.begin(), p.context.end(),
                             wrap_loop) != p.context.end();
        }
        if (!killed) {
          LoopDependence dep = base;
          dep.writer = &sites[static_cast<std::size_t>(wrapw)];
          dep.wraps = true;
          dep.wrap_loop = wrap_loop;
          set.pairs.push_back(std::move(dep));
        }
      }
    }
  }
  stats->pairs_admitted = static_cast<int>(set.pairs.size());
  for (const auto& p : set.pairs) {
    if (p.needs_comm()) ++stats->halo_carrying;
  }
  return set;
}

}  // namespace autocfd::depend

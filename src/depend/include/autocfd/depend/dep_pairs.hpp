// Dependency analysis *after partitioning* (paper section 4.2).
//
// Once the grid is partitioned, only array accesses whose stencil
// offsets cross a cut dimension generate communication. This module
// linearizes one frame of the program (inlining subroutine calls —
// recursion is outside the subset), pairs every reading field loop with
// its nearest preceding writer per status array, and computes the halo
// each pair needs under a concrete partition. The result is the
// paper's S_LDP set: field-loop dependence pairs with dependent arrays
// and dependency distances.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "autocfd/fortran/ast.hpp"
#include "autocfd/ir/call_graph.hpp"
#include "autocfd/ir/field_loop.hpp"
#include "autocfd/partition/comm_model.hpp"
#include "autocfd/support/diagnostics.hpp"

namespace autocfd::depend {

/// One occurrence of a field loop in the inlined one-frame trace.
struct TraceSite {
  int seq = 0;                           // position in execution order
  const ir::FieldLoop* loop = nullptr;   // the analyzed nest
  const fortran::ProgramUnit* unit = nullptr;
  /// Enclosing context from main, outermost first: Do statements and
  /// Call statements interleaved as encountered. Two sites wrap around
  /// a loop iff that Do is in their common context prefix.
  std::vector<const fortran::Stmt*> context;
};

/// The inlined one-frame execution trace of all field loops.
class ProgramTrace {
 public:
  static ProgramTrace build(
      const fortran::SourceFile& file,
      const std::map<std::string, std::vector<ir::FieldLoop>>& loops_by_unit,
      DiagnosticEngine& diags);

  [[nodiscard]] const std::vector<TraceSite>& sites() const { return sites_; }

  /// Innermost Do statement enclosing both sites (by common context
  /// prefix), or null if none. Used for wrap-around dependences.
  [[nodiscard]] static const fortran::Stmt* common_loop(const TraceSite& a,
                                                        const TraceSite& b);

 private:
  std::vector<TraceSite> sites_;
};

/// One element of S_LDP: a dependent field-loop pair with the array and
/// the halo (dependency distances per dimension) the reader needs.
struct LoopDependence {
  const TraceSite* writer = nullptr;
  const TraceSite* reader = nullptr;
  std::string array;
  partition::HaloWidths halo;  // restricted to cut dimensions
  /// Reader precedes writer in the frame; the dependence crosses the
  /// back edge of `wrap_loop` (data flows into the *next* iteration).
  bool wraps = false;
  const fortran::Stmt* wrap_loop = nullptr;
  /// Writer and reader are the same loop (self-dependent field loop,
  /// Figure 3); resolved by wavefront / mirror-image, not by a sync.
  bool self = false;

  [[nodiscard]] bool needs_comm() const { return halo.any(); }
};

struct DependenceSet {
  std::vector<LoopDependence> pairs;

  /// Pairs that actually require a synchronization point under the
  /// analyzed partition (non-self, halo-carrying). This count is the
  /// paper's "number of synchronizations before optimization".
  [[nodiscard]] std::vector<const LoopDependence*> sync_pairs() const;
  [[nodiscard]] std::vector<const LoopDependence*> self_pairs() const;
};

/// Halo a set of reads needs under `spec`: offsets along cut dimensions
/// only. `Complex` subscripts conservatively request one layer each way
/// (with a warning recorded once by the caller).
[[nodiscard]] partition::HaloWidths halo_for_reads(
    const ir::FieldLoop& loop, const ir::ArrayInfo& info,
    const partition::PartitionSpec& spec);

/// Observability counters of one analyze_dependences run: how many
/// candidate dependence edges the pairing examined vs how many made it
/// into S_LDP (and how many of those actually carry communication).
struct DependenceStats {
  int edges_tested = 0;    // candidate (writer, reader, array) edges
  int pairs_admitted = 0;  // LoopDependence records emitted
  int halo_carrying = 0;   // admitted pairs with a nonzero halo
};

/// Runs the full S_LDP construction for one partition.
[[nodiscard]] DependenceSet analyze_dependences(
    const ProgramTrace& trace, const partition::PartitionSpec& spec,
    DiagnosticEngine& diags, DependenceStats* stats = nullptr);

}  // namespace autocfd::depend

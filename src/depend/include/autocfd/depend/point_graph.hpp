// Point-level dependence graphs over a small 2-D iteration space —
// the structures drawn in the paper's Figures 3 and 4.
//
// Used to demonstrate and test mirror-image decomposition explicitly:
// the full graph of a Figure-3(b) loop carries dependences both along
// and against lexicographic order; decomposing by access direction
// yields two sub-graphs, each acyclic and schedulable as a wavefront.
#pragma once

#include <cstdint>
#include <vector>

namespace autocfd::depend {

enum class EdgeDir {
  Forward,   // source precedes sink in lexicographic order (flow)
  Backward,  // source follows sink (old-value / anti access)
};

struct PointEdge {
  int src = 0;  // linear node id: value producer / accessed point
  int dst = 0;  // consumer
  EdgeDir dir = EdgeDir::Forward;
};

class PointDepGraph {
 public:
  /// Builds the dependence graph of a self-dependent loop
  /// `v(i,j) = f(v(i+o1x,j+o1y), ...)` over an ni x nj iteration space
  /// scanned in lexicographic order.
  static PointDepGraph build(int ni, int nj,
                             const std::vector<std::pair<int, int>>& offsets);

  [[nodiscard]] int num_nodes() const { return ni_ * nj_; }
  [[nodiscard]] int node(int i, int j) const { return i * nj_ + j; }
  [[nodiscard]] const std::vector<PointEdge>& edges() const { return edges_; }

  /// True if the graph (viewed with edges as ordering constraints
  /// src-before-dst) has a cycle.
  [[nodiscard]] bool has_cycle() const;

  /// Mirror-image decomposition: split edges by access direction.
  struct Decomposition;
  [[nodiscard]] Decomposition mirror_decompose() const;

  /// Wavefront schedule: level of each node = longest dependence chain
  /// reaching it (all nodes of a level run in parallel). Requires an
  /// acyclic graph; returns empty on cycles.
  [[nodiscard]] std::vector<int> wavefront_levels() const;
  /// Number of parallel steps of the wavefront schedule (0 on cycles).
  [[nodiscard]] int wavefront_depth() const;

  [[nodiscard]] int ni() const { return ni_; }
  [[nodiscard]] int nj() const { return nj_; }

 private:
  PointDepGraph(int ni, int nj) : ni_(ni), nj_(nj) {}

  int ni_ = 0;
  int nj_ = 0;
  std::vector<PointEdge> edges_;
};

struct PointDepGraph::Decomposition {
  PointDepGraph forward;
  PointDepGraph backward;
};

}  // namespace autocfd::depend

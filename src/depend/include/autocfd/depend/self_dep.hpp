// Self-dependent field loops and mirror-image decomposition
// (paper section 4.2, Figures 3 and 4).
//
// A C-type loop whose reads reach both along and against its scan
// direction (Figure 3(b)) carries dependences in both lexicographic
// directions and defeats classical wavefront/skewing. The paper's
// mirror-image decomposition splits the dependence graph by access
// direction:
//   * reads of already-updated points (flow, against the scan offset)
//     become a pipelined sweep across blocks — each block waits for the
//     upstream neighbor's updated boundary layer;
//   * reads of not-yet-updated points (anti, along the scan offset) use
//     the *old* values, satisfied by exchanging the boundary layers
//     before the sweep starts.
// Each sub-problem is parallelizable by classical pipelining; together
// they reproduce the sequential semantics exactly.
#pragma once

#include <string>
#include <vector>

#include "autocfd/ir/field_loop.hpp"
#include "autocfd/obs/provenance.hpp"
#include "autocfd/partition/comm_model.hpp"

namespace autocfd::depend {

enum class SelfDepKind {
  None,      // no same-array read/write overlap in cut dimensions
  AntiOnly,  // only old-value reads: pre-sweep halo exchange suffices
  FlowOnly,  // only updated-value reads: classic wavefront / pipeline
  Mixed,     // both: needs mirror-image decomposition
};

[[nodiscard]] std::string_view self_dep_kind_name(SelfDepKind k);

/// The execution plan for one self-dependent loop under a partition.
struct MirrorImagePlan {
  const ir::FieldLoop* loop = nullptr;
  std::string array;
  SelfDepKind kind = SelfDepKind::None;

  /// Cut dimensions whose flow dependences force pipelining, with the
  /// direction of the sweep (dim, dir) — dir +1 means block k waits for
  /// block k-1.
  std::vector<std::pair<int, int>> pipeline_dims;
  /// Old-value halo to exchange before the sweep (anti reads).
  partition::HaloWidths pre_halo;
  /// Updated-value halo received through the pipeline (flow reads).
  partition::HaloWidths flow_halo;

  /// A self-read carries nonzero offsets in two or more grid dimensions
  /// with at least one of them cut ("diagonal" self-dependence). The
  /// paper's mirror-image decomposition covers axis-aligned self-reads
  /// (its Figure 3 stencils); diagonal ones would need loop skewing and
  /// are rejected by the pre-compiler.
  bool unsupported_diagonal = false;
};

/// Analyzes one (loop, array) self-dependence under `spec`. Offsets in
/// uncut dimensions stay local to a block and are ignored — this is the
/// "analysis after partitioning" discipline.
/// With a provenance log, every direction-vector verdict (flow vs anti
/// per offending read offset) and the final kind are recorded.
[[nodiscard]] MirrorImagePlan analyze_self_dependence(
    const ir::FieldLoop& loop, const std::string& array,
    const partition::PartitionSpec& spec,
    obs::ProvenanceLog* prov = nullptr);

}  // namespace autocfd::depend

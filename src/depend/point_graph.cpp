#include "autocfd/depend/point_graph.hpp"

#include <algorithm>
#include <queue>

namespace autocfd::depend {

PointDepGraph PointDepGraph::build(
    int ni, int nj, const std::vector<std::pair<int, int>>& offsets) {
  PointDepGraph g(ni, nj);
  for (int i = 0; i < ni; ++i) {
    for (int j = 0; j < nj; ++j) {
      for (const auto& [oi, oj] : offsets) {
        const int si = i + oi;
        const int sj = j + oj;
        if (si < 0 || si >= ni || sj < 0 || sj >= nj) continue;
        PointEdge e;
        e.src = g.node(si, sj);
        e.dst = g.node(i, j);
        // Lexicographic comparison of (si,sj) vs (i,j).
        const bool src_first = si < i || (si == i && sj < j);
        e.dir = src_first ? EdgeDir::Forward : EdgeDir::Backward;
        g.edges_.push_back(e);
      }
    }
  }
  return g;
}

bool PointDepGraph::has_cycle() const {
  // Kahn's algorithm; leftovers indicate a cycle.
  std::vector<int> indeg(static_cast<std::size_t>(num_nodes()), 0);
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_nodes()));
  for (const auto& e : edges_) {
    adj[static_cast<std::size_t>(e.src)].push_back(e.dst);
    ++indeg[static_cast<std::size_t>(e.dst)];
  }
  std::queue<int> q;
  for (int n = 0; n < num_nodes(); ++n) {
    if (indeg[static_cast<std::size_t>(n)] == 0) q.push(n);
  }
  int seen = 0;
  while (!q.empty()) {
    const int n = q.front();
    q.pop();
    ++seen;
    for (const int m : adj[static_cast<std::size_t>(n)]) {
      if (--indeg[static_cast<std::size_t>(m)] == 0) q.push(m);
    }
  }
  return seen != num_nodes();
}

PointDepGraph::Decomposition PointDepGraph::mirror_decompose() const {
  Decomposition d{PointDepGraph(ni_, nj_), PointDepGraph(ni_, nj_)};
  for (const auto& e : edges_) {
    (e.dir == EdgeDir::Forward ? d.forward : d.backward).edges_.push_back(e);
  }
  return d;
}

std::vector<int> PointDepGraph::wavefront_levels() const {
  if (has_cycle()) return {};
  std::vector<int> level(static_cast<std::size_t>(num_nodes()), 0);
  std::vector<int> indeg(static_cast<std::size_t>(num_nodes()), 0);
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(num_nodes()));
  for (const auto& e : edges_) {
    adj[static_cast<std::size_t>(e.src)].push_back(e.dst);
    ++indeg[static_cast<std::size_t>(e.dst)];
  }
  std::queue<int> q;
  for (int n = 0; n < num_nodes(); ++n) {
    if (indeg[static_cast<std::size_t>(n)] == 0) q.push(n);
  }
  while (!q.empty()) {
    const int n = q.front();
    q.pop();
    for (const int m : adj[static_cast<std::size_t>(n)]) {
      level[static_cast<std::size_t>(m)] =
          std::max(level[static_cast<std::size_t>(m)],
                   level[static_cast<std::size_t>(n)] + 1);
      if (--indeg[static_cast<std::size_t>(m)] == 0) q.push(m);
    }
  }
  return level;
}

int PointDepGraph::wavefront_depth() const {
  const auto levels = wavefront_levels();
  if (levels.empty()) return 0;
  return *std::max_element(levels.begin(), levels.end()) + 1;
}

}  // namespace autocfd::depend

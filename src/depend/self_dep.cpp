#include "autocfd/depend/self_dep.hpp"

#include <algorithm>

namespace autocfd::depend {

std::string_view self_dep_kind_name(SelfDepKind k) {
  switch (k) {
    case SelfDepKind::None: return "none";
    case SelfDepKind::AntiOnly: return "anti-only";
    case SelfDepKind::FlowOnly: return "flow-only";
    case SelfDepKind::Mixed: return "mixed";
  }
  return "?";
}

MirrorImagePlan analyze_self_dependence(const ir::FieldLoop& loop,
                                        const std::string& array,
                                        const partition::PartitionSpec& spec,
                                        obs::ProvenanceLog* prov) {
  MirrorImagePlan plan;
  plan.loop = &loop;
  plan.array = array;
  plan.pre_halo = partition::HaloWidths::uniform(spec.rank(), 0);
  plan.flow_halo = partition::HaloWidths::uniform(spec.rank(), 0);

  const auto it = loop.arrays.find(array);
  if (it == loop.arrays.end() || !it->second.assigned() ||
      !it->second.referenced()) {
    return plan;  // not self-dependent at all
  }

  bool any_flow = false, any_anti = false;
  for (const auto& read : it->second.reads) {
    const int n_status =
        std::min(static_cast<int>(read.subs.size()), spec.rank());
    // Diagonal self-reads (offsets in two or more grid dimensions, any
    // of them cut) are outside the mirror-image method.
    int offset_dims = 0;
    bool any_cut_offset = false;
    for (int d = 0; d < n_status; ++d) {
      const auto& sub = read.subs[static_cast<std::size_t>(d)];
      if (sub.kind == ir::SubscriptPattern::Kind::LoopIndex &&
          sub.offset != 0) {
        ++offset_dims;
        if (spec.cuts[static_cast<std::size_t>(d)] > 1) {
          any_cut_offset = true;
        }
      }
    }
    if (offset_dims >= 2 && any_cut_offset) {
      plan.unsupported_diagonal = true;
      if (prov != nullptr) {
        prov->add(obs::DecisionKind::SelfDependence, read.stmt->loc,
                  "self-read of '" + array + "'", "unsupported-diagonal",
                  "offsets in " + std::to_string(offset_dims) +
                      " grid dimensions with a cut dimension among them; "
                      "mirror-image decomposition covers axis-aligned "
                      "self-reads only");
      }
    }
    for (int d = 0; d < n_status; ++d) {
      const auto du = static_cast<std::size_t>(d);
      if (spec.cuts[du] <= 1) continue;  // uncut: block-local
      const auto& sub = read.subs[du];
      if (sub.kind != ir::SubscriptPattern::Kind::LoopIndex ||
          sub.offset == 0) {
        continue;
      }
      const int scan_dir = loop.dir_of_dim(d) == 0 ? +1 : loop.dir_of_dim(d);
      const int off_sign = sub.offset < 0 ? -1 : +1;
      const int dist = static_cast<int>(std::abs(sub.offset));
      if (off_sign == -scan_dir) {
        // Reads a point the scan already updated: flow dependence.
        any_flow = true;
        auto& side = off_sign < 0 ? plan.flow_halo.lo : plan.flow_halo.hi;
        side[du] = std::max(side[du], dist);
        const auto exists = std::find_if(
            plan.pipeline_dims.begin(), plan.pipeline_dims.end(),
            [d](const auto& p) { return p.first == d; });
        if (exists == plan.pipeline_dims.end()) {
          plan.pipeline_dims.emplace_back(d, scan_dir);
        }
        if (prov != nullptr) {
          prov->add(obs::DecisionKind::SelfDependence, read.stmt->loc,
                    "self-read of '" + array + "' dim " + std::to_string(d),
                    "flow",
                    "offset " + std::to_string(sub.offset) +
                        " against scan direction " +
                        (scan_dir > 0 ? std::string("+1") : std::string("-1")) +
                        " reads already-updated points -> pipelined sweep",
                    {d});
        }
      } else {
        // Reads a point the scan has not reached yet: old value (anti).
        any_anti = true;
        auto& side = off_sign < 0 ? plan.pre_halo.lo : plan.pre_halo.hi;
        side[du] = std::max(side[du], dist);
        if (prov != nullptr) {
          prov->add(obs::DecisionKind::SelfDependence, read.stmt->loc,
                    "self-read of '" + array + "' dim " + std::to_string(d),
                    "anti",
                    "offset " + std::to_string(sub.offset) +
                        " along scan direction " +
                        (scan_dir > 0 ? std::string("+1") : std::string("-1")) +
                        " reads old values -> pre-sweep halo exchange",
                    {d});
        }
      }
    }
  }

  if (any_flow && any_anti) {
    plan.kind = SelfDepKind::Mixed;
  } else if (any_flow) {
    plan.kind = SelfDepKind::FlowOnly;
  } else if (any_anti) {
    plan.kind = SelfDepKind::AntiOnly;
  } else {
    plan.kind = SelfDepKind::None;
  }
  std::sort(plan.pipeline_dims.begin(), plan.pipeline_dims.end());
  if (prov != nullptr && plan.kind != SelfDepKind::None) {
    std::vector<int> dims;
    for (const auto& [d, dir] : plan.pipeline_dims) dims.push_back(d);
    prov->add(obs::DecisionKind::SelfDependence, loop.loop->loc,
              "loop@" + std::to_string(loop.loop->loc.line) + " array '" +
                  array + "'",
              std::string(self_dep_kind_name(plan.kind)),
              plan.kind == SelfDepKind::Mixed
                  ? "flow and anti halves split by mirror-image "
                    "decomposition"
                  : (plan.kind == SelfDepKind::FlowOnly
                         ? "flow dependences only: classic pipeline"
                         : "anti dependences only: pre-sweep exchange "
                           "suffices"),
              std::move(dims));
  }
  return plan;
}

}  // namespace autocfd::depend

#include "autocfd/fault/fault.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "autocfd/obs/metrics.hpp"

namespace autocfd::fault {
namespace {

/// splitmix64 finalizer: a high-quality 64-bit mixer. Feeding it the
/// plan seed combined with the message identity gives an independent,
/// scheduling-invariant random draw per (message, decision) pair.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Distinct draw stream per decision kind.
enum class Salt : std::uint64_t {
  Jitter = 1,
  JitterAmount = 2,
  Drop = 3,
  Corrupt = 4,
  CorruptSite = 5,
};

std::uint64_t draw(const FaultPlan& plan, int src, int dst, int tag,
                   long long msg_id, Salt salt) {
  std::uint64_t h = plan.seed;
  h = mix(h ^ static_cast<std::uint64_t>(salt));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = mix(h ^ static_cast<std::uint64_t>(msg_id));
  return h;
}

/// Uniform double in [0, 1) from a 64-bit draw.
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

double parse_num(const std::string& key, const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault spec: bad number '" + text +
                                "' for key '" + key + "'");
  }
}

int parse_int(const std::string& key, const std::string& text) {
  const double v = parse_num(key, text);
  if (v != std::floor(v)) {
    throw std::invalid_argument("fault spec: key '" + key +
                                "' needs an integer, got '" + text + "'");
  }
  return static_cast<int>(v);
}

}  // namespace

bool FaultPlan::timing_only() const {
  return drop_prob == 0.0 && corrupt_prob == 0.0 && drops.empty() &&
         corruptions.empty();
}

bool FaultPlan::empty() const {
  return timing_only() && jitter_prob == 0.0 && windows.empty() &&
         stragglers.empty();
}

namespace {

/// Probability key: must land in [0, 1] to mean anything.
double parse_prob(const std::string& key, const std::string& text) {
  const double v = parse_num(key, text);
  if (v < 0.0 || v > 1.0) {
    throw std::invalid_argument("fault spec: " + key +
                                " is a probability and must be in [0, 1], "
                                "got '" + text + "'");
  }
  return v;
}

int parse_rank(const std::string& key, const std::string& text) {
  const int v = parse_int(key, text);
  if (v < 0) {
    throw std::invalid_argument("fault spec: " + key +
                                " needs a rank >= 0, got '" + text + "'");
  }
  return v;
}

int parse_tag(const std::string& key, const std::string& text) {
  const int v = parse_int(key, text);
  if (v < 0) {
    throw std::invalid_argument("fault spec: " + key +
                                " needs a tag >= 0, got '" + text + "'");
  }
  return v;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const auto& item : split(spec, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault spec: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    const auto parts = split(value, ':');
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_num(key, value));
    } else if (key == "jitter") {
      if (parts.size() != 2) {
        throw std::invalid_argument("fault spec: jitter=PROB:MAX");
      }
      plan.jitter_prob = parse_prob(key, parts[0]);
      plan.jitter_max = parse_num(key, parts[1]);
      if (plan.jitter_max < 0.0) {
        throw std::invalid_argument(
            "fault spec: jitter max delay must be >= 0 seconds, got '" +
            parts[1] + "'");
      }
    } else if (key == "straggler") {
      if (parts.size() != 2) {
        throw std::invalid_argument("fault spec: straggler=RANK:FACTOR");
      }
      Straggler s;
      s.rank = parse_rank(key, parts[0]);
      s.factor = parse_num(key, parts[1]);
      if (s.factor < 1.0) {
        throw std::invalid_argument(
            "fault spec: straggler factor must be >= 1 (it multiplies "
            "compute time), got '" + parts[1] + "'");
      }
      plan.stragglers.push_back(s);
    } else if (key == "window") {
      if (parts.size() < 3 || parts.size() > 5) {
        throw std::invalid_argument(
            "fault spec: window=T0:T1:DELAY[:SRC[:DST]]");
      }
      DegradationWindow w;
      w.t0 = parse_num(key, parts[0]);
      w.t1 = parse_num(key, parts[1]);
      w.delay = parse_num(key, parts[2]);
      if (w.t0 < 0.0) {
        throw std::invalid_argument(
            "fault spec: window start must be >= 0 virtual seconds, got '" +
            parts[0] + "'");
      }
      if (w.t1 <= w.t0) {
        throw std::invalid_argument(
            "fault spec: window [" + parts[0] + ", " + parts[1] +
            ") is empty — the end must be after the start");
      }
      if (w.delay < 0.0) {
        throw std::invalid_argument(
            "fault spec: window delay must be >= 0 seconds (a negative "
            "delay would move messages back in time), got '" + parts[2] +
            "'");
      }
      if (parts.size() > 3) w.src = parse_rank(key, parts[3]);
      if (parts.size() > 4) w.dst = parse_rank(key, parts[4]);
      plan.windows.push_back(w);
    } else if (key == "drop") {
      plan.drop_prob = parse_prob(key, value);
    } else if (key == "dropfirst") {
      MessageMatch m;
      m.tag = parse_tag(key, value);
      m.msg_id = 0;
      plan.drops.push_back(m);
    } else if (key == "corrupt") {
      plan.corrupt_prob = parse_prob(key, value);
    } else if (key == "corruptfirst") {
      MessageMatch m;
      m.tag = parse_tag(key, value);
      m.msg_id = 0;
      plan.corruptions.push_back(m);
    } else {
      throw std::invalid_argument(
          "fault spec: unknown fault kind '" + key +
          "' (known: seed, jitter, straggler, window, drop, dropfirst, "
          "corrupt, corruptfirst)");
    }
  }
  return plan;
}

std::string FaultPlan::str() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (jitter_prob > 0.0) os << ",jitter=" << jitter_prob << ":" << jitter_max;
  for (const auto& s : stragglers) {
    os << ",straggler=" << s.rank << ":" << s.factor;
  }
  for (const auto& w : windows) {
    os << ",window=" << w.t0 << ":" << w.t1 << ":" << w.delay;
    if (w.src >= 0 || w.dst >= 0) os << ":" << w.src;
    if (w.dst >= 0) os << ":" << w.dst;
  }
  if (drop_prob > 0.0) os << ",drop=" << drop_prob;
  for (const auto& m : drops) os << ",dropfirst=" << m.tag;
  if (corrupt_prob > 0.0) os << ",corrupt=" << corrupt_prob;
  for (const auto& m : corruptions) os << ",corruptfirst=" << m.tag;
  return os.str();
}

mp::FaultDecision FaultInjector::on_message(int src, int dst, int tag,
                                            long long msg_id, long long bytes,
                                            double departure,
                                            std::vector<double>& payload) {
  (void)bytes;
  mp::FaultDecision fd;

  // Timing: per-message jitter plus any matching degradation window.
  if (plan_.jitter_prob > 0.0 &&
      unit(draw(plan_, src, dst, tag, msg_id, Salt::Jitter)) <
          plan_.jitter_prob) {
    fd.extra_delay += plan_.jitter_max *
                      unit(draw(plan_, src, dst, tag, msg_id,
                                Salt::JitterAmount));
  }
  for (const auto& w : plan_.windows) {
    if (departure >= w.t0 && departure < w.t1 &&
        (w.src < 0 || w.src == src) && (w.dst < 0 || w.dst == dst)) {
      fd.extra_delay += w.delay;
    }
  }
  if (fd.extra_delay > 0.0) {
    ++counters_.delayed;
    counters_.delay_s += fd.extra_delay;
  }

  // Drops: targeted first, then probabilistic.
  for (const auto& m : plan_.drops) {
    if (m.matches(src, dst, tag, msg_id)) fd.drop = true;
  }
  if (!fd.drop && plan_.drop_prob > 0.0 &&
      unit(draw(plan_, src, dst, tag, msg_id, Salt::Drop)) <
          plan_.drop_prob) {
    fd.drop = true;
  }
  if (fd.drop) {
    ++counters_.dropped;
    return fd;  // a dropped message cannot also be corrupted
  }

  // Corruption: flip one mantissa bit of one element. The checksum was
  // taken before this hook ran, so the receiver always detects it.
  bool corrupt = false;
  for (const auto& m : plan_.corruptions) {
    if (m.matches(src, dst, tag, msg_id)) corrupt = true;
  }
  if (!corrupt && plan_.corrupt_prob > 0.0 &&
      unit(draw(plan_, src, dst, tag, msg_id, Salt::Corrupt)) <
          plan_.corrupt_prob) {
    corrupt = true;
  }
  if (corrupt && !payload.empty()) {
    const std::uint64_t h =
        draw(plan_, src, dst, tag, msg_id, Salt::CorruptSite);
    auto& victim = payload[static_cast<std::size_t>(
        h % static_cast<std::uint64_t>(payload.size()))];
    std::uint64_t bits;
    std::memcpy(&bits, &victim, sizeof bits);
    bits ^= 1ull << ((h >> 32) % 52);  // mantissa bit: value-corrupting
    std::memcpy(&victim, &bits, sizeof bits);
    fd.corrupted = true;
    ++counters_.corrupted;
  }
  return fd;
}

double FaultInjector::compute_factor(int rank) {
  double factor = 1.0;
  for (const auto& s : plan_.stragglers) {
    if (s.rank == rank) factor *= s.factor;
  }
  return factor;
}

void FaultInjector::export_metrics(obs::MetricsRegistry& registry) const {
  registry.add("fault.injected.delayed", counters_.delayed);
  registry.add("fault.injected.dropped", counters_.dropped);
  registry.add("fault.injected.corrupted", counters_.corrupted);
  registry.set_gauge("fault.injected.delay_s", counters_.delay_s);
}

}  // namespace autocfd::fault

// Deterministic, seed-driven fault injection for the simulated cluster.
//
// A FaultPlan describes *what* can go wrong — transfer-time jitter,
// link-degradation windows, rank stragglers, message drops, payload
// corruption — and a FaultInjector turns it into an mp::FaultHook.
// Every decision is a pure function of the plan seed and the message
// identity (src, dst, tag, per-channel msg_id) or virtual departure
// time, never of a shared RNG stream or the wall clock: the same plan
// on the same program yields bit-identical fault schedules regardless
// of host thread scheduling, so chaos runs are replayable.
//
// Timing-only plans (jitter / windows / stragglers, no drops and no
// corruption) perturb virtual clocks but can never change computed
// results: data flow in the simulator is independent of time, which is
// exactly the property the chaos differential harness asserts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autocfd/mp/fault_hook.hpp"

namespace autocfd::obs {
class MetricsRegistry;
}

namespace autocfd::fault {

/// Selects messages by identity; -1 fields are wildcards. `msg_id` is
/// the deterministic per-(src,dst) channel sequence number, so
/// {src,dst,tag,msg_id=0} means "the first matching wire message".
struct MessageMatch {
  int src = -1;
  int dst = -1;
  int tag = -1;
  long long msg_id = -1;

  [[nodiscard]] bool matches(int s, int d, int t, long long id) const {
    return (src < 0 || src == s) && (dst < 0 || dst == d) &&
           (tag < 0 || tag == t) && (msg_id < 0 || msg_id == id);
  }
};

/// Link degradation: every message departing within [t0, t1) virtual
/// seconds (optionally restricted to one src and/or dst rank) takes
/// `delay` extra seconds to arrive.
struct DegradationWindow {
  double t0 = 0.0;
  double t1 = 0.0;
  double delay = 0.0;
  int src = -1;  // -1: any sender
  int dst = -1;  // -1: any receiver
};

/// Constant compute slowdown of one rank (factor >= 1).
struct Straggler {
  int rank = 0;
  double factor = 1.0;
};

struct FaultPlan {
  std::uint64_t seed = 1;

  // Timing faults (results must be unaffected).
  double jitter_prob = 0.0;  // per-message probability of extra delay
  double jitter_max = 0.0;   // extra delay drawn uniformly in (0, max]
  std::vector<DegradationWindow> windows;
  std::vector<Straggler> stragglers;

  // Data faults (must be *detected*, never silent).
  double drop_prob = 0.0;
  double corrupt_prob = 0.0;
  std::vector<MessageMatch> drops;        // targeted drops
  std::vector<MessageMatch> corruptions;  // targeted corruptions

  /// True when the plan can only perturb virtual time — such a plan is
  /// guaranteed not to change any computed value.
  [[nodiscard]] bool timing_only() const;
  /// True when the plan injects nothing at all.
  [[nodiscard]] bool empty() const;

  /// Parses a comma-separated spec, e.g.
  ///   "seed=7,jitter=0.3:0.05,straggler=1:2.5,window=0.1:0.4:0.02,
  ///    drop=0.01,dropfirst=3,corrupt=0.01,corruptfirst=3"
  /// Keys: seed=N | jitter=PROB:MAX | straggler=RANK:FACTOR |
  /// window=T0:T1:DELAY[:SRC[:DST]] | drop=PROB | dropfirst=TAG |
  /// corrupt=PROB | corruptfirst=TAG. Throws std::invalid_argument on
  /// anything it does not understand.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);
  /// Round-trippable spec string of this plan.
  [[nodiscard]] std::string str() const;
};

/// What the injector actually did during a run.
struct FaultCounters {
  long long delayed = 0;
  long long dropped = 0;
  long long corrupted = 0;
  double delay_s = 0.0;  // total extra transfer time injected
};

/// The concrete seeded mp::FaultHook. One injector serves one run at a
/// time; counters are reset by reset() (or construct a fresh one).
class FaultInjector : public mp::FaultHook {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  mp::FaultDecision on_message(int src, int dst, int tag, long long msg_id,
                               long long bytes, double departure,
                               std::vector<double>& payload) override;
  double compute_factor(int rank) override;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }
  void reset() { counters_ = FaultCounters{}; }

  /// Publishes counters as `fault.injected.*` metrics (the trace ->
  /// metrics bridge independently derives `fault.*` from the event
  /// stream; equality of the two is a consistency check).
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  FaultPlan plan_;
  FaultCounters counters_;
};

}  // namespace autocfd::fault

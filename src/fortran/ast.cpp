#include "autocfd/fortran/ast.hpp"

namespace autocfd::fortran {

std::string_view type_kind_name(TypeKind k) {
  switch (k) {
    case TypeKind::Integer: return "integer";
    case TypeKind::Real: return "real";
    case TypeKind::DoublePrecision: return "double precision";
    case TypeKind::Logical: return "logical";
  }
  return "?";
}

std::string_view bin_op_spelling(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Pow: return "**";
    case BinOp::Lt: return ".lt.";
    case BinOp::Le: return ".le.";
    case BinOp::Gt: return ".gt.";
    case BinOp::Ge: return ".ge.";
    case BinOp::Eq: return ".eq.";
    case BinOp::Ne: return ".ne.";
    case BinOp::And: return ".and.";
    case BinOp::Or: return ".or.";
  }
  return "?";
}

bool is_relational(BinOp op) {
  switch (op) {
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
    case BinOp::Eq:
    case BinOp::Ne:
      return true;
    default:
      return false;
  }
}

std::string_view stmt_kind_name(StmtKind k) {
  switch (k) {
    case StmtKind::Assign: return "assign";
    case StmtKind::Do: return "do";
    case StmtKind::If: return "if";
    case StmtKind::Goto: return "goto";
    case StmtKind::Continue: return "continue";
    case StmtKind::Call: return "call";
    case StmtKind::Return: return "return";
    case StmtKind::Stop: return "stop";
    case StmtKind::Read: return "read";
    case StmtKind::Write: return "write";
    case StmtKind::HaloExchange: return "halo-exchange";
    case StmtKind::AllReduce: return "all-reduce";
    case StmtKind::PipelineStart: return "pipeline-start";
    case StmtKind::PipelineEnd: return "pipeline-end";
    case StmtKind::Barrier: return "barrier";
  }
  return "?";
}

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->loc = loc;
  out->int_value = int_value;
  out->real_value = real_value;
  out->bool_value = bool_value;
  out->str_value = str_value;
  out->name = name;
  out->bin_op = bin_op;
  out->un_op = un_op;
  out->args.reserve(args.size());
  for (const auto& a : args) out->args.push_back(a->clone());
  out->slot = slot;
  return out;
}

ExprPtr make_int(long long v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::IntLit;
  e->int_value = v;
  e->loc = loc;
  return e;
}

ExprPtr make_real(double v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::RealLit;
  e->real_value = v;
  e->loc = loc;
  return e;
}

ExprPtr make_var(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::VarRef;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr make_array_ref(std::string name, std::vector<ExprPtr> subscripts,
                       SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::ArrayRef;
  e->name = std::move(name);
  e->args = std::move(subscripts);
  e->loc = loc;
  return e;
}

ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->bin_op = op;
  e->loc = lhs ? lhs->loc : SourceLoc{};
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr make_unary(UnOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Unary;
  e->un_op = op;
  e->loc = operand ? operand->loc : SourceLoc{};
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr make_intrinsic(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Intrinsic;
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

StmtPtr Stmt::clone() const {
  auto out = std::make_unique<Stmt>();
  out->kind = kind;
  out->loc = loc;
  out->label = label;
  out->id = id;
  if (lhs) out->lhs = lhs->clone();
  if (rhs) out->rhs = rhs->clone();
  out->do_var = do_var;
  if (lo) out->lo = lo->clone();
  if (hi) out->hi = hi->clone();
  if (step) out->step = step->clone();
  out->body = clone_stmts(body);
  if (cond) out->cond = cond->clone();
  out->else_body = clone_stmts(else_body);
  out->goto_target = goto_target;
  out->callee = callee;
  out->args.reserve(args.size());
  for (const auto& a : args) out->args.push_back(a->clone());
  out->str_value = str_value;
  out->halo_arrays = halo_arrays;
  out->pipeline_dim = pipeline_dim;
  out->pipeline_dir = pipeline_dir;
  out->reduce_var = reduce_var;
  out->comm_tags = comm_tags;
  out->sync_site = sync_site;
  out->slot = slot;
  out->flops = flops;
  return out;
}

StmtPtr make_stmt(StmtKind kind, SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  return s;
}

StmtList clone_stmts(const StmtList& stmts) {
  StmtList out;
  out.reserve(stmts.size());
  for (const auto& s : stmts) out.push_back(s->clone());
  return out;
}

DimBound DimBound::clone() const {
  DimBound out;
  if (lower) out.lower = lower->clone();
  out.upper = upper->clone();
  return out;
}

VarDecl VarDecl::clone() const {
  VarDecl out;
  out.name = name;
  out.type = type;
  out.loc = loc;
  out.dims.reserve(dims.size());
  for (const auto& d : dims) out.dims.push_back(d.clone());
  return out;
}

const VarDecl* ProgramUnit::find_decl(std::string_view var) const {
  for (const auto& d : decls) {
    if (d.name == var) return &d;
  }
  return nullptr;
}

bool ProgramUnit::in_common(std::string_view var) const {
  for (const auto& c : commons) {
    for (const auto& v : c.vars) {
      if (v == var) return true;
    }
  }
  return false;
}

const ProgramUnit* SourceFile::find_unit(std::string_view name) const {
  for (const auto& u : units) {
    if (u.name == name) return &u;
  }
  return nullptr;
}

ProgramUnit* SourceFile::find_unit(std::string_view name) {
  for (auto& u : units) {
    if (u.name == name) return &u;
  }
  return nullptr;
}

const ProgramUnit* SourceFile::main_program() const {
  for (const auto& u : units) {
    if (u.kind == UnitKind::Program) return &u;
  }
  return nullptr;
}

namespace {
int assign_ids_rec(StmtList& stmts, int next) {
  for (auto& s : stmts) {
    s->id = next++;
    next = assign_ids_rec(s->body, next);
    next = assign_ids_rec(s->else_body, next);
  }
  return next;
}
}  // namespace

int assign_stmt_ids(ProgramUnit& unit, int first_id) {
  return assign_ids_rec(unit.body, first_id) - first_id;
}

int assign_stmt_ids(SourceFile& file) {
  int next = 1;
  for (auto& u : file.units) {
    next = assign_ids_rec(u.body, next);
  }
  return next - 1;
}

void for_each_stmt(const StmtList& stmts,
                   const std::function<void(const Stmt&, int)>& fn,
                   int depth) {
  for (const auto& s : stmts) {
    fn(*s, depth);
    for_each_stmt(s->body, fn, depth + 1);
    for_each_stmt(s->else_body, fn, depth + 1);
  }
}

void for_each_stmt_mut(StmtList& stmts,
                       const std::function<void(Stmt&, int)>& fn, int depth) {
  for (auto& s : stmts) {
    fn(*s, depth);
    for_each_stmt_mut(s->body, fn, depth + 1);
    for_each_stmt_mut(s->else_body, fn, depth + 1);
  }
}

void for_each_expr(const Expr& expr,
                   const std::function<void(const Expr&)>& fn) {
  fn(expr);
  for (const auto& a : expr.args) {
    if (a) for_each_expr(*a, fn);
  }
}

void for_each_expr(const Stmt& stmt,
                   const std::function<void(const Expr&)>& fn) {
  const auto visit = [&](const ExprPtr& e) {
    if (e) for_each_expr(*e, fn);
  };
  visit(stmt.lhs);
  visit(stmt.rhs);
  visit(stmt.lo);
  visit(stmt.hi);
  visit(stmt.step);
  visit(stmt.cond);
  for (const auto& a : stmt.args) visit(a);
}

}  // namespace autocfd::fortran

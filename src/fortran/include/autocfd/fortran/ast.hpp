// Abstract syntax tree for the Fortran-77 subset plus the parallel
// extension statements emitted by the SPMD restructurer.
//
// Expressions and statements are each one struct with a kind tag rather
// than a class hierarchy: the analyses in ir/, depend/ and sync/ walk
// the tree constantly and a flat representation keeps the walkers (and
// clone()) simple. Fields are only meaningful for the kinds documented
// next to them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autocfd/support/diagnostics.hpp"

namespace autocfd::fortran {

enum class TypeKind { Integer, Real, DoublePrecision, Logical };

[[nodiscard]] std::string_view type_kind_name(TypeKind k);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntLit,
  RealLit,
  StrLit,
  LogicalLit,
  VarRef,    // scalar variable
  ArrayRef,  // array element v(e1, e2, ...)
  Unary,
  Binary,
  Intrinsic,  // abs/max/min/sqrt/... call
};

enum class BinOp { Add, Sub, Mul, Div, Pow, Lt, Le, Gt, Ge, Eq, Ne, And, Or };
enum class UnOp { Neg, Plus, Not };

[[nodiscard]] std::string_view bin_op_spelling(BinOp op);
[[nodiscard]] bool is_relational(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::IntLit;
  SourceLoc loc;

  long long int_value = 0;   // IntLit
  double real_value = 0.0;   // RealLit
  bool bool_value = false;   // LogicalLit
  std::string str_value;     // StrLit
  std::string name;          // VarRef / ArrayRef / Intrinsic (lowercase)
  BinOp bin_op = BinOp::Add;  // Binary
  UnOp un_op = UnOp::Neg;     // Unary
  // ArrayRef: subscripts. Intrinsic: arguments.
  // Binary: {lhs, rhs}. Unary: {operand}.
  std::vector<ExprPtr> args;

  /// Interpreter annotation, assigned by interp::ProgramImage::build:
  /// scalar slot (VarRef), array slot (ArrayRef) or opcode (Intrinsic).
  int slot = -1;

  [[nodiscard]] ExprPtr clone() const;
};

// Convenience constructors used heavily by the restructurer.
[[nodiscard]] ExprPtr make_int(long long v, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_real(double v, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_var(std::string name, SourceLoc loc = {});
[[nodiscard]] ExprPtr make_array_ref(std::string name,
                                     std::vector<ExprPtr> subscripts,
                                     SourceLoc loc = {});
[[nodiscard]] ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr make_unary(UnOp op, ExprPtr operand);
[[nodiscard]] ExprPtr make_intrinsic(std::string name,
                                     std::vector<ExprPtr> args);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  Assign,
  Do,
  If,
  Goto,
  Continue,
  Call,
  Return,
  Stop,
  Read,   // read(unit,*) items — bound to a synthetic dataset at run time
  Write,  // write(unit,*) items — captured by the interpreter

  // --- Parallel extension statements (emitted by codegen, never parsed) ---
  HaloExchange,   // exchange ghost layers of `halo_arrays` with neighbors
  AllReduce,      // reduce scalar `reduce_var` across ranks (op in `callee`)
  PipelineStart,  // blocking receive of an updated boundary (mirror-image)
  PipelineEnd,    // send of an updated boundary to the downstream neighbor
  Barrier,
};

[[nodiscard]] std::string_view stmt_kind_name(StmtKind k);

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// Data for one array participating in a halo exchange: which status
/// dimensions to exchange on and how wide the halo is on each side.
struct HaloSpec {
  std::string array;
  // Per grid dimension d (0-based): how many layers are needed from the
  // "low" neighbor and from the "high" neighbor.
  std::vector<int> lo_width;
  std::vector<int> hi_width;

  friend bool operator==(const HaloSpec&, const HaloSpec&) = default;
};

struct Stmt {
  StmtKind kind = StmtKind::Continue;
  SourceLoc loc;
  int label = 0;  // numeric statement label, 0 if none
  int id = 0;     // unique id assigned by assign_stmt_ids()

  // Assign
  ExprPtr lhs;  // VarRef or ArrayRef
  ExprPtr rhs;

  // Do
  std::string do_var;
  ExprPtr lo, hi, step;  // step may be null (defaults to 1)
  StmtList body;         // Do body / If then-branch

  // If
  ExprPtr cond;
  StmtList else_body;

  // Goto
  int goto_target = 0;

  // Call / Intrinsic-style statements / AllReduce op name
  std::string callee;
  std::vector<ExprPtr> args;

  // Read / Write: io items (exprs; for Read they must be var/array names)
  // reuse `args`; `str_value` holds an optional format/dataset tag.
  std::string str_value;

  // HaloExchange / PipelineStart / PipelineEnd
  std::vector<HaloSpec> halo_arrays;
  int pipeline_dim = -1;   // grid dimension the pipeline sweeps along
  int pipeline_dir = +1;   // +1 sweeping low->high, -1 high->low
  std::string reduce_var;  // AllReduce target scalar
  /// Wire tags assigned by the restructurer (sync::TagRegistry ids):
  /// HaloExchange holds one per grid dimension (-1 for uncut dims);
  /// PipelineStart/PipelineEnd hold a single shared tag. Empty for
  /// programs not produced by the restructurer (legacy fixed tags).
  std::vector<int> comm_tags;
  /// Sync-plan site of an AllReduce/Barrier (collectives carry no wire
  /// tag); -1 when unattributed.
  int sync_site = -1;

  /// Interpreter annotations (interp::ProgramImage::build): the slot of
  /// the Do variable / AllReduce scalar, and the floating-point work of
  /// an Assign statement.
  int slot = -1;
  double flops = 0.0;

  [[nodiscard]] StmtPtr clone() const;
};

[[nodiscard]] StmtPtr make_stmt(StmtKind kind, SourceLoc loc = {});
[[nodiscard]] StmtList clone_stmts(const StmtList& stmts);

// ---------------------------------------------------------------------------
// Declarations and program units
// ---------------------------------------------------------------------------

/// One dimension declarator: `lower:upper`, or just `upper` (lower == 1).
struct DimBound {
  ExprPtr lower;  // null means 1
  ExprPtr upper;

  [[nodiscard]] DimBound clone() const;
};

struct VarDecl {
  std::string name;
  TypeKind type = TypeKind::Real;
  std::vector<DimBound> dims;  // empty for scalars
  SourceLoc loc;

  [[nodiscard]] bool is_array() const { return !dims.empty(); }
  [[nodiscard]] VarDecl clone() const;
};

/// `parameter (name = value)` compile-time constant.
struct ParamConst {
  std::string name;
  ExprPtr value;
  SourceLoc loc;
};

/// `common /block/ a, b, c` — storage shared across program units.
/// Our subset matches common variables by name, so every unit naming a
/// variable in a common block refers to the same storage.
struct CommonBlock {
  std::string block_name;
  std::vector<std::string> vars;
};

enum class UnitKind { Program, Subroutine };

struct ProgramUnit {
  UnitKind kind = UnitKind::Program;
  std::string name;
  std::vector<std::string> formal_args;
  std::vector<VarDecl> decls;
  std::vector<ParamConst> params;
  std::vector<CommonBlock> commons;
  StmtList body;
  SourceLoc loc;

  [[nodiscard]] const VarDecl* find_decl(std::string_view var) const;
  [[nodiscard]] bool in_common(std::string_view var) const;
};

struct SourceFile {
  std::vector<ProgramUnit> units;

  [[nodiscard]] const ProgramUnit* find_unit(std::string_view name) const;
  [[nodiscard]] ProgramUnit* find_unit(std::string_view name);
  [[nodiscard]] const ProgramUnit* main_program() const;
};

/// Assigns a unique, document-ordered id to every statement in the unit
/// (ids are used by the sync-region machinery as program positions).
/// Returns the number of statements visited.
int assign_stmt_ids(ProgramUnit& unit, int first_id = 1);
int assign_stmt_ids(SourceFile& file);

/// Walks all statements in document order, including nested bodies.
/// The callback receives (stmt, depth).
void for_each_stmt(const StmtList& stmts,
                   const std::function<void(const Stmt&, int)>& fn,
                   int depth = 0);
void for_each_stmt_mut(StmtList& stmts,
                       const std::function<void(Stmt&, int)>& fn,
                       int depth = 0);

/// Walks all expressions in a statement (not descending into child stmts).
void for_each_expr(const Stmt& stmt,
                   const std::function<void(const Expr&)>& fn);
void for_each_expr(const Expr& expr,
                   const std::function<void(const Expr&)>& fn);

}  // namespace autocfd::fortran

// Lexer for the Fortran-77 subset.
//
// Accepted layout is "relaxed fixed form": one statement per line,
// comment lines start with 'c', 'C', '*' or '!', inline comments with
// '!', continuation by a trailing '&'. A line-leading integer is lexed
// as a Label token (statement label, e.g. the target of `do 10 i=...`
// or `goto 20`).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "autocfd/fortran/token.hpp"
#include "autocfd/support/diagnostics.hpp"

namespace autocfd::fortran {

class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticEngine& diags);

  /// Tokenize the whole source. The stream always ends with EndOfFile;
  /// every logical statement is terminated by EndOfStatement.
  [[nodiscard]] std::vector<Token> tokenize();

 private:
  void lex_line(std::string_view line, std::uint32_t line_no,
                bool is_continuation, std::vector<Token>& out);
  void lex_number(std::string_view line, std::size_t& i, std::uint32_t line_no,
                  bool at_statement_start, std::vector<Token>& out);
  void lex_dot_operator(std::string_view line, std::size_t& i,
                        std::uint32_t line_no, std::vector<Token>& out);

  std::string source_;
  DiagnosticEngine* diags_;
};

}  // namespace autocfd::fortran

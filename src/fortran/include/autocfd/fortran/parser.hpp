// Recursive-descent parser for the Fortran-77 subset.
//
// Fortran has no reserved words, so statement keywords are recognized
// from position and context (e.g. `do` starts a DO statement only when
// followed by `[label] var =`). The parser resolves names against the
// current unit's declarations as it goes: a parenthesized name is an
// ArrayRef when declared with dimensions, an Intrinsic when in the
// intrinsic table, and an error otherwise (the subset has no user
// functions; procedures are subroutines).
#pragma once

#include <string_view>
#include <vector>

#include "autocfd/fortran/ast.hpp"
#include "autocfd/fortran/token.hpp"
#include "autocfd/support/diagnostics.hpp"

namespace autocfd::fortran {

[[nodiscard]] bool is_intrinsic_name(std::string_view name);

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags);

  /// Parses a whole source file (one or more program units).
  [[nodiscard]] SourceFile parse_file();

 private:
  // token stream
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool accept(TokenKind kind);
  bool accept_word(std::string_view word);
  const Token* expect(TokenKind kind, std::string_view what);
  bool expect_word(std::string_view word);
  void skip_to_eos();
  bool at_eos() const;

  // units and declarations
  ProgramUnit parse_unit();
  bool parse_declaration(ProgramUnit& unit);
  void parse_type_decl(ProgramUnit& unit, TypeKind type);
  void parse_dimension(ProgramUnit& unit);
  void parse_parameter(ProgramUnit& unit);
  void parse_common(ProgramUnit& unit);
  std::vector<DimBound> parse_dim_list(ProgramUnit& unit);

  // statements
  enum class BlockEnd { UnitEnd, EndDo, EndIf, Else, ElseIf, Label };
  struct BlockResult {
    BlockEnd end;
    int label = 0;  // for BlockEnd::Label
  };
  BlockResult parse_stmt_list(StmtList& out, int until_label);
  StmtPtr parse_statement(int label);
  StmtPtr parse_do(SourceLoc loc);
  StmtPtr parse_if(SourceLoc loc);
  StmtPtr parse_call(SourceLoc loc);
  StmtPtr parse_io(SourceLoc loc, StmtKind kind);
  StmtPtr parse_assignment(SourceLoc loc);

  // expressions (precedence climbing)
  ExprPtr parse_expr();
  ExprPtr parse_or();
  ExprPtr parse_and();
  ExprPtr parse_not();
  ExprPtr parse_relational();
  ExprPtr parse_additive();
  ExprPtr parse_multiplicative();
  ExprPtr parse_unary();
  ExprPtr parse_power();
  ExprPtr parse_primary();

  bool looks_like_do() const;
  bool is_declared_array(std::string_view name) const;

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  DiagnosticEngine* diags_;
  ProgramUnit* current_unit_ = nullptr;
};

/// Convenience: lex + parse + assign statement ids; throws CompileError
/// on any diagnostic error.
[[nodiscard]] SourceFile parse_source(std::string_view source);

/// Non-throwing variant collecting diagnostics.
[[nodiscard]] SourceFile parse_source(std::string_view source,
                                      DiagnosticEngine& diags);

}  // namespace autocfd::fortran

// Pretty-printer: AST -> Fortran source text.
//
// Used for round-trip tests and, crucially, to emit the restructured
// SPMD program the pre-compiler produces (parallel extension statements
// print as MPI-style calls, matching the paper's PVM/MPI output).
#pragma once

#include <string>

#include "autocfd/fortran/ast.hpp"

namespace autocfd::fortran {

struct PrintOptions {
  int indent_width = 2;
  /// When true, extension statements (HaloExchange, AllReduce, ...) are
  /// printed as mpi_* call statements; when false, as !$acfd comments.
  bool extensions_as_mpi_calls = true;
};

[[nodiscard]] std::string print_expr(const Expr& expr);
[[nodiscard]] std::string print_stmt(const Stmt& stmt,
                                     const PrintOptions& opts = {},
                                     int indent = 0);
[[nodiscard]] std::string print_unit(const ProgramUnit& unit,
                                     const PrintOptions& opts = {});
[[nodiscard]] std::string print_file(const SourceFile& file,
                                     const PrintOptions& opts = {});

}  // namespace autocfd::fortran

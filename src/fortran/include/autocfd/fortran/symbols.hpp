// Symbol resolution for the Fortran subset: compile-time constant
// evaluation (parameter statements), concrete array shapes, and the
// cross-unit view of common-block storage the later analyses need.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "autocfd/fortran/ast.hpp"
#include "autocfd/support/diagnostics.hpp"

namespace autocfd::fortran {

/// Evaluates expressions made of literals, parameters and arithmetic to
/// a compile-time constant. Returns nullopt for anything run-time.
class ConstEvaluator {
 public:
  explicit ConstEvaluator(const ProgramUnit& unit);

  [[nodiscard]] std::optional<long long> eval_int(const Expr& e) const;
  [[nodiscard]] std::optional<double> eval_real(const Expr& e) const;

 private:
  std::map<std::string, const Expr*> params_;
};

/// Concrete (evaluated) shape of one array: inclusive bounds per dim.
struct ArrayShape {
  struct Dim {
    long long lower = 1;
    long long upper = 1;
    [[nodiscard]] long long extent() const { return upper - lower + 1; }
    friend bool operator==(const Dim&, const Dim&) = default;
  };
  std::vector<Dim> dims;

  [[nodiscard]] int rank() const { return static_cast<int>(dims.size()); }
  [[nodiscard]] long long element_count() const;
  friend bool operator==(const ArrayShape&, const ArrayShape&) = default;
};

/// Per-unit symbol table with evaluated shapes.
class SymbolTable {
 public:
  static SymbolTable build(const ProgramUnit& unit, DiagnosticEngine& diags);

  [[nodiscard]] const ArrayShape* shape(std::string_view array) const;
  [[nodiscard]] const VarDecl* decl(std::string_view name) const;
  [[nodiscard]] bool is_array(std::string_view name) const {
    return shape(name) != nullptr;
  }
  [[nodiscard]] const std::map<std::string, ArrayShape>& arrays() const {
    return shapes_;
  }

 private:
  std::map<std::string, ArrayShape> shapes_;
  std::map<std::string, const VarDecl*> decls_;
};

/// Whole-file view: which variables are global (appear in a common
/// block anywhere) and their agreed shape. The subset requires a
/// variable to have a consistent shape in every unit that declares it
/// in common.
class GlobalSymbols {
 public:
  static GlobalSymbols build(const SourceFile& file, DiagnosticEngine& diags);

  [[nodiscard]] bool is_global(std::string_view name) const;
  [[nodiscard]] const ArrayShape* global_shape(std::string_view name) const;
  [[nodiscard]] const std::map<std::string, ArrayShape>& globals() const {
    return global_arrays_;
  }
  /// Global scalars (common variables without dimensions).
  [[nodiscard]] const std::vector<std::string>& global_scalars() const {
    return global_scalars_;
  }

  [[nodiscard]] const SymbolTable* unit_table(std::string_view unit) const;

 private:
  std::map<std::string, ArrayShape> global_arrays_;
  std::vector<std::string> global_scalars_;
  std::map<std::string, SymbolTable> unit_tables_;
};

}  // namespace autocfd::fortran

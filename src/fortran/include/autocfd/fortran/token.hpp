// Token definitions for the Fortran-77 subset accepted by Auto-CFD.
//
// The lexer is deliberately keyword-free: Fortran keywords are not
// reserved words (a variable may be called "if"), so the lexer emits
// Identifier tokens and the parser decides from context. Dot-operators
// (.lt., .and., ...) are lexed into dedicated kinds because their
// spelling is unambiguous.
#pragma once

#include <string>
#include <string_view>

#include "autocfd/support/diagnostics.hpp"

namespace autocfd::fortran {

enum class TokenKind {
  EndOfFile,
  EndOfStatement,  // newline or ';' that terminates a statement
  Identifier,
  IntLiteral,
  RealLiteral,
  StringLiteral,
  Label,  // integer in the label field at start of a statement

  // punctuation
  LParen,
  RParen,
  Comma,
  Colon,
  Equals,
  Plus,
  Minus,
  Star,
  StarStar,
  Slash,

  // dot operators
  DotLt,
  DotLe,
  DotGt,
  DotGe,
  DotEq,
  DotNe,
  DotAnd,
  DotOr,
  DotNot,
  DotTrue,
  DotFalse,
};

[[nodiscard]] std::string_view token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  SourceLoc loc;
  std::string text;       // identifier (lowercased) or literal spelling
  long long int_value = 0;
  double real_value = 0.0;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  /// True if this is an Identifier spelling `word` (already lowercased).
  [[nodiscard]] bool is_word(std::string_view word) const {
    return kind == TokenKind::Identifier && text == word;
  }
  [[nodiscard]] std::string str() const;
};

}  // namespace autocfd::fortran

#include "autocfd/fortran/lexer.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "autocfd/support/strings.hpp"

namespace autocfd::fortran {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

bool is_comment_line(std::string_view line) {
  const auto t = autocfd::trim(line);
  if (t.empty()) return false;
  if (t[0] == '!') return true;
  // Classic fixed-form comment markers in column 1. Unlike strict F77 we
  // only treat 'c'/'C'/'*' as a comment when followed by whitespace or
  // nothing, so statements like `call ...` or `common ...` may start in
  // column 1 (the subset accepts relaxed layout).
  const char c = line[0];
  if (c != 'c' && c != 'C' && c != '*') return false;
  if (line.size() == 1) return true;
  if (!std::isspace(static_cast<unsigned char>(line[1]))) return false;
  if (c == '*') return true;
  // `c = ...` / `c(i) = ...` is an assignment to a variable named c,
  // not a comment.
  const auto rest = autocfd::trim(line.substr(1));
  return rest.empty() || (rest[0] != '=' && rest[0] != '(');
}

}  // namespace

Lexer::Lexer(std::string_view source, DiagnosticEngine& diags)
    : source_(source), diags_(&diags) {}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  std::uint32_t line_no = 0;
  bool continuation_pending = false;
  std::size_t pos = 0;
  while (pos <= source_.size()) {
    const auto nl = source_.find('\n', pos);
    const auto end = (nl == std::string::npos) ? source_.size() : nl;
    std::string_view line(source_.data() + pos, end - pos);
    ++line_no;

    if (!is_comment_line(line) && !autocfd::trim(line).empty()) {
      lex_line(line, line_no, continuation_pending, out);
      // A trailing '&' suppresses the statement terminator.
      // lex_line stripped it already and told us via the flag below.
      continuation_pending =
          !out.empty() && out.back().kind != TokenKind::EndOfStatement;
    }

    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  if (continuation_pending) {
    diags_->error({line_no, 1}, "file ends in a continued statement");
  }
  Token eof;
  eof.kind = TokenKind::EndOfFile;
  eof.loc = {line_no, 1};
  out.push_back(eof);
  return out;
}

void Lexer::lex_line(std::string_view line, std::uint32_t line_no,
                     bool is_continuation, std::vector<Token>& out) {
  // Strip inline comment (a '!' outside a string literal).
  bool in_string = false;
  std::size_t effective_len = line.size();
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\'') in_string = !in_string;
    if (line[i] == '!' && !in_string) {
      effective_len = i;
      break;
    }
  }
  line = line.substr(0, effective_len);

  // Detect and strip a trailing continuation '&'.
  bool continued = false;
  {
    const auto t = autocfd::trim(line);
    if (!t.empty() && t.back() == '&') {
      continued = true;
      const auto amp = line.rfind('&');
      line = line.substr(0, amp);
    }
  }

  bool at_statement_start = !is_continuation;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    const auto col = static_cast<std::uint32_t>(i + 1);
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.loc = {line_no, col};
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      tok.kind = TokenKind::Identifier;
      tok.text = autocfd::to_lower(line.substr(start, i - start));
      out.push_back(std::move(tok));
      at_statement_start = false;
      continue;
    }
    if (is_digit(c) || (c == '.' && i + 1 < line.size() && is_digit(line[i + 1]))) {
      lex_number(line, i, line_no, at_statement_start, out);
      at_statement_start = false;
      continue;
    }
    if (c == '.') {
      lex_dot_operator(line, i, line_no, out);
      at_statement_start = false;
      continue;
    }
    if (c == '\'') {
      std::size_t start = ++i;
      while (i < line.size() && line[i] != '\'') ++i;
      if (i >= line.size()) {
        diags_->error(tok.loc, "unterminated string literal");
      }
      tok.kind = TokenKind::StringLiteral;
      tok.text = std::string(line.substr(start, i - start));
      if (i < line.size()) ++i;  // closing quote
      out.push_back(std::move(tok));
      at_statement_start = false;
      continue;
    }
    at_statement_start = false;
    switch (c) {
      case '(': tok.kind = TokenKind::LParen; ++i; break;
      case ')': tok.kind = TokenKind::RParen; ++i; break;
      case ',': tok.kind = TokenKind::Comma; ++i; break;
      case ':': tok.kind = TokenKind::Colon; ++i; break;
      case '=': tok.kind = TokenKind::Equals; ++i; break;
      case '+': tok.kind = TokenKind::Plus; ++i; break;
      case '-': tok.kind = TokenKind::Minus; ++i; break;
      case '/': tok.kind = TokenKind::Slash; ++i; break;
      case '*':
        if (i + 1 < line.size() && line[i + 1] == '*') {
          tok.kind = TokenKind::StarStar;
          i += 2;
        } else {
          tok.kind = TokenKind::Star;
          ++i;
        }
        break;
      default:
        diags_->error(tok.loc, std::string("unexpected character '") + c + "'");
        ++i;
        continue;
    }
    out.push_back(std::move(tok));
  }

  if (!continued) {
    Token eos;
    eos.kind = TokenKind::EndOfStatement;
    eos.loc = {line_no, static_cast<std::uint32_t>(line.size() + 1)};
    out.push_back(eos);
  }
}

void Lexer::lex_number(std::string_view line, std::size_t& i,
                       std::uint32_t line_no, bool at_statement_start,
                       std::vector<Token>& out) {
  const auto col = static_cast<std::uint32_t>(i + 1);
  std::size_t start = i;
  bool is_real = false;
  while (i < line.size() && is_digit(line[i])) ++i;
  // A '.' begins a fraction unless it starts a dot-operator (`1.lt.2`).
  // An exponent letter right after the dot (`2.e-3`) is still a real:
  // e/d followed by an optional sign and a digit.
  const auto is_exponent_at = [&](std::size_t j) {
    if (j >= line.size()) return false;
    const char ch = line[j];
    if (ch != 'e' && ch != 'E' && ch != 'd' && ch != 'D') return false;
    std::size_t k = j + 1;
    if (k < line.size() && (line[k] == '+' || line[k] == '-')) ++k;
    return k < line.size() && is_digit(line[k]);
  };
  if (i < line.size() && line[i] == '.' &&
      (!(i + 1 < line.size() &&
         std::isalpha(static_cast<unsigned char>(line[i + 1]))) ||
       is_exponent_at(i + 1))) {
    is_real = true;
    ++i;
    while (i < line.size() && is_digit(line[i])) ++i;
  }
  if (i < line.size() && (line[i] == 'e' || line[i] == 'E' || line[i] == 'd' ||
                          line[i] == 'D')) {
    std::size_t j = i + 1;
    if (j < line.size() && (line[j] == '+' || line[j] == '-')) ++j;
    if (j < line.size() && is_digit(line[j])) {
      is_real = true;
      i = j;
      while (i < line.size() && is_digit(line[i])) ++i;
    }
  }

  Token tok;
  tok.loc = {line_no, col};
  std::string spelling(line.substr(start, i - start));
  tok.text = spelling;
  if (is_real) {
    // Fortran 'd' exponents are not understood by strtod.
    for (auto& ch : spelling) {
      if (ch == 'd' || ch == 'D') ch = 'e';
    }
    tok.kind = TokenKind::RealLiteral;
    tok.real_value = std::strtod(spelling.c_str(), nullptr);
  } else {
    tok.kind = at_statement_start ? TokenKind::Label : TokenKind::IntLiteral;
    long long v = 0;
    std::from_chars(spelling.data(), spelling.data() + spelling.size(), v);
    tok.int_value = v;
  }
  out.push_back(std::move(tok));
}

void Lexer::lex_dot_operator(std::string_view line, std::size_t& i,
                             std::uint32_t line_no, std::vector<Token>& out) {
  const auto col = static_cast<std::uint32_t>(i + 1);
  const auto close = line.find('.', i + 1);
  Token tok;
  tok.loc = {line_no, col};
  if (close == std::string_view::npos) {
    diags_->error(tok.loc, "malformed dot-operator");
    ++i;
    return;
  }
  const auto word = autocfd::to_lower(line.substr(i + 1, close - i - 1));
  i = close + 1;
  if (word == "lt") tok.kind = TokenKind::DotLt;
  else if (word == "le") tok.kind = TokenKind::DotLe;
  else if (word == "gt") tok.kind = TokenKind::DotGt;
  else if (word == "ge") tok.kind = TokenKind::DotGe;
  else if (word == "eq") tok.kind = TokenKind::DotEq;
  else if (word == "ne") tok.kind = TokenKind::DotNe;
  else if (word == "and") tok.kind = TokenKind::DotAnd;
  else if (word == "or") tok.kind = TokenKind::DotOr;
  else if (word == "not") tok.kind = TokenKind::DotNot;
  else if (word == "true") tok.kind = TokenKind::DotTrue;
  else if (word == "false") tok.kind = TokenKind::DotFalse;
  else {
    diags_->error(tok.loc, "unknown dot-operator '." + word + ".'");
    return;
  }
  out.push_back(std::move(tok));
}

}  // namespace autocfd::fortran

#include "autocfd/fortran/parser.hpp"

#include <array>
#include <algorithm>

#include "autocfd/fortran/lexer.hpp"

namespace autocfd::fortran {

namespace {

constexpr std::array kIntrinsics = {
    "abs",   "sqrt", "exp",  "log",  "sin",  "cos",   "tan",
    "atan",  "max",  "min",  "mod",  "int",  "nint",  "float",
    "real",  "dble", "sign", "amax1", "amin1", "atan2",
};

}  // namespace

bool is_intrinsic_name(std::string_view name) {
  return std::find(kIntrinsics.begin(), kIntrinsics.end(), name) !=
         kIntrinsics.end();
}

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), diags_(&diags) {}

const Token& Parser::peek(int ahead) const {
  const auto idx = std::min(pos_ + static_cast<std::size_t>(ahead),
                            tokens_.size() - 1);
  return tokens_[idx];
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::accept(TokenKind kind) {
  if (peek().kind == kind) {
    advance();
    return true;
  }
  return false;
}

bool Parser::accept_word(std::string_view word) {
  if (peek().is_word(word)) {
    advance();
    return true;
  }
  return false;
}

const Token* Parser::expect(TokenKind kind, std::string_view what) {
  if (peek().kind == kind) return &advance();
  diags_->error(peek().loc, "expected " + std::string(what) + ", found " +
                                peek().str());
  return nullptr;
}

bool Parser::expect_word(std::string_view word) {
  if (accept_word(word)) return true;
  diags_->error(peek().loc,
                "expected '" + std::string(word) + "', found " + peek().str());
  return false;
}

void Parser::skip_to_eos() {
  while (!peek().is(TokenKind::EndOfStatement) &&
         !peek().is(TokenKind::EndOfFile)) {
    advance();
  }
  accept(TokenKind::EndOfStatement);
}

bool Parser::at_eos() const {
  return peek().is(TokenKind::EndOfStatement) ||
         peek().is(TokenKind::EndOfFile);
}

// ---------------------------------------------------------------------------
// File and unit structure
// ---------------------------------------------------------------------------

SourceFile Parser::parse_file() {
  SourceFile file;
  while (!peek().is(TokenKind::EndOfFile)) {
    if (accept(TokenKind::EndOfStatement)) continue;
    file.units.push_back(parse_unit());
  }
  return file;
}

ProgramUnit Parser::parse_unit() {
  ProgramUnit unit;
  unit.loc = peek().loc;
  current_unit_ = &unit;

  if (accept_word("program")) {
    unit.kind = UnitKind::Program;
    if (const auto* t = expect(TokenKind::Identifier, "program name")) {
      unit.name = t->text;
    }
    skip_to_eos();
  } else if (accept_word("subroutine")) {
    unit.kind = UnitKind::Subroutine;
    if (const auto* t = expect(TokenKind::Identifier, "subroutine name")) {
      unit.name = t->text;
    }
    if (accept(TokenKind::LParen)) {
      if (!accept(TokenKind::RParen)) {
        do {
          if (const auto* a = expect(TokenKind::Identifier, "argument name")) {
            unit.formal_args.push_back(a->text);
          }
        } while (accept(TokenKind::Comma));
        expect(TokenKind::RParen, "')'");
      }
    }
    skip_to_eos();
  } else {
    diags_->error(peek().loc,
                  "expected 'program' or 'subroutine', found " + peek().str());
    skip_to_eos();
  }

  // Declarations come before executable statements.
  while (parse_declaration(unit)) {
  }

  auto res = parse_stmt_list(unit.body, /*until_label=*/0);
  if (res.end != BlockEnd::UnitEnd) {
    diags_->error(peek().loc, "unexpected block terminator in unit '" +
                                  unit.name + "'");
  }
  current_unit_ = nullptr;
  return unit;
}

bool Parser::parse_declaration(ProgramUnit& unit) {
  while (accept(TokenKind::EndOfStatement)) {
  }
  const Token& t = peek();
  if (!t.is(TokenKind::Identifier)) return false;

  // `real x(...)` is a declaration, but `real(...)` as a statement start
  // cannot occur; `real = 3` would be an assignment to a variable named
  // real, which the subset rejects for sanity.
  if (t.text == "integer" && !peek(1).is(TokenKind::Equals)) {
    advance();
    parse_type_decl(unit, TypeKind::Integer);
    return true;
  }
  if (t.text == "real" && !peek(1).is(TokenKind::Equals)) {
    advance();
    parse_type_decl(unit, TypeKind::Real);
    return true;
  }
  if (t.text == "logical" && !peek(1).is(TokenKind::Equals)) {
    advance();
    parse_type_decl(unit, TypeKind::Logical);
    return true;
  }
  if (t.text == "double" && peek(1).is_word("precision")) {
    advance();
    advance();
    parse_type_decl(unit, TypeKind::DoublePrecision);
    return true;
  }
  if (t.text == "dimension") {
    advance();
    parse_dimension(unit);
    return true;
  }
  if (t.text == "parameter") {
    advance();
    parse_parameter(unit);
    return true;
  }
  if (t.text == "common") {
    advance();
    parse_common(unit);
    return true;
  }
  return false;
}

void Parser::parse_type_decl(ProgramUnit& unit, TypeKind type) {
  do {
    VarDecl decl;
    decl.type = type;
    decl.loc = peek().loc;
    if (const auto* t = expect(TokenKind::Identifier, "variable name")) {
      decl.name = t->text;
    } else {
      skip_to_eos();
      return;
    }
    if (peek().is(TokenKind::LParen)) {
      advance();
      decl.dims = parse_dim_list(unit);
    }
    if (auto* existing = [&]() -> VarDecl* {
          for (auto& d : unit.decls) {
            if (d.name == decl.name) return &d;
          }
          return nullptr;
        }()) {
      // `dimension v(...)` may have come first; merge the type in.
      existing->type = type;
      if (!decl.dims.empty()) existing->dims = std::move(decl.dims);
    } else {
      unit.decls.push_back(std::move(decl));
    }
  } while (accept(TokenKind::Comma));
  skip_to_eos();
}

void Parser::parse_dimension(ProgramUnit& unit) {
  do {
    const auto* t = expect(TokenKind::Identifier, "array name");
    if (!t) break;
    const std::string name = t->text;
    if (!expect(TokenKind::LParen, "'('")) break;
    auto dims = parse_dim_list(unit);
    if (auto* existing = [&]() -> VarDecl* {
          for (auto& d : unit.decls) {
            if (d.name == name) return &d;
          }
          return nullptr;
        }()) {
      existing->dims = std::move(dims);
    } else {
      VarDecl decl;
      decl.name = name;
      decl.type = TypeKind::Real;
      decl.dims = std::move(dims);
      decl.loc = t->loc;
      unit.decls.push_back(std::move(decl));
    }
  } while (accept(TokenKind::Comma));
  skip_to_eos();
}

std::vector<DimBound> Parser::parse_dim_list(ProgramUnit& unit) {
  // parse_dim_list is called mid-declaration; expressions in bounds may
  // reference parameters that are already declared.
  (void)unit;
  std::vector<DimBound> dims;
  do {
    DimBound b;
    b.upper = parse_expr();
    if (accept(TokenKind::Colon)) {
      b.lower = std::move(b.upper);
      b.upper = parse_expr();
    }
    dims.push_back(std::move(b));
  } while (accept(TokenKind::Comma));
  expect(TokenKind::RParen, "')' after dimensions");
  return dims;
}

void Parser::parse_parameter(ProgramUnit& unit) {
  if (!expect(TokenKind::LParen, "'(' after parameter")) {
    skip_to_eos();
    return;
  }
  do {
    ParamConst p;
    p.loc = peek().loc;
    if (const auto* t = expect(TokenKind::Identifier, "parameter name")) {
      p.name = t->text;
    } else {
      break;
    }
    if (!expect(TokenKind::Equals, "'='")) break;
    p.value = parse_expr();
    unit.params.push_back(std::move(p));
  } while (accept(TokenKind::Comma));
  expect(TokenKind::RParen, "')'");
  skip_to_eos();
}

void Parser::parse_common(ProgramUnit& unit) {
  CommonBlock blk;
  if (accept(TokenKind::Slash)) {
    if (const auto* t = expect(TokenKind::Identifier, "common block name")) {
      blk.block_name = t->text;
    }
    expect(TokenKind::Slash, "'/'");
  }
  do {
    if (const auto* t = expect(TokenKind::Identifier, "variable name")) {
      blk.vars.push_back(t->text);
      // Arrays may carry their dimensions in the common statement.
      if (peek().is(TokenKind::LParen)) {
        advance();
        auto dims = parse_dim_list(unit);
        if (auto* existing = [&]() -> VarDecl* {
              for (auto& d : unit.decls) {
                if (d.name == t->text) return &d;
              }
              return nullptr;
            }()) {
          existing->dims = std::move(dims);
        } else {
          VarDecl decl;
          decl.name = t->text;
          decl.type = TypeKind::Real;
          decl.dims = std::move(dims);
          decl.loc = t->loc;
          unit.decls.push_back(std::move(decl));
        }
      }
    } else {
      break;
    }
  } while (accept(TokenKind::Comma));
  unit.commons.push_back(std::move(blk));
  skip_to_eos();
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Parser::BlockResult Parser::parse_stmt_list(StmtList& out, int until_label) {
  while (true) {
    while (accept(TokenKind::EndOfStatement)) {
    }
    if (peek().is(TokenKind::EndOfFile)) {
      if (until_label != 0) {
        diags_->error(peek().loc, "unterminated labeled do loop");
      }
      return {BlockEnd::UnitEnd, 0};
    }

    int label = 0;
    if (peek().is(TokenKind::Label)) {
      label = static_cast<int>(advance().int_value);
    }

    const Token& t = peek();
    if (t.is(TokenKind::Identifier)) {
      if (t.text == "end") {
        if (peek(1).is_word("do")) {
          advance();
          advance();
          skip_to_eos();
          return {BlockEnd::EndDo, 0};
        }
        if (peek(1).is_word("if")) {
          advance();
          advance();
          skip_to_eos();
          return {BlockEnd::EndIf, 0};
        }
        if (peek(1).is(TokenKind::EndOfStatement) ||
            peek(1).is(TokenKind::EndOfFile)) {
          advance();
          skip_to_eos();
          return {BlockEnd::UnitEnd, 0};
        }
        // `enddo` / `endif` spellings
      }
      if (t.text == "enddo") {
        advance();
        skip_to_eos();
        return {BlockEnd::EndDo, 0};
      }
      if (t.text == "endif") {
        advance();
        skip_to_eos();
        return {BlockEnd::EndIf, 0};
      }
      if (t.text == "else") {
        advance();
        if (peek().is_word("if")) {
          advance();
          return {BlockEnd::ElseIf, 0};
        }
        skip_to_eos();
        return {BlockEnd::Else, 0};
      }
      if (t.text == "elseif") {
        advance();
        return {BlockEnd::ElseIf, 0};
      }
    }

    auto stmt = parse_statement(label);
    const bool is_terminator = until_label != 0 && label == until_label;
    if (stmt) {
      stmt->label = label;
      out.push_back(std::move(stmt));
    }
    if (is_terminator) return {BlockEnd::Label, label};
  }
}

StmtPtr Parser::parse_statement(int label) {
  (void)label;
  const Token& t = peek();
  const SourceLoc loc = t.loc;

  if (!t.is(TokenKind::Identifier)) {
    diags_->error(loc, "expected statement, found " + t.str());
    skip_to_eos();
    return nullptr;
  }

  if (t.text == "do" && looks_like_do()) {
    advance();
    return parse_do(loc);
  }
  if (t.text == "if" && peek(1).is(TokenKind::LParen)) {
    advance();
    return parse_if(loc);
  }
  if (t.text == "goto") {
    advance();
    auto s = make_stmt(StmtKind::Goto, loc);
    if (const auto* n = expect(TokenKind::IntLiteral, "label")) {
      s->goto_target = static_cast<int>(n->int_value);
    }
    skip_to_eos();
    return s;
  }
  if (t.text == "go" && peek(1).is_word("to")) {
    advance();
    advance();
    auto s = make_stmt(StmtKind::Goto, loc);
    if (const auto* n = expect(TokenKind::IntLiteral, "label")) {
      s->goto_target = static_cast<int>(n->int_value);
    }
    skip_to_eos();
    return s;
  }
  if (t.text == "continue") {
    advance();
    skip_to_eos();
    return make_stmt(StmtKind::Continue, loc);
  }
  if (t.text == "call") {
    advance();
    return parse_call(loc);
  }
  if (t.text == "return") {
    advance();
    skip_to_eos();
    return make_stmt(StmtKind::Return, loc);
  }
  if (t.text == "stop") {
    advance();
    skip_to_eos();
    return make_stmt(StmtKind::Stop, loc);
  }
  if (t.text == "read" && peek(1).is(TokenKind::LParen)) {
    advance();
    return parse_io(loc, StmtKind::Read);
  }
  if (t.text == "write" && peek(1).is(TokenKind::LParen)) {
    advance();
    return parse_io(loc, StmtKind::Write);
  }
  if (t.text == "print") {
    advance();
    auto s = make_stmt(StmtKind::Write, loc);
    accept(TokenKind::Star);
    while (accept(TokenKind::Comma)) {
      s->args.push_back(parse_expr());
    }
    skip_to_eos();
    return s;
  }

  return parse_assignment(loc);
}

bool Parser::looks_like_do() const {
  // `do [label] var =` begins a DO statement.
  int i = 1;
  if (peek(i).is(TokenKind::IntLiteral)) ++i;
  return peek(i).is(TokenKind::Identifier) && peek(i + 1).is(TokenKind::Equals);
}

StmtPtr Parser::parse_do(SourceLoc loc) {
  auto s = make_stmt(StmtKind::Do, loc);
  int end_label = 0;
  if (peek().is(TokenKind::IntLiteral)) {
    end_label = static_cast<int>(advance().int_value);
  }
  if (const auto* v = expect(TokenKind::Identifier, "loop variable")) {
    s->do_var = v->text;
  }
  expect(TokenKind::Equals, "'='");
  s->lo = parse_expr();
  expect(TokenKind::Comma, "','");
  s->hi = parse_expr();
  if (accept(TokenKind::Comma)) {
    s->step = parse_expr();
  }
  skip_to_eos();

  auto res = parse_stmt_list(s->body, end_label);
  if (end_label != 0) {
    if (res.end != BlockEnd::Label || res.label != end_label) {
      diags_->error(loc, "do loop terminator label " +
                             std::to_string(end_label) + " not found");
    }
  } else if (res.end != BlockEnd::EndDo) {
    diags_->error(loc, "expected 'end do'");
  }
  return s;
}

StmtPtr Parser::parse_if(SourceLoc loc) {
  auto s = make_stmt(StmtKind::If, loc);
  expect(TokenKind::LParen, "'('");
  s->cond = parse_expr();
  expect(TokenKind::RParen, "')'");

  if (!accept_word("then")) {
    // Logical IF: `if (cond) stmt` — one statement in the then-branch.
    auto inner = parse_statement(0);
    if (inner) s->body.push_back(std::move(inner));
    return s;
  }
  skip_to_eos();

  auto res = parse_stmt_list(s->body, 0);
  if (res.end == BlockEnd::ElseIf) {
    // Chain `else if (cond) then ... end if` as a nested If in the else
    // branch; the nested parse consumes up to the closing `end if`.
    s->else_body.push_back(parse_if(peek().loc));
    return s;
  }
  if (res.end == BlockEnd::Else) {
    res = parse_stmt_list(s->else_body, 0);
  }
  if (res.end != BlockEnd::EndIf) {
    diags_->error(loc, "expected 'end if'");
  }
  return s;
}

StmtPtr Parser::parse_call(SourceLoc loc) {
  auto s = make_stmt(StmtKind::Call, loc);
  if (const auto* t = expect(TokenKind::Identifier, "subroutine name")) {
    s->callee = t->text;
  }
  if (accept(TokenKind::LParen)) {
    if (!accept(TokenKind::RParen)) {
      do {
        s->args.push_back(parse_expr());
      } while (accept(TokenKind::Comma));
      expect(TokenKind::RParen, "')'");
    }
  }
  skip_to_eos();
  return s;
}

StmtPtr Parser::parse_io(SourceLoc loc, StmtKind kind) {
  auto s = make_stmt(kind, loc);
  expect(TokenKind::LParen, "'('");
  // unit: number or '*'
  if (peek().is(TokenKind::IntLiteral)) {
    s->str_value = "unit" + std::to_string(advance().int_value);
  } else {
    accept(TokenKind::Star);
  }
  if (accept(TokenKind::Comma)) {
    if (!accept(TokenKind::Star)) {
      if (peek().is(TokenKind::StringLiteral)) {
        s->str_value = advance().text;
      } else if (peek().is(TokenKind::IntLiteral)) {
        advance();  // format label, ignored by the subset
      }
    }
  }
  expect(TokenKind::RParen, "')'");
  if (!at_eos()) {
    do {
      s->args.push_back(parse_expr());
    } while (accept(TokenKind::Comma));
  }
  skip_to_eos();
  return s;
}

StmtPtr Parser::parse_assignment(SourceLoc loc) {
  auto s = make_stmt(StmtKind::Assign, loc);
  s->lhs = parse_primary();
  if (!s->lhs || (s->lhs->kind != ExprKind::VarRef &&
                  s->lhs->kind != ExprKind::ArrayRef)) {
    diags_->error(loc, "left-hand side of assignment must be a variable or "
                       "array element");
    skip_to_eos();
    return nullptr;
  }
  if (!expect(TokenKind::Equals, "'=' in assignment")) {
    skip_to_eos();
    return nullptr;
  }
  s->rhs = parse_expr();
  skip_to_eos();
  return s;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expr() { return parse_or(); }

ExprPtr Parser::parse_or() {
  auto lhs = parse_and();
  while (accept(TokenKind::DotOr)) {
    lhs = make_binary(BinOp::Or, std::move(lhs), parse_and());
  }
  return lhs;
}

ExprPtr Parser::parse_and() {
  auto lhs = parse_not();
  while (accept(TokenKind::DotAnd)) {
    lhs = make_binary(BinOp::And, std::move(lhs), parse_not());
  }
  return lhs;
}

ExprPtr Parser::parse_not() {
  if (accept(TokenKind::DotNot)) {
    return make_unary(UnOp::Not, parse_not());
  }
  return parse_relational();
}

ExprPtr Parser::parse_relational() {
  auto lhs = parse_additive();
  const auto op = [&]() -> BinOp {
    switch (peek().kind) {
      case TokenKind::DotLt: return BinOp::Lt;
      case TokenKind::DotLe: return BinOp::Le;
      case TokenKind::DotGt: return BinOp::Gt;
      case TokenKind::DotGe: return BinOp::Ge;
      case TokenKind::DotEq: return BinOp::Eq;
      case TokenKind::DotNe: return BinOp::Ne;
      default: return BinOp::Add;  // sentinel
    }
  }();
  if (op != BinOp::Add) {
    advance();
    return make_binary(op, std::move(lhs), parse_additive());
  }
  return lhs;
}

ExprPtr Parser::parse_additive() {
  auto lhs = parse_multiplicative();
  while (true) {
    if (accept(TokenKind::Plus)) {
      lhs = make_binary(BinOp::Add, std::move(lhs), parse_multiplicative());
    } else if (accept(TokenKind::Minus)) {
      lhs = make_binary(BinOp::Sub, std::move(lhs), parse_multiplicative());
    } else {
      return lhs;
    }
  }
}

ExprPtr Parser::parse_multiplicative() {
  auto lhs = parse_unary();
  while (true) {
    if (accept(TokenKind::Star)) {
      lhs = make_binary(BinOp::Mul, std::move(lhs), parse_unary());
    } else if (accept(TokenKind::Slash)) {
      lhs = make_binary(BinOp::Div, std::move(lhs), parse_unary());
    } else {
      return lhs;
    }
  }
}

ExprPtr Parser::parse_unary() {
  if (accept(TokenKind::Minus)) {
    return make_unary(UnOp::Neg, parse_unary());
  }
  if (accept(TokenKind::Plus)) {
    return parse_unary();
  }
  return parse_power();
}

ExprPtr Parser::parse_power() {
  auto base = parse_primary();
  if (accept(TokenKind::StarStar)) {
    // '**' is right associative.
    return make_binary(BinOp::Pow, std::move(base), parse_unary());
  }
  return base;
}

bool Parser::is_declared_array(std::string_view name) const {
  if (!current_unit_) return false;
  const auto* d = current_unit_->find_decl(name);
  return d != nullptr && d->is_array();
}

ExprPtr Parser::parse_primary() {
  const Token& t = peek();
  const SourceLoc loc = t.loc;
  switch (t.kind) {
    case TokenKind::IntLiteral:
    case TokenKind::Label: {
      advance();
      return make_int(t.int_value, loc);
    }
    case TokenKind::RealLiteral: {
      advance();
      return make_real(t.real_value, loc);
    }
    case TokenKind::StringLiteral: {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::StrLit;
      e->str_value = t.text;
      e->loc = loc;
      return e;
    }
    case TokenKind::DotTrue:
    case TokenKind::DotFalse: {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::LogicalLit;
      e->bool_value = t.kind == TokenKind::DotTrue;
      e->loc = loc;
      return e;
    }
    case TokenKind::LParen: {
      advance();
      auto e = parse_expr();
      expect(TokenKind::RParen, "')'");
      return e;
    }
    case TokenKind::Identifier: {
      advance();
      const std::string name = t.text;
      if (!peek().is(TokenKind::LParen)) {
        return make_var(name, loc);
      }
      advance();  // '('
      std::vector<ExprPtr> args;
      if (!peek().is(TokenKind::RParen)) {
        do {
          args.push_back(parse_expr());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "')'");
      if (is_declared_array(name)) {
        return make_array_ref(name, std::move(args), loc);
      }
      if (is_intrinsic_name(name)) {
        auto e = make_intrinsic(name, std::move(args));
        e->loc = loc;
        return e;
      }
      diags_->error(loc, "'" + name +
                             "' is neither a declared array nor an intrinsic "
                             "(user functions are outside the subset)");
      return make_var(name, loc);
    }
    default:
      diags_->error(loc, "expected expression, found " + t.str());
      advance();
      return make_int(0, loc);
  }
}

// ---------------------------------------------------------------------------

SourceFile parse_source(std::string_view source, DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.tokenize(), diags);
  auto file = parser.parse_file();
  assign_stmt_ids(file);
  return file;
}

SourceFile parse_source(std::string_view source) {
  DiagnosticEngine diags;
  auto file = parse_source(source, diags);
  throw_if_errors(diags, "parse");
  return file;
}

}  // namespace autocfd::fortran

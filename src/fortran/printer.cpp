#include "autocfd/fortran/printer.hpp"

#include <cmath>
#include <sstream>

namespace autocfd::fortran {

namespace {

int precedence(BinOp op) {
  switch (op) {
    case BinOp::Or: return 1;
    case BinOp::And: return 2;
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
    case BinOp::Eq:
    case BinOp::Ne: return 3;
    case BinOp::Add:
    case BinOp::Sub: return 4;
    case BinOp::Mul:
    case BinOp::Div: return 5;
    case BinOp::Pow: return 6;
  }
  return 0;
}

void print_expr_rec(const Expr& e, std::ostringstream& os, int parent_prec);

void print_args(const std::vector<ExprPtr>& args, std::ostringstream& os) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) os << ", ";
    print_expr_rec(*args[i], os, 0);
  }
}

void print_expr_rec(const Expr& e, std::ostringstream& os, int parent_prec) {
  switch (e.kind) {
    case ExprKind::IntLit:
      os << e.int_value;
      return;
    case ExprKind::RealLit: {
      std::ostringstream num;
      num << e.real_value;
      auto s = num.str();
      // Ensure the literal still reads as a real.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      os << s;
      return;
    }
    case ExprKind::StrLit:
      os << '\'' << e.str_value << '\'';
      return;
    case ExprKind::LogicalLit:
      os << (e.bool_value ? ".true." : ".false.");
      return;
    case ExprKind::VarRef:
      os << e.name;
      return;
    case ExprKind::ArrayRef:
    case ExprKind::Intrinsic:
      os << e.name << '(';
      print_args(e.args, os);
      os << ')';
      return;
    case ExprKind::Unary: {
      switch (e.un_op) {
        case UnOp::Neg: os << "-"; break;
        case UnOp::Plus: os << "+"; break;
        case UnOp::Not: os << ".not. "; break;
      }
      os << '(';
      print_expr_rec(*e.args[0], os, 0);
      os << ')';
      return;
    }
    case ExprKind::Binary: {
      const int prec = precedence(e.bin_op);
      const bool need_parens = prec < parent_prec;
      if (need_parens) os << '(';
      print_expr_rec(*e.args[0], os, prec);
      const auto sp = bin_op_spelling(e.bin_op);
      if (sp.front() == '.') {
        os << ' ' << sp << ' ';
      } else {
        os << sp;
      }
      // Right child gets prec+1 so equal-precedence right children are
      // parenthesized (a-(b-c) must not print as a-b-c).
      print_expr_rec(*e.args[1], os, prec + 1);
      if (need_parens) os << ')';
      return;
    }
  }
}

class StmtPrinter {
 public:
  StmtPrinter(const PrintOptions& opts, std::ostringstream& os)
      : opts_(opts), os_(os) {}

  void print(const Stmt& s, int indent) {
    pad(indent, s.label);
    switch (s.kind) {
      case StmtKind::Assign:
        os_ << print_expr(*s.lhs) << " = " << print_expr(*s.rhs) << '\n';
        return;
      case StmtKind::Do:
        os_ << "do " << s.do_var << " = " << print_expr(*s.lo) << ", "
            << print_expr(*s.hi);
        if (s.step) os_ << ", " << print_expr(*s.step);
        os_ << '\n';
        print_list(s.body, indent + 1);
        pad(indent, 0);
        os_ << "end do\n";
        return;
      case StmtKind::If:
        os_ << "if (" << print_expr(*s.cond) << ") then\n";
        print_list(s.body, indent + 1);
        if (!s.else_body.empty()) {
          pad(indent, 0);
          os_ << "else\n";
          print_list(s.else_body, indent + 1);
        }
        pad(indent, 0);
        os_ << "end if\n";
        return;
      case StmtKind::Goto:
        os_ << "goto " << s.goto_target << '\n';
        return;
      case StmtKind::Continue:
        os_ << "continue\n";
        return;
      case StmtKind::Call:
        os_ << "call " << s.callee;
        if (!s.args.empty()) {
          os_ << '(';
          args(s.args);
          os_ << ')';
        }
        os_ << '\n';
        return;
      case StmtKind::Return:
        os_ << "return\n";
        return;
      case StmtKind::Stop:
        os_ << "stop\n";
        return;
      case StmtKind::Read:
        os_ << "read(5,*) ";
        args(s.args);
        os_ << '\n';
        return;
      case StmtKind::Write:
        os_ << "write(6,*) ";
        args(s.args);
        os_ << '\n';
        return;
      case StmtKind::HaloExchange: {
        if (!opts_.extensions_as_mpi_calls) {
          os_ << "!$acfd halo-exchange";
          for (const auto& h : s.halo_arrays) os_ << ' ' << h.array;
          os_ << '\n';
          return;
        }
        os_ << "call acfd_halo_exchange(" << s.halo_arrays.size();
        for (const auto& h : s.halo_arrays) {
          os_ << ", " << h.array;
        }
        os_ << ")  ! aggregated mpi_sendrecv per neighbor\n";
        return;
      }
      case StmtKind::AllReduce:
        if (!opts_.extensions_as_mpi_calls) {
          os_ << "!$acfd allreduce " << s.reduce_var << '\n';
          return;
        }
        os_ << "call mpi_allreduce(" << s.reduce_var << ", " << s.reduce_var
            << ", 1, mpi_real, mpi_" << (s.callee.empty() ? "max" : s.callee)
            << ", mpi_comm_world, ierr)\n";
        return;
      case StmtKind::PipelineStart:
        os_ << "call acfd_pipeline_recv(dim=" << s.pipeline_dim
            << ", dir=" << s.pipeline_dir << ")  ! mirror-image sweep entry\n";
        return;
      case StmtKind::PipelineEnd:
        os_ << "call acfd_pipeline_send(dim=" << s.pipeline_dim
            << ", dir=" << s.pipeline_dir << ")  ! mirror-image sweep exit\n";
        return;
      case StmtKind::Barrier:
        os_ << "call mpi_barrier(mpi_comm_world, ierr)\n";
        return;
    }
  }

  void print_list(const StmtList& list, int indent) {
    for (const auto& s : list) print(*s, indent);
  }

 private:
  void pad(int indent, int label) {
    std::string lead;
    if (label != 0) {
      lead = std::to_string(label) + ' ';
    }
    const int width = 6 + indent * opts_.indent_width;
    while (static_cast<int>(lead.size()) < width) lead += ' ';
    os_ << lead;
  }

  void args(const std::vector<ExprPtr>& a) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) os_ << ", ";
      os_ << print_expr(*a[i]);
    }
  }

  const PrintOptions& opts_;
  std::ostringstream& os_;
};

}  // namespace

std::string print_expr(const Expr& expr) {
  std::ostringstream os;
  print_expr_rec(expr, os, 0);
  return os.str();
}

std::string print_stmt(const Stmt& stmt, const PrintOptions& opts,
                       int indent) {
  std::ostringstream os;
  StmtPrinter p(opts, os);
  p.print(stmt, indent);
  return os.str();
}

std::string print_unit(const ProgramUnit& unit, const PrintOptions& opts) {
  std::ostringstream os;
  if (unit.kind == UnitKind::Program) {
    os << "      program " << unit.name << '\n';
  } else {
    os << "      subroutine " << unit.name;
    if (!unit.formal_args.empty()) {
      os << '(';
      for (std::size_t i = 0; i < unit.formal_args.size(); ++i) {
        if (i) os << ", ";
        os << unit.formal_args[i];
      }
      os << ')';
    }
    os << '\n';
  }
  for (const auto& d : unit.decls) {
    os << "      " << type_kind_name(d.type) << ' ' << d.name;
    if (d.is_array()) {
      os << '(';
      for (std::size_t i = 0; i < d.dims.size(); ++i) {
        if (i) os << ", ";
        if (d.dims[i].lower) os << print_expr(*d.dims[i].lower) << ':';
        os << print_expr(*d.dims[i].upper);
      }
      os << ')';
    }
    os << '\n';
  }
  for (const auto& p : unit.params) {
    os << "      parameter (" << p.name << " = " << print_expr(*p.value)
       << ")\n";
  }
  for (const auto& c : unit.commons) {
    os << "      common /" << c.block_name << "/ ";
    for (std::size_t i = 0; i < c.vars.size(); ++i) {
      if (i) os << ", ";
      os << c.vars[i];
    }
    os << '\n';
  }
  StmtPrinter p(opts, os);
  p.print_list(unit.body, 0);
  os << "      end\n";
  return os.str();
}

std::string print_file(const SourceFile& file, const PrintOptions& opts) {
  std::string out;
  for (const auto& u : file.units) {
    out += print_unit(u, opts);
    out += '\n';
  }
  return out;
}

}  // namespace autocfd::fortran

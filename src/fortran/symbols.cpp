#include "autocfd/fortran/symbols.hpp"

#include <algorithm>
#include <cmath>

namespace autocfd::fortran {

ConstEvaluator::ConstEvaluator(const ProgramUnit& unit) {
  for (const auto& p : unit.params) {
    params_[p.name] = p.value.get();
  }
}

std::optional<long long> ConstEvaluator::eval_int(const Expr& e) const {
  switch (e.kind) {
    case ExprKind::IntLit:
      return e.int_value;
    case ExprKind::VarRef: {
      const auto it = params_.find(e.name);
      if (it == params_.end()) return std::nullopt;
      return eval_int(*it->second);
    }
    case ExprKind::Unary: {
      const auto v = eval_int(*e.args[0]);
      if (!v) return std::nullopt;
      switch (e.un_op) {
        case UnOp::Neg: return -*v;
        case UnOp::Plus: return *v;
        case UnOp::Not: return std::nullopt;
      }
      return std::nullopt;
    }
    case ExprKind::Binary: {
      const auto a = eval_int(*e.args[0]);
      const auto b = eval_int(*e.args[1]);
      if (!a || !b) return std::nullopt;
      switch (e.bin_op) {
        case BinOp::Add: return *a + *b;
        case BinOp::Sub: return *a - *b;
        case BinOp::Mul: return *a * *b;
        case BinOp::Div: return *b == 0 ? std::nullopt : std::optional(*a / *b);
        case BinOp::Pow: {
          long long r = 1;
          for (long long i = 0; i < *b; ++i) r *= *a;
          return r;
        }
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

std::optional<double> ConstEvaluator::eval_real(const Expr& e) const {
  switch (e.kind) {
    case ExprKind::RealLit:
      return e.real_value;
    case ExprKind::IntLit:
      return static_cast<double>(e.int_value);
    case ExprKind::VarRef: {
      const auto it = params_.find(e.name);
      if (it == params_.end()) return std::nullopt;
      return eval_real(*it->second);
    }
    case ExprKind::Unary: {
      const auto v = eval_real(*e.args[0]);
      if (!v) return std::nullopt;
      return e.un_op == UnOp::Neg ? -*v : *v;
    }
    case ExprKind::Binary: {
      const auto a = eval_real(*e.args[0]);
      const auto b = eval_real(*e.args[1]);
      if (!a || !b) return std::nullopt;
      switch (e.bin_op) {
        case BinOp::Add: return *a + *b;
        case BinOp::Sub: return *a - *b;
        case BinOp::Mul: return *a * *b;
        case BinOp::Div: return *a / *b;
        case BinOp::Pow: return std::pow(*a, *b);
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

long long ArrayShape::element_count() const {
  long long n = 1;
  for (const auto& d : dims) n *= d.extent();
  return n;
}

SymbolTable SymbolTable::build(const ProgramUnit& unit,
                               DiagnosticEngine& diags) {
  SymbolTable table;
  ConstEvaluator eval(unit);
  for (const auto& d : unit.decls) {
    table.decls_[d.name] = &d;
    if (!d.is_array()) continue;
    ArrayShape shape;
    bool ok = true;
    for (const auto& dim : d.dims) {
      ArrayShape::Dim out;
      if (dim.lower) {
        const auto lo = eval.eval_int(*dim.lower);
        if (!lo) {
          diags.error(d.loc, "array '" + d.name +
                                 "': lower bound is not a compile-time "
                                 "constant");
          ok = false;
          break;
        }
        out.lower = *lo;
      }
      const auto hi = eval.eval_int(*dim.upper);
      if (!hi) {
        diags.error(d.loc, "array '" + d.name +
                               "': upper bound is not a compile-time "
                               "constant (adjustable arrays are outside "
                               "the subset)");
        ok = false;
        break;
      }
      out.upper = *hi;
      if (out.upper < out.lower) {
        diags.error(d.loc, "array '" + d.name + "': empty dimension");
        ok = false;
        break;
      }
      shape.dims.push_back(out);
    }
    if (ok) table.shapes_[d.name] = std::move(shape);
  }
  return table;
}

const ArrayShape* SymbolTable::shape(std::string_view array) const {
  const auto it = shapes_.find(std::string(array));
  return it == shapes_.end() ? nullptr : &it->second;
}

const VarDecl* SymbolTable::decl(std::string_view name) const {
  const auto it = decls_.find(std::string(name));
  return it == decls_.end() ? nullptr : it->second;
}

GlobalSymbols GlobalSymbols::build(const SourceFile& file,
                                   DiagnosticEngine& diags) {
  GlobalSymbols g;
  for (const auto& unit : file.units) {
    g.unit_tables_.emplace(unit.name, SymbolTable::build(unit, diags));
  }
  for (const auto& unit : file.units) {
    const auto& table = g.unit_tables_.at(unit.name);
    for (const auto& c : unit.commons) {
      for (const auto& var : c.vars) {
        if (const auto* shape = table.shape(var)) {
          const auto it = g.global_arrays_.find(var);
          if (it == g.global_arrays_.end()) {
            g.global_arrays_[var] = *shape;
          } else if (!(it->second == *shape)) {
            diags.error(unit.loc,
                        "common array '" + var +
                            "' declared with inconsistent shapes across "
                            "units (the subset matches common storage by "
                            "name)");
          }
        } else {
          if (std::find(g.global_scalars_.begin(), g.global_scalars_.end(),
                        var) == g.global_scalars_.end()) {
            g.global_scalars_.push_back(var);
          }
        }
      }
    }
  }
  return g;
}

bool GlobalSymbols::is_global(std::string_view name) const {
  if (global_arrays_.contains(std::string(name))) return true;
  return std::find(global_scalars_.begin(), global_scalars_.end(), name) !=
         global_scalars_.end();
}

const ArrayShape* GlobalSymbols::global_shape(std::string_view name) const {
  const auto it = global_arrays_.find(std::string(name));
  return it == global_arrays_.end() ? nullptr : &it->second;
}

const SymbolTable* GlobalSymbols::unit_table(std::string_view unit) const {
  const auto it = unit_tables_.find(std::string(unit));
  return it == unit_tables_.end() ? nullptr : &it->second;
}

}  // namespace autocfd::fortran

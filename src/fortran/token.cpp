#include "autocfd/fortran/token.hpp"

#include <sstream>

namespace autocfd::fortran {

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::EndOfFile: return "end-of-file";
    case TokenKind::EndOfStatement: return "end-of-statement";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::RealLiteral: return "real literal";
    case TokenKind::StringLiteral: return "string literal";
    case TokenKind::Label: return "label";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::Comma: return "','";
    case TokenKind::Colon: return "':'";
    case TokenKind::Equals: return "'='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::StarStar: return "'**'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::DotLt: return "'.lt.'";
    case TokenKind::DotLe: return "'.le.'";
    case TokenKind::DotGt: return "'.gt.'";
    case TokenKind::DotGe: return "'.ge.'";
    case TokenKind::DotEq: return "'.eq.'";
    case TokenKind::DotNe: return "'.ne.'";
    case TokenKind::DotAnd: return "'.and.'";
    case TokenKind::DotOr: return "'.or.'";
    case TokenKind::DotNot: return "'.not.'";
    case TokenKind::DotTrue: return "'.true.'";
    case TokenKind::DotFalse: return "'.false.'";
  }
  return "unknown";
}

std::string Token::str() const {
  std::ostringstream os;
  os << token_kind_name(kind);
  if (!text.empty()) os << " '" << text << "'";
  return os.str();
}

}  // namespace autocfd::fortran

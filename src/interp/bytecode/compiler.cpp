// Compiles Assign statements and DO-loop nests into flat register
// programs (see bytecode.hpp for the execution model and the exact
// equivalence contract with the tree-walker).
#include <functional>
#include <set>
#include <unordered_map>

#include "autocfd/interp/bytecode.hpp"

namespace autocfd::interp::bytecode {

using fortran::BinOp;
using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;

namespace {

/// Statements the compiler accepts. Everything else (io, calls, goto,
/// parallel extension statements) stays on the tree-walker, which
/// still routes nested compilable loops back through the engine.
bool compilable_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::RealLit:
    case ExprKind::LogicalLit:
      return true;
    case ExprKind::StrLit:
      return false;  // strings only appear in io statements
    case ExprKind::VarRef:
      return e.slot >= 0;
    case ExprKind::ArrayRef:
      if (e.slot < 0 || e.args.empty() || e.args.size() > 8) return false;
      break;
    case ExprKind::Unary:
    case ExprKind::Binary:
      break;
    case ExprKind::Intrinsic: {
      if (e.slot < 0) return false;
      const auto op = static_cast<Intrinsic>(e.slot);
      const bool binary = op == Intrinsic::Atan2 || op == Intrinsic::Mod ||
                          op == Intrinsic::Sign;
      if (binary && e.args.size() < 2) return false;
      break;
    }
  }
  for (const auto& a : e.args) {
    if (!a || !compilable_expr(*a)) return false;
  }
  return true;
}

bool compilable_stmt(const Stmt& s);

bool compilable_body(const fortran::StmtList& body) {
  for (const auto& st : body) {
    if (!st || !compilable_stmt(*st)) return false;
  }
  return true;
}

bool compilable_stmt(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Assign: {
      if (!s.lhs || !s.rhs || !compilable_expr(*s.rhs)) return false;
      if (s.lhs->kind == ExprKind::VarRef) return s.lhs->slot >= 0;
      return s.lhs->kind == ExprKind::ArrayRef && compilable_expr(*s.lhs);
    }
    case StmtKind::Do:
      return s.slot >= 0 && s.lo && compilable_expr(*s.lo) && s.hi &&
             compilable_expr(*s.hi) && (!s.step || compilable_expr(*s.step)) &&
             compilable_body(s.body);
    case StmtKind::If:
      return s.cond && compilable_expr(*s.cond) && compilable_body(s.body) &&
             compilable_body(s.else_body);
    case StmtKind::Continue:
    case StmtKind::Return:
    case StmtKind::Stop:
      return true;
    default:
      return false;
  }
}

/// True when the subtree can end an iteration early (RETURN/STOP):
/// strength reduction is disabled for such loops because a hoisted
/// bounds check could fire for iterations that never execute.
bool has_early_exit(const fortran::StmtList& body) {
  for (const auto& st : body) {
    if (st->kind == StmtKind::Return || st->kind == StmtKind::Stop) {
      return true;
    }
    if (has_early_exit(st->body) || has_early_exit(st->else_body)) {
      return true;
    }
  }
  return false;
}

/// Collects every scalar slot assigned anywhere in `body` (assignment
/// targets and nested DO induction variables) — the set a subscript
/// must avoid to count as loop-invariant.
void collect_assigned(const fortran::StmtList& body, std::set<int>& out) {
  for (const auto& st : body) {
    if (st->kind == StmtKind::Assign &&
        st->lhs->kind == ExprKind::VarRef) {
      out.insert(st->lhs->slot);
    }
    if (st->kind == StmtKind::Do) out.insert(st->slot);
    collect_assigned(st->body, out);
    collect_assigned(st->else_body, out);
  }
}

/// Matches `v`, `v + c`, `c + v`, `v - c` against induction slot `v`.
bool affine_in(const Expr& e, int var_slot, long long* offset) {
  if (e.kind == ExprKind::VarRef && e.slot == var_slot) {
    *offset = 0;
    return true;
  }
  if (e.kind != ExprKind::Binary) return false;
  if (e.bin_op != BinOp::Add && e.bin_op != BinOp::Sub) return false;
  const Expr& l = *e.args[0];
  const Expr& r = *e.args[1];
  if (l.kind == ExprKind::VarRef && l.slot == var_slot &&
      r.kind == ExprKind::IntLit) {
    *offset = e.bin_op == BinOp::Add ? r.int_value : -r.int_value;
    return true;
  }
  if (e.bin_op == BinOp::Add && r.kind == ExprKind::VarRef &&
      r.slot == var_slot && l.kind == ExprKind::IntLit) {
    *offset = l.int_value;
    return true;
  }
  return false;
}

/// Pure w.r.t. the loop: no array reads, no banned scalars.
bool invariant_expr(const Expr& e, const std::set<int>& banned) {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::RealLit:
    case ExprKind::LogicalLit:
      return true;
    case ExprKind::StrLit:
    case ExprKind::ArrayRef:
      return false;
    case ExprKind::VarRef:
      return banned.count(e.slot) == 0;
    case ExprKind::Unary:
    case ExprKind::Binary:
    case ExprKind::Intrinsic:
      break;
  }
  for (const auto& a : e.args) {
    if (!invariant_expr(*a, banned)) return false;
  }
  return true;
}

void for_each_array_ref(const Expr& e,
                        const std::function<void(const Expr&)>& fn) {
  if (e.kind == ExprKind::ArrayRef) fn(e);
  for (const auto& a : e.args) {
    if (a) for_each_array_ref(*a, fn);
  }
}

}  // namespace

/// One compilation of one statement (friend of Program).
class Compiler {
 public:
  Compiler(const ProgramImage* image, EngineStats* stats)
      : image_(image), stats_(stats) {}

  std::unique_ptr<Program> compile(const Stmt& s) {
    if (!compilable_stmt(s) ||
        (s.kind != StmtKind::Do && s.kind != StmtKind::Assign)) {
      return nullptr;
    }
    prog_ = std::make_unique<Program>();
    if (s.kind == StmtKind::Do) {
      emit_do(s);
      ++stats_->kernels_compiled;
    } else {
      emit_assign(s);
      ++stats_->stmts_compiled;
    }
    emit(Op::Halt);
    prog_->num_regs_ = nregs_;
    stats_->instrs_emitted += static_cast<long long>(prog_->code_.size());
    return std::move(prog_);
  }

 private:
  int alloc(int n = 1) {
    const int r = nregs_;
    nregs_ += n;
    return r;
  }

  int emit(Op op, int a = 0, int b = 0, int c = 0, int d = 0,
           double imm = 0.0) {
    prog_->code_.push_back(Instr{op, a, b, c, d, imm});
    return static_cast<int>(prog_->code_.size()) - 1;
  }

  int here() const { return static_cast<int>(prog_->code_.size()); }

  // --- expressions --------------------------------------------------

  void emit_expr(const Expr& e, int dst) {
    switch (e.kind) {
      case ExprKind::IntLit:
        emit(Op::Imm, dst, 0, 0, 0, static_cast<double>(e.int_value));
        return;
      case ExprKind::RealLit:
        emit(Op::Imm, dst, 0, 0, 0, e.real_value);
        return;
      case ExprKind::LogicalLit:
        emit(Op::Imm, dst, 0, 0, 0, e.bool_value ? 1.0 : 0.0);
        return;
      case ExprKind::StrLit:
        emit(Op::Imm, dst, 0, 0, 0, 0.0);  // unreachable (rejected)
        return;
      case ExprKind::VarRef:
        emit(Op::LoadScalar, dst, e.slot);
        return;
      case ExprKind::ArrayRef: {
        if (const auto it = walk_of_.find(&e); it != walk_of_.end()) {
          emit(Op::LoadWalk, dst, e.slot, it->second);
          return;
        }
        const int n = static_cast<int>(e.args.size());
        const int base = alloc(n);
        for (int k = 0; k < n; ++k) {
          emit_expr(*e.args[static_cast<std::size_t>(k)], base + k);
        }
        emit(Op::LoadElem, dst, e.slot, base, n);
        return;
      }
      case ExprKind::Unary: {
        if (e.un_op == fortran::UnOp::Plus) {
          emit_expr(*e.args[0], dst);
          return;
        }
        const int t = alloc();
        emit_expr(*e.args[0], t);
        emit(e.un_op == fortran::UnOp::Neg ? Op::Neg : Op::Not, dst, t);
        return;
      }
      case ExprKind::Binary:
        emit_binary(e, dst);
        return;
      case ExprKind::Intrinsic: {
        const int n = static_cast<int>(e.args.size());
        const int base = alloc(n);
        for (int k = 0; k < n; ++k) {
          emit_expr(*e.args[static_cast<std::size_t>(k)], base + k);
        }
        emit(Op::Intrin, dst, e.slot, base, n);
        return;
      }
    }
  }

  void emit_binary(const Expr& e, int dst) {
    // Short-circuit logicals become branches, exactly mirroring the
    // tree-walker (the right operand of .and. must not be evaluated —
    // it may index an array out of bounds).
    if (e.bin_op == BinOp::And) {
      const int t = alloc();
      emit_expr(*e.args[0], t);
      const int j0 = emit(Op::JumpIfZero, t);
      emit_expr(*e.args[1], t);
      const int j1 = emit(Op::JumpIfZero, t);
      emit(Op::Imm, dst, 0, 0, 0, 1.0);
      const int j2 = emit(Op::Jump);
      prog_->code_[static_cast<std::size_t>(j0)].b = here();
      prog_->code_[static_cast<std::size_t>(j1)].b = here();
      emit(Op::Imm, dst, 0, 0, 0, 0.0);
      prog_->code_[static_cast<std::size_t>(j2)].a = here();
      return;
    }
    if (e.bin_op == BinOp::Or) {
      const int t = alloc();
      emit_expr(*e.args[0], t);
      const int j0 = emit(Op::JumpIfNotZero, t);
      emit_expr(*e.args[1], t);
      const int j1 = emit(Op::JumpIfNotZero, t);
      emit(Op::Imm, dst, 0, 0, 0, 0.0);
      const int j2 = emit(Op::Jump);
      prog_->code_[static_cast<std::size_t>(j0)].b = here();
      prog_->code_[static_cast<std::size_t>(j1)].b = here();
      emit(Op::Imm, dst, 0, 0, 0, 1.0);
      prog_->code_[static_cast<std::size_t>(j2)].a = here();
      return;
    }
    const int t1 = alloc();
    const int t2 = alloc();
    emit_expr(*e.args[0], t1);
    emit_expr(*e.args[1], t2);
    Op op = Op::Add;
    switch (e.bin_op) {
      case BinOp::Add: op = Op::Add; break;
      case BinOp::Sub: op = Op::Sub; break;
      case BinOp::Mul: op = Op::Mul; break;
      case BinOp::Div: op = Op::Div; break;
      case BinOp::Pow: op = Op::Pow; break;
      case BinOp::Lt: op = Op::Lt; break;
      case BinOp::Le: op = Op::Le; break;
      case BinOp::Gt: op = Op::Gt; break;
      case BinOp::Ge: op = Op::Ge; break;
      case BinOp::Eq: op = Op::CmpEq; break;
      case BinOp::Ne: op = Op::CmpNe; break;
      default: break;  // And/Or handled above
    }
    emit(op, dst, t1, t2);
  }

  // --- statements ---------------------------------------------------

  void emit_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign:
        emit_assign(s);
        return;
      case StmtKind::Do:
        emit_do(s);
        return;
      case StmtKind::If: {
        const int rc = alloc();
        emit_expr(*s.cond, rc);
        const int jz = emit(Op::JumpIfZero, rc);
        for (const auto& st : s.body) emit_stmt(*st);
        if (s.else_body.empty()) {
          prog_->code_[static_cast<std::size_t>(jz)].b = here();
        } else {
          const int j = emit(Op::Jump);
          prog_->code_[static_cast<std::size_t>(jz)].b = here();
          for (const auto& st : s.else_body) emit_stmt(*st);
          prog_->code_[static_cast<std::size_t>(j)].a = here();
        }
        return;
      }
      case StmtKind::Continue:
        return;
      case StmtKind::Return:
        emit(Op::Ret);
        return;
      case StmtKind::Stop:
        emit(Op::StopProg);
        return;
      default:
        return;  // unreachable: rejected by compilable_stmt
    }
  }

  void emit_assign(const Stmt& s) {
    const Expr& lhs = *s.lhs;
    const int rv = alloc();
    emit_expr(*s.rhs, rv);
    if (s.flops != 0.0) emit(Op::AddFlops, 0, 0, 0, 0, s.flops);
    if (lhs.kind == ExprKind::VarRef) {
      emit(Op::StoreScalar, rv, lhs.slot);
      return;
    }
    prog_->stmts_.push_back(&s);
    emit(Op::CheckFinite, rv,
         static_cast<int>(prog_->stmts_.size()) - 1);
    if (const auto it = walk_of_.find(&lhs); it != walk_of_.end()) {
      emit(Op::StoreWalk, rv, lhs.slot, it->second);
      return;
    }
    const int n = static_cast<int>(lhs.args.size());
    const int base = alloc(n);
    for (int k = 0; k < n; ++k) {
      emit_expr(*lhs.args[static_cast<std::size_t>(k)], base + k);
    }
    emit(Op::StoreElem, rv, lhs.slot, base, n);
  }

  /// Registers strength-reducible array references of the loop's
  /// straight-line assignments (not inside If branches — those may not
  /// execute every iteration, so their bounds checks cannot be
  /// hoisted).
  void collect_walks(const Stmt& s, int loop_index,
                     const std::set<int>& banned,
                     std::vector<const Expr*>* refs) {
    if (has_early_exit(s.body)) return;
    const auto consider = [&](const Expr& e) {
      if (e.slot < 0 || e.args.empty() || e.args.size() > 8) return;
      if (walk_of_.count(&e)) return;
      WalkDesc desc;
      desc.array_slot = e.slot;
      desc.loop = loop_index;
      for (const auto& sub : e.args) {
        WalkDim dim;
        if (affine_in(*sub, s.slot, &dim.offset)) {
          dim.affine = true;
        } else if (invariant_expr(*sub, banned)) {
          dim.affine = false;
        } else {
          return;  // general per-iteration access
        }
        desc.dims.push_back(dim);
      }
      walk_of_[&e] = static_cast<int>(prog_->walks_.size());
      refs->push_back(&e);
      prog_->walks_.push_back(std::move(desc));
      prog_->loops_[static_cast<std::size_t>(loop_index)].walks.push_back(
          walk_of_[&e]);
      ++stats_->walks_reduced;
    };
    for (const auto& st : s.body) {
      if (st->kind != StmtKind::Assign) continue;
      for_each_array_ref(*st->rhs, consider);
      for_each_array_ref(*st->lhs, consider);
    }
  }

  void emit_do(const Stmt& s) {
    const int r_lo = alloc();
    emit_expr(*s.lo, r_lo);
    const int r_hi = alloc();
    emit_expr(*s.hi, r_hi);
    const int r_step = alloc();
    if (s.step) {
      emit_expr(*s.step, r_step);
    } else {
      emit(Op::Imm, r_step, 0, 0, 0, 1.0);
    }
    const int li = static_cast<int>(prog_->loops_.size());
    prog_->loops_.push_back(LoopDesc{s.slot, 0, 0, {}});
    emit(Op::LoopBegin, li, r_lo, r_hi, r_step);

    // Loop preheader: invariant subscript values, then the hoisted
    // index setup of every walk. Skipped entirely on zero-trip loops.
    std::set<int> banned;
    banned.insert(s.slot);
    collect_assigned(s.body, banned);
    std::vector<const Expr*> refs;
    collect_walks(s, li, banned, &refs);
    for (std::size_t r = 0; r < refs.size(); ++r) {
      const Expr& e = *refs[r];
      const int w = walk_of_.at(&e);
      auto& desc = prog_->walks_[static_cast<std::size_t>(w)];
      for (std::size_t d = 0; d < desc.dims.size(); ++d) {
        if (desc.dims[d].affine) continue;
        const int reg = alloc();
        emit_expr(*e.args[d], reg);
        desc.dims[d].reg = reg;
      }
      emit(Op::WalkInit, w);
    }

    auto& ld = prog_->loops_[static_cast<std::size_t>(li)];
    ld.body_pc = here();
    for (const auto& st : s.body) emit_stmt(*st);
    emit(Op::LoopNext, li);
    prog_->loops_[static_cast<std::size_t>(li)].exit_pc = here();
  }

  const ProgramImage* image_;
  EngineStats* stats_;
  std::unique_ptr<Program> prog_;
  int nregs_ = 0;
  std::unordered_map<const Expr*, int> walk_of_;
};

const Program* BytecodeEngine::compiled(const Stmt& s) {
  if (const auto it = cache_.find(&s); it != cache_.end()) {
    if (it->second) ++stats_.cache_hits;
    return it->second.get();
  }
  auto prog = Compiler(image_, &stats_).compile(s);
  if (!prog) ++stats_.compile_rejects;
  const auto* p = prog.get();
  cache_.emplace(&s, std::move(prog));
  return p;
}

}  // namespace autocfd::interp::bytecode

// Dispatch loop for compiled programs. Every operation here must stay
// bit-identical to the tree-walker (see the header contract); the
// scalar math is shared via eval_ops.hpp.
#include <cmath>
#include <string>

#include "autocfd/interp/bytecode.hpp"
#include "autocfd/interp/eval_ops.hpp"

namespace autocfd::interp::bytecode {

namespace {

[[noreturn]] void throw_oob(int dim, long long value, long long lo,
                            long long hi) {
  // Same format as ArrayValue::index so the engines fail identically.
  throw autocfd::CompileError(
      "array subscript out of bounds: dim " + std::to_string(dim + 1) +
      " value " + std::to_string(value) + " not in [" + std::to_string(lo) +
      ", " + std::to_string(hi) + "]");
}

}  // namespace

ExecSignal Program::execute(Env& env, double& flops) const {
  if (regs_.size() < static_cast<std::size_t>(num_regs_)) {
    regs_.resize(static_cast<std::size_t>(num_regs_), 0.0);
  }
  if (loop_state_.size() < loops_.size()) loop_state_.resize(loops_.size());
  if (walk_state_.size() < walks_.size()) walk_state_.resize(walks_.size());

  double* const regs = regs_.data();
  double* const scalars = env.scalars.data();
  ArrayValue* const arrays = env.arrays.data();
  const Instr* const code = code_.data();

  std::size_t pc = 0;
  for (;;) {
    const Instr& in = code[pc];
    switch (in.op) {
      case Op::Imm:
        regs[in.a] = in.imm;
        ++pc;
        break;
      case Op::LoadScalar:
        regs[in.a] = scalars[in.b];
        ++pc;
        break;
      case Op::StoreScalar:
        scalars[in.b] = regs[in.a];
        ++pc;
        break;
      case Op::LoadElem: {
        const ArrayValue& av = arrays[in.b];
        long long subs[8];
        for (int k = 0; k < in.d; ++k) {
          subs[k] = static_cast<long long>(std::llround(regs[in.c + k]));
        }
        regs[in.a] = av.data[static_cast<std::size_t>(
            av.index({subs, static_cast<std::size_t>(in.d)}))];
        ++pc;
        break;
      }
      case Op::StoreElem: {
        ArrayValue& av = arrays[in.b];
        long long subs[8];
        for (int k = 0; k < in.d; ++k) {
          subs[k] = static_cast<long long>(std::llround(regs[in.c + k]));
        }
        av.data[static_cast<std::size_t>(
            av.index({subs, static_cast<std::size_t>(in.d)}))] = regs[in.a];
        ++pc;
        break;
      }
      case Op::LoadWalk:
        regs[in.a] = arrays[in.b].data[static_cast<std::size_t>(
            walk_state_[static_cast<std::size_t>(in.c)].cur)];
        ++pc;
        break;
      case Op::StoreWalk:
        arrays[in.b].data[static_cast<std::size_t>(
            walk_state_[static_cast<std::size_t>(in.c)].cur)] = regs[in.a];
        ++pc;
        break;
      case Op::CheckFinite: {
        const double v = regs[in.a];
        if (!std::isfinite(v)) {
          const fortran::Stmt& s = *stmts_[static_cast<std::size_t>(in.b)];
          throw autocfd::CompileError(
              "non-finite value (" + std::to_string(v) +
              ") assigned to array '" + s.lhs->name + "' at " + s.loc.str() +
              ": the computation diverged");
        }
        ++pc;
        break;
      }
      case Op::Neg:
        regs[in.a] = -regs[in.b];
        ++pc;
        break;
      case Op::Not:
        regs[in.a] = regs[in.b] != 0.0 ? 0.0 : 1.0;
        ++pc;
        break;
      case Op::Add:
        regs[in.a] = regs[in.b] + regs[in.c];
        ++pc;
        break;
      case Op::Sub:
        regs[in.a] = regs[in.b] - regs[in.c];
        ++pc;
        break;
      case Op::Mul:
        regs[in.a] = regs[in.b] * regs[in.c];
        ++pc;
        break;
      case Op::Div:
        regs[in.a] = regs[in.b] / regs[in.c];
        ++pc;
        break;
      case Op::Pow:
        regs[in.a] = eval_pow(regs[in.b], regs[in.c]);
        ++pc;
        break;
      case Op::Lt:
        regs[in.a] = regs[in.b] < regs[in.c] ? 1.0 : 0.0;
        ++pc;
        break;
      case Op::Le:
        regs[in.a] = regs[in.b] <= regs[in.c] ? 1.0 : 0.0;
        ++pc;
        break;
      case Op::Gt:
        regs[in.a] = regs[in.b] > regs[in.c] ? 1.0 : 0.0;
        ++pc;
        break;
      case Op::Ge:
        regs[in.a] = regs[in.b] >= regs[in.c] ? 1.0 : 0.0;
        ++pc;
        break;
      case Op::CmpEq:
        regs[in.a] = regs[in.b] == regs[in.c] ? 1.0 : 0.0;
        ++pc;
        break;
      case Op::CmpNe:
        regs[in.a] = regs[in.b] != regs[in.c] ? 1.0 : 0.0;
        ++pc;
        break;
      case Op::Intrin:
        regs[in.a] = apply_intrinsic(static_cast<Intrinsic>(in.b),
                                     regs + in.c,
                                     static_cast<std::size_t>(in.d));
        ++pc;
        break;
      case Op::AddFlops:
        flops += in.imm;
        ++pc;
        break;
      case Op::Jump:
        pc = static_cast<std::size_t>(in.a);
        break;
      case Op::JumpIfZero:
        pc = regs[in.a] == 0.0 ? static_cast<std::size_t>(in.b) : pc + 1;
        break;
      case Op::JumpIfNotZero:
        pc = regs[in.a] != 0.0 ? static_cast<std::size_t>(in.b) : pc + 1;
        break;
      case Op::LoopBegin: {
        const LoopDesc& ld = loops_[static_cast<std::size_t>(in.a)];
        const auto lo = static_cast<long long>(std::llround(regs[in.b]));
        const auto hi = static_cast<long long>(std::llround(regs[in.c]));
        const auto step = static_cast<long long>(std::llround(regs[in.d]));
        if (step == 0) {
          throw autocfd::CompileError("do loop with zero step");
        }
        long long count = 0;
        if (step > 0) {
          count = lo <= hi ? (hi - lo) / step + 1 : 0;
        } else {
          count = lo >= hi ? (lo - hi) / (-step) + 1 : 0;
        }
        if (count == 0) {
          pc = static_cast<std::size_t>(ld.exit_pc);
          break;
        }
        loop_state_[static_cast<std::size_t>(in.a)] =
            LoopState{lo, lo + (count - 1) * step, step};
        scalars[ld.var_slot] = static_cast<double>(lo);
        ++pc;
        break;
      }
      case Op::LoopNext: {
        LoopState& ls = loop_state_[static_cast<std::size_t>(in.a)];
        if (ls.v == ls.last) {
          ++pc;  // falls through to exit_pc
          break;
        }
        ls.v += ls.step;
        const LoopDesc& ld = loops_[static_cast<std::size_t>(in.a)];
        scalars[ld.var_slot] = static_cast<double>(ls.v);
        for (const int w : ld.walks) {
          WalkState& ws = walk_state_[static_cast<std::size_t>(w)];
          ws.cur += ws.stride;
        }
        pc = static_cast<std::size_t>(ld.body_pc);
        break;
      }
      case Op::WalkInit: {
        const WalkDesc& wd = walks_[static_cast<std::size_t>(in.a)];
        const ArrayValue& av = arrays[wd.array_slot];
        if (static_cast<int>(wd.dims.size()) != av.rank()) {
          throw autocfd::CompileError("subscript rank mismatch");
        }
        const LoopState& ls = loop_state_[static_cast<std::size_t>(wd.loop)];
        long long idx = 0;
        long long stride = 0;
        long long dimstride = 1;
        for (std::size_t d = 0; d < wd.dims.size(); ++d) {
          const WalkDim& dim = wd.dims[d];
          long long first = 0;
          long long last = 0;
          if (dim.affine) {
            first = ls.v + dim.offset;
            last = ls.last + dim.offset;
          } else {
            first = static_cast<long long>(std::llround(regs[dim.reg]));
            last = first;
          }
          const long long lo = av.lower[d];
          const long long hi = av.upper(static_cast<int>(d));
          // The check is hoisted over the whole iteration range; report
          // the value of the *first failing iteration*, exactly what
          // the per-iteration check of the tree-walker would report.
          if (first < lo || first > hi) throw_oob(static_cast<int>(d), first, lo, hi);
          if (last < lo || last > hi) {
            long long bad = 0;
            if (ls.step > 0) {
              bad = first + ((hi - first) / ls.step + 1) * ls.step;
            } else {
              bad = first - ((first - lo) / (-ls.step) + 1) * (-ls.step);
            }
            throw_oob(static_cast<int>(d), bad, lo, hi);
          }
          idx += (first - lo) * dimstride;
          if (dim.affine) stride += ls.step * dimstride;
          dimstride *= av.extent[d];
        }
        walk_state_[static_cast<std::size_t>(in.a)] = WalkState{idx, stride};
        ++pc;
        break;
      }
      case Op::Ret:
        return ExecSignal::Return;
      case Op::StopProg:
        return ExecSignal::Stop;
      case Op::Halt:
        return ExecSignal::Normal;
    }
  }
}

}  // namespace autocfd::interp::bytecode

#include "autocfd/interp/env.hpp"

#include <cmath>
#include <stdexcept>

namespace autocfd::interp {

namespace {

/// Minimal evaluator for declaration bounds: literals, scalar slots and
/// integer arithmetic (bounds never index arrays or call math).
long long eval_bound(const fortran::Expr& e, const Env& env) {
  using fortran::ExprKind;
  switch (e.kind) {
    case ExprKind::IntLit:
      return e.int_value;
    case ExprKind::RealLit:
      return static_cast<long long>(e.real_value);
    case ExprKind::VarRef:
      if (e.slot < 0) {
        throw autocfd::CompileError("unresolved bound variable '" + e.name +
                                    "'");
      }
      return static_cast<long long>(
          std::llround(env.scalar(e.slot)));
    case ExprKind::Unary:
      return e.un_op == fortran::UnOp::Neg ? -eval_bound(*e.args[0], env)
                                           : eval_bound(*e.args[0], env);
    case ExprKind::Binary: {
      const long long a = eval_bound(*e.args[0], env);
      const long long b = eval_bound(*e.args[1], env);
      switch (e.bin_op) {
        case fortran::BinOp::Add: return a + b;
        case fortran::BinOp::Sub: return a - b;
        case fortran::BinOp::Mul: return a * b;
        case fortran::BinOp::Div:
          if (b == 0) {
            // Returning 0 here used to silently give the array an
            // empty/garbage shape; fail loudly at allocation instead.
            throw autocfd::CompileError("division by zero in array bound");
          }
          return a / b;
        default:
          throw autocfd::CompileError(
              "unsupported operator in array bound");
      }
    }
    default:
      throw autocfd::CompileError("unsupported expression in array bound");
  }
}

}  // namespace

long long ArrayValue::index(std::span<const long long> subs) const {
  if (static_cast<int>(subs.size()) != rank()) {
    throw autocfd::CompileError("subscript rank mismatch");
  }
  long long idx = 0;
  long long stride = 1;
  for (std::size_t d = 0; d < subs.size(); ++d) {
    const long long rel = subs[d] - lower[d];
    if (rel < 0 || rel >= extent[d]) {
      throw autocfd::CompileError(
          "array subscript out of bounds: dim " + std::to_string(d + 1) +
          " value " + std::to_string(subs[d]) + " not in [" +
          std::to_string(lower[d]) + ", " + std::to_string(upper(static_cast<int>(d))) +
          "]");
    }
    idx += rel * stride;
    stride *= extent[d];
  }
  return idx;
}

Env::Env(const ProgramImage& image) {
  scalars.assign(static_cast<std::size_t>(image.num_scalar_slots()), 0.0);
  arrays.resize(image.array_slots().size());
  for (const auto& [slot, value] : image.presets()) {
    scalars[static_cast<std::size_t>(slot)] = value;
  }
}

void Env::allocate_arrays(const ProgramImage& image,
                          DiagnosticEngine& diags) {
  const auto& infos = image.array_slots();
  for (std::size_t s = 0; s < infos.size(); ++s) {
    const auto* decl = infos[s].decl;
    if (!decl) {
      diags.error({}, "array '" + infos[s].name + "' has no declaration");
      continue;
    }
    ArrayValue av;
    long long total = 1;
    for (const auto& dim : decl->dims) {
      long long lo = 1;
      long long hi = 0;
      try {
        lo = dim.lower ? eval_bound(*dim.lower, *this) : 1;
        hi = eval_bound(*dim.upper, *this);
      } catch (const autocfd::CompileError& err) {
        throw autocfd::CompileError(std::string(err.what()) +
                                    " in declaration of array '" +
                                    infos[s].name + "' at " +
                                    decl->loc.str());
      }
      if (hi < lo) {
        diags.error(decl->loc, "array '" + infos[s].name +
                                   "' has an empty dimension at run time");
        total = 0;
        break;
      }
      av.lower.push_back(lo);
      av.extent.push_back(hi - lo + 1);
      total *= hi - lo + 1;
    }
    av.data.assign(static_cast<std::size_t>(std::max<long long>(total, 0)),
                   0.0);
    arrays[s] = std::move(av);
  }
}

long long Env::array_bytes() const {
  long long total = 0;
  for (const auto& a : arrays) {
    total += static_cast<long long>(a.data.size() * sizeof(double));
  }
  return total;
}

}  // namespace autocfd::interp

#include "autocfd/interp/image.hpp"

#include <algorithm>

namespace autocfd::interp {

using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;

namespace {

int intrinsic_opcode(std::string_view name) {
  if (name == "abs") return static_cast<int>(Intrinsic::Abs);
  if (name == "sqrt") return static_cast<int>(Intrinsic::Sqrt);
  if (name == "exp") return static_cast<int>(Intrinsic::Exp);
  if (name == "log") return static_cast<int>(Intrinsic::Log);
  if (name == "sin") return static_cast<int>(Intrinsic::Sin);
  if (name == "cos") return static_cast<int>(Intrinsic::Cos);
  if (name == "tan") return static_cast<int>(Intrinsic::Tan);
  if (name == "atan") return static_cast<int>(Intrinsic::Atan);
  if (name == "atan2") return static_cast<int>(Intrinsic::Atan2);
  if (name == "max" || name == "amax1") return static_cast<int>(Intrinsic::Max);
  if (name == "min" || name == "amin1") return static_cast<int>(Intrinsic::Min);
  if (name == "mod") return static_cast<int>(Intrinsic::Mod);
  if (name == "int") return static_cast<int>(Intrinsic::Int);
  if (name == "nint") return static_cast<int>(Intrinsic::Nint);
  if (name == "float") return static_cast<int>(Intrinsic::Float);
  if (name == "real") return static_cast<int>(Intrinsic::Real);
  if (name == "dble") return static_cast<int>(Intrinsic::Dble);
  if (name == "sign") return static_cast<int>(Intrinsic::Sign);
  return -1;
}

struct Resolver {
  ProgramImage* image;
  fortran::SourceFile* file;
  DiagnosticEngine* diags;
  std::unordered_map<std::string, int>* scalar_by_key;
  std::unordered_map<std::string, int>* array_by_key;
  std::vector<ArraySlotInfo>* arrays;
  int* num_scalars;

  const fortran::ProgramUnit* unit = nullptr;

  std::string key_for(std::string_view name, bool is_common) const {
    if (is_common) return std::string(name);
    return unit->name + "::" + std::string(name);
  }

  bool is_common_var(std::string_view name) const {
    // A variable is global if ANY unit lists it in a common block; the
    // subset requires consistent usage, so check all units.
    for (const auto& u : file->units) {
      if (u.in_common(name)) return true;
    }
    return false;
  }

  int scalar_slot(std::string_view name) {
    const auto key = key_for(name, is_common_var(name));
    const auto it = scalar_by_key->find(key);
    if (it != scalar_by_key->end()) return it->second;
    const int slot = (*num_scalars)++;
    (*scalar_by_key)[key] = slot;
    return slot;
  }

  int array_slot(std::string_view name, const fortran::VarDecl* decl) {
    const auto key = key_for(name, is_common_var(name));
    const auto it = array_by_key->find(key);
    if (it != array_by_key->end()) {
      auto& info = (*arrays)[static_cast<std::size_t>(it->second)];
      if (!info.decl && decl) info.decl = decl;
      return it->second;
    }
    const int slot = static_cast<int>(arrays->size());
    arrays->push_back(ArraySlotInfo{std::string(name), decl});
    (*array_by_key)[key] = slot;
    return slot;
  }

  void resolve_expr(Expr& e) {
    switch (e.kind) {
      case ExprKind::VarRef: {
        // A bare array name (whole-array read/write item) becomes a
        // subscript-less ArrayRef so io statements can address the
        // storage; everything else is a scalar.
        const auto* decl = unit->find_decl(e.name);
        if (decl && decl->is_array()) {
          e.kind = ExprKind::ArrayRef;
          e.slot = array_slot(e.name, decl);
        } else {
          e.slot = scalar_slot(e.name);
        }
        break;
      }
      case ExprKind::ArrayRef:
        e.slot = array_slot(e.name, unit->find_decl(e.name));
        break;
      case ExprKind::Intrinsic:
        e.slot = intrinsic_opcode(e.name);
        if (e.slot < 0) {
          diags->error(e.loc, "unknown intrinsic '" + e.name + "'");
        }
        break;
      default:
        break;
    }
    for (auto& a : e.args) {
      if (a) resolve_expr(*a);
    }
  }

  void resolve_stmts(fortran::StmtList& stmts) {
    for (auto& s : stmts) {
      if (s->lhs) resolve_expr(*s->lhs);
      if (s->rhs) resolve_expr(*s->rhs);
      if (s->lo) resolve_expr(*s->lo);
      if (s->hi) resolve_expr(*s->hi);
      if (s->step) resolve_expr(*s->step);
      if (s->cond) resolve_expr(*s->cond);
      for (auto& a : s->args) {
        if (a) resolve_expr(*a);
      }
      switch (s->kind) {
        case StmtKind::Do:
          s->slot = scalar_slot(s->do_var);
          break;
        case StmtKind::Assign:
          s->flops = ProgramImage::flop_cost(*s->rhs);
          // Subscript arithmetic on the left-hand side is work too.
          for (const auto& sub : s->lhs->args) {
            s->flops += ProgramImage::flop_cost(*sub);
          }
          break;
        case StmtKind::AllReduce:
          s->slot = scalar_slot(s->reduce_var);
          break;
        case StmtKind::Call: {
          const auto* callee = file->find_unit(s->callee);
          if (callee && !callee->formal_args.empty()) {
            diags->error(s->loc,
                         "the interpreter supports only argument-less "
                         "subroutines (use common blocks); '" +
                             s->callee + "' has formal arguments");
          }
          break;
        }
        default:
          break;
      }
      resolve_stmts(s->body);
      resolve_stmts(s->else_body);
    }
  }

  void resolve_unit(fortran::ProgramUnit& u) {
    unit = &u;
    // Array dim bounds may reference parameters or rank scalars.
    for (auto& d : u.decls) {
      for (auto& dim : d.dims) {
        if (dim.lower) resolve_expr(*dim.lower);
        resolve_expr(*dim.upper);
      }
      // Ensure every declared array has a slot even if never accessed.
      if (d.is_array()) (void)array_slot(d.name, &d);
    }
    for (auto& p : u.params) {
      resolve_expr(*p.value);
    }
    resolve_stmts(u.body);
  }
};

}  // namespace

double ProgramImage::flop_cost(const Expr& e) {
  double cost = 0.0;
  switch (e.kind) {
    case ExprKind::Binary:
      cost = e.bin_op == fortran::BinOp::Pow ? 8.0 : 1.0;
      break;
    case ExprKind::Unary:
      cost = 1.0;
      break;
    case ExprKind::Intrinsic: {
      switch (static_cast<Intrinsic>(std::max(e.slot, 0))) {
        case Intrinsic::Sqrt:
        case Intrinsic::Exp:
        case Intrinsic::Log:
        case Intrinsic::Sin:
        case Intrinsic::Cos:
        case Intrinsic::Tan:
        case Intrinsic::Atan:
        case Intrinsic::Atan2:
          cost = 10.0;
          break;
        default:
          cost = 1.0;
          break;
      }
      break;
    }
    case ExprKind::ArrayRef: {
      // Index linearization arithmetic.
      cost = static_cast<double>(e.args.size());
      break;
    }
    default:
      break;
  }
  for (const auto& a : e.args) {
    if (a) cost += flop_cost(*a);
  }
  return cost;
}

ProgramImage ProgramImage::build(fortran::SourceFile& file,
                                 DiagnosticEngine& diags) {
  ProgramImage image;
  image.file_ = &file;
  for (const auto& u : file.units) {
    if (u.kind == fortran::UnitKind::Program) image.main_ = &u;
  }
  if (!image.main_) {
    diags.error({}, "program image needs a main program unit");
  }
  // Note: common-shape consistency is a front-end check
  // (GlobalSymbols); it cannot run here because restructured programs
  // declare arrays with run-time (acfd_*) bounds.
  Resolver r{&image,          &file,
             &diags,          &image.scalar_by_key_,
             &image.array_by_key_, &image.arrays_,
             &image.num_scalars_};
  for (auto& u : file.units) {
    r.resolve_unit(u);
  }

  // Parameter presets (evaluated once; parameters are compile-time).
  for (const auto& u : file.units) {
    fortran::ConstEvaluator eval(u);
    for (const auto& p : u.params) {
      const int slot = image.scalar_slot(u.name, p.name);
      if (slot < 0) continue;
      if (const auto v = eval.eval_real(*p.value)) {
        image.presets_.emplace_back(slot, *v);
      } else {
        diags.error(p.loc, "parameter '" + p.name + "' is not constant");
      }
    }
  }
  return image;
}

const fortran::ProgramUnit* ProgramImage::unit(std::string_view name) const {
  return file_->find_unit(name);
}

int ProgramImage::scalar_slot(std::string_view unit,
                              std::string_view name) const {
  // Try common (global) key first, then unit-local.
  if (const auto it = scalar_by_key_.find(std::string(name));
      it != scalar_by_key_.end()) {
    return it->second;
  }
  const auto key = std::string(unit) + "::" + std::string(name);
  const auto it = scalar_by_key_.find(key);
  return it == scalar_by_key_.end() ? -1 : it->second;
}

int ProgramImage::array_slot(std::string_view unit,
                             std::string_view name) const {
  if (const auto it = array_by_key_.find(std::string(name));
      it != array_by_key_.end()) {
    return it->second;
  }
  const auto key = std::string(unit) + "::" + std::string(name);
  const auto it = array_by_key_.find(key);
  return it == array_by_key_.end() ? -1 : it->second;
}

int ProgramImage::find_array_slot(std::string_view name) const {
  if (const auto it = array_by_key_.find(std::string(name));
      it != array_by_key_.end()) {
    return it->second;
  }
  int found = -1;
  const auto suffix = "::" + std::string(name);
  for (const auto& [key, slot] : array_by_key_) {
    if (key.size() > suffix.size() &&
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0) {
      if (found >= 0 && found != slot) return -1;  // ambiguous
      found = slot;
    }
  }
  return found;
}

}  // namespace autocfd::interp

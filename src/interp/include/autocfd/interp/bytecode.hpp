// Bytecode execution engine for the Fortran-subset interpreter.
//
// The tree-walker re-walks every Expr node, re-rounds every subscript
// and re-checks every array bound on every iteration of every field
// loop — the dominant host-time cost of the whole simulated cluster.
// This engine compiles each DO loop (and each standalone assignment)
// once into a flat, register-based postfix program and caches it by
// statement identity; execution is a branch-light dispatch loop over a
// flat instruction vector.
//
// Strength reduction: inside a compiled loop, array references whose
// subscripts are all either affine in that loop's induction variable
// (v, v+c, v-c) or loop-invariant become "walks": the linear element
// index is computed once at loop entry (with the per-dimension bounds
// check hoisted to cover the whole iteration range) and advanced by a
// constant stride per iteration, so the inner loop touches contiguous
// doubles with no rounding and no bounds test. Reduction is only
// applied to references in straight-line statements of loops that
// cannot exit early (no RETURN/STOP in the body), so a hoisted check
// can never fire for an access the tree-walker would not perform on a
// *successfully completing* run; a run that would fault inside the
// loop faults at loop entry instead, with the same message format.
//
// Everything else about the semantics — evaluation order, llround
// subscript rounding, the pow fast path, short-circuit logicals, the
// non-finite array-store guard, per-assignment flop accounting — is
// shared with or copied exactly from the tree-walker, and the
// differential tests assert bit-identical scalars, arrays and trace
// event streams across both engines.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "autocfd/interp/env.hpp"

namespace autocfd::interp::bytecode {

enum class Op : std::uint8_t {
  Imm,          // r[a] = imm
  LoadScalar,   // r[a] = scalars[b]
  StoreScalar,  // scalars[b] = r[a]
  LoadElem,     // r[a] = arrays[b][llround(r[c .. c+d-1])] (checked)
  StoreElem,    // arrays[b][llround(r[c .. c+d-1])] = r[a] (checked)
  LoadWalk,     // r[a] = arrays[b].data[walk[c].cur]
  StoreWalk,    // arrays[b].data[walk[c].cur] = r[a]
  CheckFinite,  // throw CompileError unless r[a] is finite (stmt b)
  Neg,          // r[a] = -r[b]
  Not,          // r[a] = r[b] != 0 ? 0 : 1
  Add, Sub, Mul, Div, Pow,          // r[a] = r[b] op r[c]
  Lt, Le, Gt, Ge, CmpEq, CmpNe,     // r[a] = r[b] op r[c] ? 1 : 0
  Intrin,       // r[a] = intrinsic b applied to r[c .. c+d-1]
  AddFlops,     // flops += imm
  Jump,         // pc = a
  JumpIfZero,   // if (r[a] == 0) pc = b
  JumpIfNotZero,  // if (r[a] != 0) pc = b
  LoopBegin,    // enter loop a: lo=r[b], hi=r[c], step=r[d]
  LoopNext,     // advance loop a: jump to body or fall through to exit
  WalkInit,     // initialize walk a (hoisted bounds check)
  Ret,          // halt with Signal::Return
  StopProg,     // halt with Signal::Stop
  Halt,         // normal end of program
};

struct Instr {
  Op op = Op::Halt;
  int a = 0, b = 0, c = 0, d = 0;
  double imm = 0.0;
};

/// Compile-time description of one DO loop in a kernel.
struct LoopDesc {
  int var_slot = -1;        // env scalar slot of the induction variable
  int body_pc = 0;          // first instruction of the loop body
  int exit_pc = 0;          // first instruction after the loop
  std::vector<int> walks;   // walk indices advanced each iteration
};

/// One dimension of a strength-reduced array reference.
struct WalkDim {
  bool affine = false;   // subscript == induction variable + offset
  long long offset = 0;  // affine case
  int reg = -1;          // invariant case: register holding the value
};

/// Compile-time description of one strength-reduced array reference.
struct WalkDesc {
  int array_slot = -1;
  int loop = -1;  // owning LoopDesc index
  std::vector<WalkDim> dims;
};

enum class ExecSignal { Normal, Return, Stop };

/// Compile/cache counters, surfaced through the obs metrics registry
/// as `engine.bytecode.*` by the CLI and the benches.
struct EngineStats {
  long long kernels_compiled = 0;  // DO statements compiled to kernels
  long long stmts_compiled = 0;    // standalone assignments compiled
  long long compile_rejects = 0;   // statements left to the tree-walker
  long long cache_hits = 0;        // executions served from the cache
  long long kernel_runs = 0;       // compiled program executions
  long long instrs_emitted = 0;
  long long walks_reduced = 0;     // array refs turned into walks

  EngineStats& operator+=(const EngineStats& o) {
    kernels_compiled += o.kernels_compiled;
    stmts_compiled += o.stmts_compiled;
    compile_rejects += o.compile_rejects;
    cache_hits += o.cache_hits;
    kernel_runs += o.kernel_runs;
    instrs_emitted += o.instrs_emitted;
    walks_reduced += o.walks_reduced;
    return *this;
  }

  /// Name/value pairs for metrics export (stable order).
  [[nodiscard]] std::vector<std::pair<const char*, long long>> items() const {
    return {{"kernels_compiled", kernels_compiled},
            {"stmts_compiled", stmts_compiled},
            {"compile_rejects", compile_rejects},
            {"cache_hits", cache_hits},
            {"kernel_runs", kernel_runs},
            {"instrs_emitted", instrs_emitted},
            {"walks_reduced", walks_reduced}};
  }
};

/// One compiled statement: a DO-loop kernel or a single assignment.
/// Execution scratch is owned by the program and reused across runs;
/// a Program must only be executed by one thread at a time (each
/// Interpreter — hence each simulated rank — owns its own cache).
class Program {
 public:
  ExecSignal execute(Env& env, double& flops) const;

  [[nodiscard]] const std::vector<Instr>& code() const { return code_; }
  [[nodiscard]] const std::vector<LoopDesc>& loops() const { return loops_; }
  [[nodiscard]] const std::vector<WalkDesc>& walks() const { return walks_; }

 private:
  friend class Compiler;

  struct LoopState {
    long long v = 0, last = 0, step = 1;
  };
  struct WalkState {
    long long cur = 0, stride = 0;
  };

  std::vector<Instr> code_;
  std::vector<LoopDesc> loops_;
  std::vector<WalkDesc> walks_;
  /// Statements referenced by CheckFinite for error attribution.
  std::vector<const fortran::Stmt*> stmts_;
  int num_regs_ = 0;

  // Reused scratch (single-threaded per owning interpreter).
  mutable std::vector<double> regs_;
  mutable std::vector<LoopState> loop_state_;
  mutable std::vector<WalkState> walk_state_;
};

/// Per-interpreter compile cache keyed by statement identity (the AST
/// node address — stable for the lifetime of the SourceFile).
class BytecodeEngine {
 public:
  explicit BytecodeEngine(const ProgramImage& image) : image_(&image) {}

  /// Returns the compiled program for `s` (compiling on first call),
  /// or nullptr when the statement is outside the compilable subset
  /// and must be tree-walked. Only Do and Assign statements are
  /// candidates.
  const Program* compiled(const fortran::Stmt& s);

  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  EngineStats& mutable_stats() { return stats_; }

 private:
  const ProgramImage* image_;
  std::unordered_map<const fortran::Stmt*, std::unique_ptr<Program>> cache_;
  EngineStats stats_;
};

}  // namespace autocfd::interp::bytecode

// Execution environment: slot-indexed scalar and array storage for one
// interpreter instance (one rank of the simulated cluster, or the
// sequential reference run).
#pragma once

#include <span>
#include <vector>

#include "autocfd/interp/image.hpp"

namespace autocfd::interp {

struct ArrayValue {
  std::vector<double> data;
  std::vector<long long> lower;   // declared lower bound per dim
  std::vector<long long> extent;  // points per dim

  [[nodiscard]] int rank() const { return static_cast<int>(lower.size()); }
  [[nodiscard]] long long upper(int dim) const {
    return lower[static_cast<std::size_t>(dim)] +
           extent[static_cast<std::size_t>(dim)] - 1;
  }
  /// Column-major (Fortran) linear index; throws on out-of-bounds.
  [[nodiscard]] long long index(std::span<const long long> subs) const;
  [[nodiscard]] bool allocated() const { return !data.empty(); }
};

class Env {
 public:
  /// Fresh environment: parameters preset, scalars zeroed, arrays
  /// unallocated (call allocate_arrays once rank scalars are set).
  explicit Env(const ProgramImage& image);
  Env() = default;  // empty shell, assign a real Env before use

  std::vector<double> scalars;
  std::vector<ArrayValue> arrays;

  /// Allocates (or reallocates) every declared array by evaluating its
  /// declared bounds against the current scalar values. Bounds may
  /// reference parameters and the acfd_* rank scalars the restructurer
  /// introduces.
  void allocate_arrays(const ProgramImage& image, DiagnosticEngine& diags);

  /// Total bytes of array storage — the working set for the memory
  /// model of the simulated machine.
  [[nodiscard]] long long array_bytes() const;

  [[nodiscard]] double scalar(int slot) const {
    return scalars[static_cast<std::size_t>(slot)];
  }
  void set_scalar(int slot, double v) {
    scalars[static_cast<std::size_t>(slot)] = v;
  }
};

}  // namespace autocfd::interp

// Scalar operation semantics shared by the two execution engines.
//
// The tree-walking interpreter (the reference) and the bytecode VM
// must produce bit-identical doubles for every operation; keeping the
// floating-point kernels in one header makes that true by
// construction instead of by careful duplication. Everything here is
// a pure function of its double arguments.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "autocfd/interp/image.hpp"

namespace autocfd::interp {

/// Fortran `**`: small non-negative integer exponents take a repeated
/// -multiply fast path (which is NOT bit-identical to std::pow, so both
/// engines must share this exact sequence).
[[nodiscard]] inline double eval_pow(double a, double b) {
  const auto ib = static_cast<long long>(b);
  if (static_cast<double>(ib) == b && ib >= 0 && ib <= 8) {
    double r = 1.0;
    for (long long k = 0; k < ib; ++k) r *= a;
    return r;
  }
  return std::pow(a, b);
}

/// Applies intrinsic `op` to `n` already-evaluated arguments. Matches
/// the historical tree-walker semantics exactly: a missing first
/// argument reads as 0.0, max/min fold left with std::max/std::min.
[[nodiscard]] inline double apply_intrinsic(Intrinsic op, const double* args,
                                            std::size_t n) {
  const double a = n > 0 ? args[0] : 0.0;
  switch (op) {
    case Intrinsic::Abs: return std::fabs(a);
    case Intrinsic::Sqrt: return std::sqrt(a);
    case Intrinsic::Exp: return std::exp(a);
    case Intrinsic::Log: return std::log(a);
    case Intrinsic::Sin: return std::sin(a);
    case Intrinsic::Cos: return std::cos(a);
    case Intrinsic::Tan: return std::tan(a);
    case Intrinsic::Atan: return std::atan(a);
    case Intrinsic::Atan2: return std::atan2(a, args[1]);
    case Intrinsic::Max: {
      double m = a;
      for (std::size_t i = 1; i < n; ++i) m = std::max(m, args[i]);
      return m;
    }
    case Intrinsic::Min: {
      double m = a;
      for (std::size_t i = 1; i < n; ++i) m = std::min(m, args[i]);
      return m;
    }
    case Intrinsic::Mod: return std::fmod(a, args[1]);
    case Intrinsic::Int: return std::trunc(a);
    case Intrinsic::Nint: return std::nearbyint(a);
    case Intrinsic::Float:
    case Intrinsic::Real:
    case Intrinsic::Dble:
      return a;
    case Intrinsic::Sign: {
      const double b = args[1];
      return b >= 0.0 ? std::fabs(a) : -std::fabs(a);
    }
  }
  return 0.0;
}

}  // namespace autocfd::interp

// ProgramImage: the resolved, executable form of a parsed (or
// restructured) Fortran program.
//
// The build pass assigns integer slots to every variable reference so
// the interpreter never touches a name at run time:
//   * scalars and arrays in COMMON share one slot program-wide (the
//     subset matches common storage by name);
//   * other variables get one slot per (unit, name) — proper Fortran
//     local storage;
//   * parameters become preset scalars;
//   * intrinsics get an opcode in Expr::slot;
//   * each Assign statement is annotated with its flop count for the
//     virtual-time model.
// Array shapes stay symbolic (DimBound expressions): the SPMD
// restructurer resizes arrays per rank by making bounds reference
// rank-dependent scalars, so shapes are evaluated per Env at
// allocation time.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "autocfd/fortran/ast.hpp"
#include "autocfd/fortran/symbols.hpp"
#include "autocfd/support/diagnostics.hpp"

namespace autocfd::interp {

/// Intrinsic opcodes stored in Expr::slot for ExprKind::Intrinsic.
enum class Intrinsic : int {
  Abs, Sqrt, Exp, Log, Sin, Cos, Tan, Atan, Atan2,
  Max, Min, Mod, Int, Nint, Float, Real, Dble, Sign,
};

struct ArraySlotInfo {
  std::string name;
  /// Dim bounds of the declaring unit (non-owning; one decl per slot —
  /// common arrays must agree, enforced by GlobalSymbols).
  const fortran::VarDecl* decl = nullptr;
};

class ProgramImage {
 public:
  /// Resolves the file in place (annotating Expr/Stmt slots).
  /// The file must outlive the image.
  static ProgramImage build(fortran::SourceFile& file,
                            DiagnosticEngine& diags);

  [[nodiscard]] const fortran::SourceFile& file() const { return *file_; }
  [[nodiscard]] const fortran::ProgramUnit* unit(std::string_view name) const;
  [[nodiscard]] const fortran::ProgramUnit* main() const { return main_; }

  [[nodiscard]] int num_scalar_slots() const { return num_scalars_; }
  [[nodiscard]] const std::vector<ArraySlotInfo>& array_slots() const {
    return arrays_;
  }

  /// Slot of a scalar as visible in `unit` (commons resolve globally);
  /// -1 if unknown.
  [[nodiscard]] int scalar_slot(std::string_view unit,
                                std::string_view name) const;
  [[nodiscard]] int array_slot(std::string_view unit,
                               std::string_view name) const;

  /// Slot of an array by bare name: the common (global) slot if there
  /// is one, else the unique unit-local slot; -1 if absent or
  /// ambiguous. Used by the SPMD runtime to address status arrays.
  [[nodiscard]] int find_array_slot(std::string_view name) const;

  /// Parameter presets applied to every fresh Env.
  [[nodiscard]] const std::vector<std::pair<int, double>>& presets() const {
    return presets_;
  }

  /// Flop cost of one evaluation of `e` (used for Assign annotation and
  /// exposed for the cost-model tests).
  [[nodiscard]] static double flop_cost(const fortran::Expr& e);

 private:
  fortran::SourceFile* file_ = nullptr;
  const fortran::ProgramUnit* main_ = nullptr;
  int num_scalars_ = 0;
  std::vector<ArraySlotInfo> arrays_;
  // Hash maps: name lookups happen for every reference during image
  // build and for every declared array at each per-rank env setup.
  std::unordered_map<std::string, int> scalar_by_key_;
  std::unordered_map<std::string, int> array_by_key_;
  std::vector<std::pair<int, double>> presets_;
};

}  // namespace autocfd::interp

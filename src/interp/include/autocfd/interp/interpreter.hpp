// Tree-walking interpreter for the resolved Fortran subset.
//
// Executes both the sequential input program and the SPMD program the
// restructurer produces. Parallel extension statements (HaloExchange,
// AllReduce, Pipeline*, Barrier) are delegated to the `on_extension`
// hook — the spmd runtime implements them against the simulated
// cluster; with no hook they are no-ops, which makes the sequential
// semantics trivially available.
//
// Work accounting: every executed Assign adds its precomputed flop
// count to a counter the runtime samples to advance virtual time.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autocfd/interp/bytecode.hpp"
#include "autocfd/interp/env.hpp"
#include "autocfd/interp/stmt_profile.hpp"

namespace autocfd::interp {

/// Which executor runs statements: the tree-walker is the reference
/// implementation, the bytecode engine the fast default (results are
/// bit-identical; see bytecode.hpp).
enum class EngineKind { Tree, Bytecode };

[[nodiscard]] constexpr std::string_view engine_kind_name(EngineKind k) {
  return k == EngineKind::Tree ? "tree" : "bytecode";
}

/// Parses "tree" / "bytecode"; throws CompileError otherwise.
[[nodiscard]] EngineKind parse_engine_kind(std::string_view name);

class Interpreter {
 public:
  struct Hooks {
    /// Called for every parallel extension statement.
    std::function<void(const fortran::Stmt&, Env&)> on_extension;
    /// Supplies data for `read` statements (by array name); fills
    /// zeros when unset.
    std::function<std::vector<double>(const std::string&)> on_read;
    /// Receives each `write` statement's formatted values.
    std::function<void(const std::string&)> on_write;
  };

  Interpreter(const ProgramImage& image, Hooks hooks = {},
              EngineKind engine = EngineKind::Bytecode);

  /// Runs the main program to completion.
  void run(Env& env);
  /// Runs one unit's body (used by tests and the spmd runtime).
  void run_unit(const fortran::ProgramUnit& unit, Env& env);

  /// Evaluates an expression (exposed for tests and the runtime).
  [[nodiscard]] double eval(const fortran::Expr& e, Env& env) const;

  /// Floating-point operations executed since the last reset.
  [[nodiscard]] double flops() const { return flops_; }
  void reset_flops() { flops_ = 0.0; }

  /// Lines captured from write/print statements (when no hook is set).
  [[nodiscard]] const std::vector<std::string>& output() const {
    return output_;
  }

  /// Attaches a statement profile: virtual compute work is attributed
  /// per attribution unit (see stmt_profile.hpp) into `profile`, which
  /// must outlive the runs. nullptr (the default) disables profiling;
  /// disabled, the only cost is one pointer test per dispatched
  /// statement.
  void set_profile(StmtProfile* profile) { prof_ = profile; }
  [[nodiscard]] StmtProfile* profile() const { return prof_; }

  [[nodiscard]] EngineKind engine() const { return engine_; }
  /// Compile/cache counters of the bytecode engine (all zero when
  /// running on the tree-walker).
  [[nodiscard]] bytecode::EngineStats engine_stats() const {
    return bc_ ? bc_->stats() : bytecode::EngineStats{};
  }

 private:
  enum class Signal { Normal, Goto, Return, Stop };

  Signal exec_list(const fortran::StmtList& list, Env& env);
  Signal exec_stmt(const fortran::Stmt& s, Env& env);
  Signal exec_stmt_impl(const fortran::Stmt& s, Env& env);
  void exec_assign(const fortran::Stmt& s, Env& env);
  Signal exec_do(const fortran::Stmt& s, Env& env);
  void exec_read(const fortran::Stmt& s, Env& env);
  void exec_write(const fortran::Stmt& s, Env& env);

  const ProgramImage* image_;
  Hooks hooks_;
  EngineKind engine_ = EngineKind::Bytecode;
  /// Lazily holds the per-interpreter compile cache (bytecode mode).
  std::unique_ptr<bytecode::BytecodeEngine> bc_;
  double flops_ = 0.0;
  int pending_goto_ = 0;
  std::vector<std::string> output_;

  // Profiling state (see stmt_profile.hpp). `prof_owner_` is the unit
  // currently charged; nested statements never re-open a unit.
  StmtProfile* prof_ = nullptr;
  const fortran::Stmt* prof_owner_ = nullptr;
  /// Memoized is_attribution_unit verdicts (only touched when
  /// profiling is enabled).
  std::unordered_map<const fortran::Stmt*, bool> unit_cache_;
};

/// Convenience: parse-resolve-run a sequential program; returns the
/// finished Env for inspection. Throws CompileError on any failure.
struct SequentialResult {
  fortran::SourceFile file;  // owns the resolved AST
  ProgramImage image;
  Env env;
  double flops = 0.0;
  std::vector<std::string> output;
};
/// Note: the result holds image/env referencing its own `file`.
[[nodiscard]] std::unique_ptr<SequentialResult> run_sequential(
    std::string_view source, EngineKind engine = EngineKind::Bytecode);

}  // namespace autocfd::interp

// Raw per-rank statement profile: the interpreter-side half of the
// source-attributed runtime profiler (src/prof holds the merged,
// source-keyed views).
//
// Attribution happens at *attribution units* — statements at which
// both execution engines behave atomically, so the tree-walker and the
// bytecode engine charge bit-identical flops to identical keys:
//
//   * every Assign dispatched outside a unit is a unit of its own;
//   * a DO loop is a unit when its whole nest is pure compute
//     (no calls, io, or parallel extension statements) — exactly the
//     nests the bytecode engine may compile into opaque kernels.
//
// Statements nested inside a unit charge the enclosing unit; anything
// outside the pure-compute subset (the frame loop calling subroutines,
// halo exchanges) is never a unit, so the work inside it attributes to
// the compute nests it contains. Keys point into the executed
// SourceFile's AST and are only valid while that file is alive.
#pragma once

#include <unordered_map>

#include "autocfd/fortran/ast.hpp"

namespace autocfd::interp {

/// Virtual compute cost charged to one attribution unit.
struct StmtCost {
  double flops = 0.0;
  long long count = 0;  // times the unit was entered
};

/// Per-rank profile. `seconds_per_flop` converts attributed flops to
/// virtual compute seconds with the exact factors the runtime bills
/// (machine flop time x the rank's memory-hierarchy factor); the
/// collector (codegen::run_spmd) fills it in.
struct StmtProfile {
  std::unordered_map<const fortran::Stmt*, StmtCost> units;
  double seconds_per_flop = 0.0;

  [[nodiscard]] double total_flops() const {
    double f = 0.0;
    for (const auto& [stmt, cost] : units) f += cost.flops;
    return f;
  }
  [[nodiscard]] double total_seconds() const {
    return total_flops() * seconds_per_flop;
  }
};

/// True when `s` can carry attribution (see file comment). Engine
/// independent and purely structural, hence identical on every rank
/// and across reruns.
[[nodiscard]] bool is_attribution_unit(const fortran::Stmt& s);

}  // namespace autocfd::interp

#include "autocfd/interp/interpreter.hpp"

#include <cmath>
#include <sstream>

#include "autocfd/fortran/parser.hpp"
#include "autocfd/interp/eval_ops.hpp"

namespace autocfd::interp {

using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;

EngineKind parse_engine_kind(std::string_view name) {
  if (name == "tree") return EngineKind::Tree;
  if (name == "bytecode") return EngineKind::Bytecode;
  throw autocfd::CompileError("unknown engine '" + std::string(name) +
                              "' (expected tree or bytecode)");
}

Interpreter::Interpreter(const ProgramImage& image, Hooks hooks,
                         EngineKind engine)
    : image_(&image), hooks_(std::move(hooks)), engine_(engine) {
  if (engine_ == EngineKind::Bytecode) {
    bc_ = std::make_unique<bytecode::BytecodeEngine>(image);
  }
}

void Interpreter::run(Env& env) {
  const auto* main = image_->main();
  if (!main) throw autocfd::CompileError("no main program to run");
  run_unit(*main, env);
}

void Interpreter::run_unit(const fortran::ProgramUnit& unit, Env& env) {
  const auto sig = exec_list(unit.body, env);
  if (sig == Signal::Goto) {
    throw autocfd::CompileError("goto to unknown label " +
                                std::to_string(pending_goto_) + " in unit '" +
                                unit.name + "'");
  }
}

double Interpreter::eval(const Expr& e, Env& env) const {
  switch (e.kind) {
    case ExprKind::IntLit:
      return static_cast<double>(e.int_value);
    case ExprKind::RealLit:
      return e.real_value;
    case ExprKind::LogicalLit:
      return e.bool_value ? 1.0 : 0.0;
    case ExprKind::StrLit:
      return 0.0;  // strings only appear in io statements
    case ExprKind::VarRef:
      return env.scalar(e.slot);
    case ExprKind::ArrayRef: {
      const auto& av = env.arrays[static_cast<std::size_t>(e.slot)];
      long long subs[8];
      const auto n = e.args.size();
      for (std::size_t d = 0; d < n; ++d) {
        subs[d] = static_cast<long long>(
            std::llround(eval(*e.args[d], env)));
      }
      return av.data[static_cast<std::size_t>(
          av.index({subs, n}))];
    }
    case ExprKind::Unary: {
      const double v = eval(*e.args[0], env);
      switch (e.un_op) {
        case fortran::UnOp::Neg: return -v;
        case fortran::UnOp::Plus: return v;
        case fortran::UnOp::Not: return v != 0.0 ? 0.0 : 1.0;
      }
      return v;
    }
    case ExprKind::Binary: {
      // Short-circuit logical operators.
      if (e.bin_op == fortran::BinOp::And) {
        return eval(*e.args[0], env) != 0.0 && eval(*e.args[1], env) != 0.0
                   ? 1.0
                   : 0.0;
      }
      if (e.bin_op == fortran::BinOp::Or) {
        return eval(*e.args[0], env) != 0.0 || eval(*e.args[1], env) != 0.0
                   ? 1.0
                   : 0.0;
      }
      const double a = eval(*e.args[0], env);
      const double b = eval(*e.args[1], env);
      switch (e.bin_op) {
        case fortran::BinOp::Add: return a + b;
        case fortran::BinOp::Sub: return a - b;
        case fortran::BinOp::Mul: return a * b;
        case fortran::BinOp::Div: return a / b;
        case fortran::BinOp::Pow:
          return eval_pow(a, b);
        case fortran::BinOp::Lt: return a < b ? 1.0 : 0.0;
        case fortran::BinOp::Le: return a <= b ? 1.0 : 0.0;
        case fortran::BinOp::Gt: return a > b ? 1.0 : 0.0;
        case fortran::BinOp::Ge: return a >= b ? 1.0 : 0.0;
        case fortran::BinOp::Eq: return a == b ? 1.0 : 0.0;
        case fortran::BinOp::Ne: return a != b ? 1.0 : 0.0;
        default: return 0.0;
      }
    }
    case ExprKind::Intrinsic: {
      // Arguments evaluate left to right, then the shared scalar
      // kernel applies the operation (identical to the VM's Intrin).
      const std::size_t n = e.args.size();
      double buf[8];
      std::vector<double> big;
      double* vals = buf;
      if (n > 8) {
        big.resize(n);
        vals = big.data();
      }
      for (std::size_t i = 0; i < n; ++i) vals[i] = eval(*e.args[i], env);
      return apply_intrinsic(static_cast<Intrinsic>(e.slot), vals, n);
    }
  }
  return 0.0;
}

Interpreter::Signal Interpreter::exec_list(const fortran::StmtList& list,
                                           Env& env) {
  std::size_t i = 0;
  while (i < list.size()) {
    const auto sig = exec_stmt(*list[i], env);
    if (sig == Signal::Goto) {
      bool found = false;
      for (std::size_t j = 0; j < list.size(); ++j) {
        if (list[j]->label == pending_goto_) {
          i = j;
          found = true;
          break;
        }
      }
      if (!found) return Signal::Goto;  // propagate to enclosing list
      pending_goto_ = 0;
      continue;  // re-execute from the labeled statement
    }
    if (sig != Signal::Normal) return sig;
    ++i;
  }
  return Signal::Normal;
}

namespace {

/// Pure-compute statement: may appear inside an attribution unit.
/// Control flow (If/Goto/Return/Stop) is compute-ish; anything that
/// does io, calls a subroutine or talks to the cluster is not.
bool pure_compute_stmt(const Stmt& s);

bool pure_compute_body(const fortran::StmtList& body) {
  for (const auto& st : body) {
    if (!st || !pure_compute_stmt(*st)) return false;
  }
  return true;
}

bool pure_compute_stmt(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Assign:
    case StmtKind::Continue:
    case StmtKind::Goto:
    case StmtKind::Return:
    case StmtKind::Stop:
      return true;
    case StmtKind::Do:
      return pure_compute_body(s.body);
    case StmtKind::If:
      return pure_compute_body(s.body) && pure_compute_body(s.else_body);
    default:
      return false;  // io, calls, parallel extension statements
  }
}

}  // namespace

bool is_attribution_unit(const Stmt& s) {
  if (s.kind == StmtKind::Assign) return true;
  return s.kind == StmtKind::Do && pure_compute_body(s.body);
}

Interpreter::Signal Interpreter::exec_stmt(const Stmt& s, Env& env) {
  if (prof_ != nullptr && prof_owner_ == nullptr) {
    auto [it, fresh] = unit_cache_.try_emplace(&s, false);
    if (fresh) it->second = is_attribution_unit(s);
    if (it->second) {
      // Charge everything this unit executes — including nested loops
      // and, in bytecode mode, whole compiled kernels — to `s`.
      prof_owner_ = &s;
      const double before = flops_;
      const Signal sig = exec_stmt_impl(s, env);
      auto& cost = prof_->units[&s];
      cost.flops += flops_ - before;
      ++cost.count;
      prof_owner_ = nullptr;
      return sig;
    }
  }
  return exec_stmt_impl(s, env);
}

Interpreter::Signal Interpreter::exec_stmt_impl(const Stmt& s, Env& env) {
  switch (s.kind) {
    case StmtKind::Assign:
      if (bc_) {
        if (const auto* prog = bc_->compiled(s)) {
          ++bc_->mutable_stats().kernel_runs;
          prog->execute(env, flops_);  // a lone Assign always halts Normal
          return Signal::Normal;
        }
      }
      exec_assign(s, env);
      return Signal::Normal;
    case StmtKind::Do:
      if (bc_) {
        if (const auto* prog = bc_->compiled(s)) {
          ++bc_->mutable_stats().kernel_runs;
          switch (prog->execute(env, flops_)) {
            case bytecode::ExecSignal::Normal: return Signal::Normal;
            case bytecode::ExecSignal::Return: return Signal::Return;
            case bytecode::ExecSignal::Stop: return Signal::Stop;
          }
        }
      }
      return exec_do(s, env);
    case StmtKind::If: {
      if (eval(*s.cond, env) != 0.0) {
        return exec_list(s.body, env);
      }
      return exec_list(s.else_body, env);
    }
    case StmtKind::Goto:
      pending_goto_ = s.goto_target;
      return Signal::Goto;
    case StmtKind::Continue:
      return Signal::Normal;
    case StmtKind::Call: {
      const auto* callee = image_->unit(s.callee);
      if (!callee) {
        throw autocfd::CompileError("call to unknown subroutine '" +
                                    s.callee + "'");
      }
      const auto sig = exec_list(callee->body, env);
      if (sig == Signal::Goto) {
        throw autocfd::CompileError("goto to unknown label in subroutine '" +
                                    s.callee + "'");
      }
      // Return inside the callee ends the callee only.
      return sig == Signal::Stop ? Signal::Stop : Signal::Normal;
    }
    case StmtKind::Return:
      return Signal::Return;
    case StmtKind::Stop:
      return Signal::Stop;
    case StmtKind::Read:
      exec_read(s, env);
      return Signal::Normal;
    case StmtKind::Write:
      exec_write(s, env);
      return Signal::Normal;
    case StmtKind::HaloExchange:
    case StmtKind::AllReduce:
    case StmtKind::PipelineStart:
    case StmtKind::PipelineEnd:
    case StmtKind::Barrier:
      if (hooks_.on_extension) hooks_.on_extension(s, env);
      return Signal::Normal;
  }
  return Signal::Normal;
}

void Interpreter::exec_assign(const Stmt& s, Env& env) {
  const double value = eval(*s.rhs, env);
  flops_ += s.flops;
  const Expr& lhs = *s.lhs;
  if (lhs.kind == ExprKind::VarRef) {
    env.set_scalar(lhs.slot, value);
    return;
  }
  if (!std::isfinite(value)) {
    // A NaN/Inf written into a status array silently poisons every
    // downstream frame (and, parallelized, every rank it is halo-
    // exchanged to). Fail at the first write with the array and the
    // statement that produced it.
    throw autocfd::CompileError(
        "non-finite value (" + std::to_string(value) +
        ") assigned to array '" + lhs.name + "' at " + s.loc.str() +
        ": the computation diverged");
  }
  auto& av = env.arrays[static_cast<std::size_t>(lhs.slot)];
  long long subs[8];
  const auto n = lhs.args.size();
  for (std::size_t d = 0; d < n; ++d) {
    subs[d] = static_cast<long long>(std::llround(eval(*lhs.args[d], env)));
  }
  av.data[static_cast<std::size_t>(av.index({subs, n}))] = value;
}

Interpreter::Signal Interpreter::exec_do(const Stmt& s, Env& env) {
  const auto lo = static_cast<long long>(std::llround(eval(*s.lo, env)));
  const auto hi = static_cast<long long>(std::llround(eval(*s.hi, env)));
  const long long step =
      s.step ? static_cast<long long>(std::llround(eval(*s.step, env))) : 1;
  if (step == 0) {
    throw autocfd::CompileError("do loop with zero step");
  }
  for (long long v = lo; step > 0 ? v <= hi : v >= hi; v += step) {
    env.set_scalar(s.slot, static_cast<double>(v));
    const auto sig = exec_list(s.body, env);
    if (sig == Signal::Goto) {
      // A goto inside the body targeting a label in this body was
      // already handled by exec_list; anything else exits the loop.
      return Signal::Goto;
    }
    if (sig == Signal::Return || sig == Signal::Stop) return sig;
  }
  return Signal::Normal;
}

void Interpreter::exec_read(const Stmt& s, Env& env) {
  for (const auto& item : s.args) {
    if (item->kind == ExprKind::VarRef) {
      double v = 0.0;
      if (hooks_.on_read) {
        const auto data = hooks_.on_read(item->name);
        if (!data.empty()) v = data[0];
      }
      env.set_scalar(item->slot, v);
    } else if (item->kind == ExprKind::ArrayRef && item->args.empty()) {
      // Whole-array read: read(5,*) v
      auto& av = env.arrays[static_cast<std::size_t>(item->slot)];
      std::vector<double> data;
      if (hooks_.on_read) data = hooks_.on_read(item->name);
      for (std::size_t i = 0; i < av.data.size(); ++i) {
        av.data[i] = i < data.size() ? data[i] : 0.0;
      }
    } else if (item->kind == ExprKind::ArrayRef) {
      // Element read.
      double v = 0.0;
      if (hooks_.on_read) {
        const auto data = hooks_.on_read(item->name);
        if (!data.empty()) v = data[0];
      }
      auto& av = env.arrays[static_cast<std::size_t>(item->slot)];
      long long subs[8];
      for (std::size_t d = 0; d < item->args.size(); ++d) {
        subs[d] =
            static_cast<long long>(std::llround(eval(*item->args[d], env)));
      }
      av.data[static_cast<std::size_t>(av.index({subs, item->args.size()}))] =
          v;
    }
  }
}

void Interpreter::exec_write(const Stmt& s, Env& env) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : s.args) {
    if (!first) os << ' ';
    first = false;
    if (item->kind == ExprKind::StrLit) {
      os << item->str_value;
    } else if (item->kind == ExprKind::ArrayRef && item->args.empty()) {
      const auto& av = env.arrays[static_cast<std::size_t>(item->slot)];
      for (std::size_t i = 0; i < av.data.size(); ++i) {
        if (i) os << ' ';
        os << av.data[i];
      }
    } else {
      os << eval(*item, env);
    }
  }
  if (hooks_.on_write) {
    hooks_.on_write(os.str());
  } else {
    output_.push_back(os.str());
  }
}

std::unique_ptr<SequentialResult> run_sequential(std::string_view source,
                                                 EngineKind engine) {
  auto result = std::make_unique<SequentialResult>();
  result->file = fortran::parse_source(source);
  DiagnosticEngine diags;
  result->image = ProgramImage::build(result->file, diags);
  throw_if_errors(diags, "image build");
  result->env = Env(result->image);
  result->env.allocate_arrays(result->image, diags);
  throw_if_errors(diags, "array allocation");
  Interpreter interp(result->image, {}, engine);
  interp.run(result->env);
  result->flops = interp.flops();
  result->output = interp.output();
  return result;
}

}  // namespace autocfd::interp

#include "autocfd/ir/call_graph.hpp"

#include <set>

namespace autocfd::ir {

namespace {

void collect_calls(const fortran::StmtList& stmts, const std::string& caller,
                   std::vector<CallSite>& out) {
  for (const auto& s : stmts) {
    if (s->kind == fortran::StmtKind::Call) {
      out.push_back(CallSite{s.get(), caller, s->callee});
    }
    collect_calls(s->body, caller, out);
    collect_calls(s->else_body, caller, out);
  }
}

}  // namespace

CallGraph CallGraph::build(const fortran::SourceFile& file,
                           DiagnosticEngine& diags) {
  CallGraph g;
  std::map<std::string, std::set<std::string>> edges;
  for (const auto& unit : file.units) {
    edges[unit.name];  // ensure node exists
    collect_calls(unit.body, unit.name, g.sites_);
  }
  for (const auto& site : g.sites_) {
    if (!file.find_unit(site.callee)) {
      diags.error(site.stmt->loc,
                  "call to undefined subroutine '" + site.callee + "'");
      continue;
    }
    edges[site.caller].insert(site.callee);
  }

  // Bottom-up (callees first) via DFS post-order with cycle detection.
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& u) {
        state[u] = 1;
        for (const auto& v : edges[u]) {
          if (state[v] == 1) {
            g.recursive_ = true;
            diags.error({}, "recursive call chain involving '" + v +
                                "' (recursion is outside the F77 subset)");
            continue;
          }
          if (state[v] == 0) dfs(v);
        }
        state[u] = 2;
        g.order_.push_back(u);
      };
  for (const auto& unit : file.units) {
    if (state[unit.name] == 0) dfs(unit.name);
  }
  return g;
}

std::vector<const CallSite*> CallGraph::calls_from(
    std::string_view caller) const {
  std::vector<const CallSite*> out;
  for (const auto& s : sites_) {
    if (s.caller == caller) out.push_back(&s);
  }
  return out;
}

std::vector<const CallSite*> CallGraph::calls_to(
    std::string_view callee) const {
  std::vector<const CallSite*> out;
  for (const auto& s : sites_) {
    if (s.callee == callee) out.push_back(&s);
  }
  return out;
}

}  // namespace autocfd::ir

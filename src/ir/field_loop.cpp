#include "autocfd/ir/field_loop.hpp"

#include <algorithm>

namespace autocfd::ir {

using fortran::Expr;
using fortran::ExprKind;
using fortran::Stmt;
using fortran::StmtKind;

bool FieldConfig::is_status(std::string_view array) const {
  return std::find(status_arrays.begin(), status_arrays.end(), array) !=
         status_arrays.end();
}

int FieldConfig::status_dims(int array_rank) const {
  return std::min(array_rank, grid_rank);
}

std::string_view loop_type_name(LoopType t) {
  switch (t) {
    case LoopType::A: return "A";
    case LoopType::R: return "R";
    case LoopType::C: return "C";
    case LoopType::O: return "O";
  }
  return "?";
}

LoopType FieldLoop::type_for(std::string_view array) const {
  const auto it = arrays.find(std::string(array));
  if (it == arrays.end()) return LoopType::O;
  const auto& info = it->second;
  if (info.assigned() && info.referenced()) return LoopType::C;
  if (info.assigned()) return LoopType::A;
  if (info.referenced()) return LoopType::R;
  return LoopType::O;
}

std::vector<int> FieldLoop::scanned_dims() const {
  std::vector<int> dims;
  for (const auto& [var, dim] : var_dims) dims.push_back(dim);
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  return dims;
}

int FieldLoop::dir_of_dim(int dim) const {
  for (const auto& [var, d] : var_dims) {
    if (d == dim) {
      const auto it = var_dirs.find(var);
      return it == var_dirs.end() ? +1 : it->second;
    }
  }
  return 0;
}

SubscriptPattern classify_subscript(
    const Expr& sub, const std::map<std::string, int>& loop_vars) {
  SubscriptPattern p;
  switch (sub.kind) {
    case ExprKind::IntLit:
      p.kind = SubscriptPattern::Kind::Invariant;
      p.const_value = sub.int_value;
      return p;
    case ExprKind::VarRef:
      if (loop_vars.contains(sub.name)) {
        p.kind = SubscriptPattern::Kind::LoopIndex;
        p.loop_var = sub.name;
        p.offset = 0;
      } else {
        p.kind = SubscriptPattern::Kind::Invariant;
      }
      return p;
    case ExprKind::Binary: {
      if (sub.bin_op != fortran::BinOp::Add &&
          sub.bin_op != fortran::BinOp::Sub) {
        break;
      }
      const Expr& a = *sub.args[0];
      const Expr& b = *sub.args[1];
      // var +/- const
      if (a.kind == ExprKind::VarRef && loop_vars.contains(a.name) &&
          b.kind == ExprKind::IntLit) {
        p.kind = SubscriptPattern::Kind::LoopIndex;
        p.loop_var = a.name;
        p.offset = sub.bin_op == fortran::BinOp::Add ? b.int_value
                                                     : -b.int_value;
        return p;
      }
      // const + var
      if (sub.bin_op == fortran::BinOp::Add && a.kind == ExprKind::IntLit &&
          b.kind == ExprKind::VarRef && loop_vars.contains(b.name)) {
        p.kind = SubscriptPattern::Kind::LoopIndex;
        p.loop_var = b.name;
        p.offset = a.int_value;
        return p;
      }
      break;
    }
    default:
      break;
  }
  // Loop-invariant if no enclosing loop variable occurs inside.
  bool uses_loop_var = false;
  fortran::for_each_expr(sub, [&](const Expr& e) {
    if (e.kind == ExprKind::VarRef && loop_vars.contains(e.name)) {
      uses_loop_var = true;
    }
  });
  p.kind = uses_loop_var ? SubscriptPattern::Kind::Complex
                         : SubscriptPattern::Kind::Invariant;
  return p;
}

namespace {

/// Collects loop variables (with directions) of a Do nest rooted at
/// `loop`, descending through Do and If structure alike.
void collect_loop_vars(const Stmt& loop, std::map<std::string, int>& vars,
                       std::map<std::string, int>& dirs) {
  if (loop.kind == StmtKind::Do) {
    // Direction from the sign of a constant step (default +1).
    int dir = +1;
    if (loop.step) {
      const Expr& st = *loop.step;
      if (st.kind == ExprKind::IntLit && st.int_value < 0) dir = -1;
      if (st.kind == ExprKind::Unary && st.un_op == fortran::UnOp::Neg) {
        dir = -1;
      }
    }
    vars.emplace(loop.do_var, -1);  // dimension resolved later
    dirs.emplace(loop.do_var, dir);
  }
  for (const auto& s : loop.body) collect_loop_vars(*s, vars, dirs);
  for (const auto& s : loop.else_body) collect_loop_vars(*s, vars, dirs);
}

struct Collector {
  const FieldConfig* config;
  std::map<std::string, int>* loop_vars;  // var -> dim (being resolved)
  FieldLoop* out;
  DiagnosticEngine* diags;

  void record_access(const Stmt& stmt, const Expr& ref, bool is_write) {
    ArrayAccess acc;
    acc.stmt = &stmt;
    acc.is_write = is_write;
    const int n_status =
        config->status_dims(static_cast<int>(ref.args.size()));
    for (std::size_t d = 0; d < ref.args.size(); ++d) {
      auto p = classify_subscript(*ref.args[d], *loop_vars);
      if (p.kind == SubscriptPattern::Kind::LoopIndex &&
          static_cast<int>(d) < n_status) {
        // Bind the loop variable to this grid dimension.
        auto& dim = (*loop_vars)[p.loop_var];
        if (dim == -1) {
          dim = static_cast<int>(d);
        } else if (dim != static_cast<int>(d)) {
          // The same variable scans two different dimensions (e.g. a
          // diagonal access v(i,i)); treat the subscript as complex.
          p.kind = SubscriptPattern::Kind::Complex;
        }
      }
      acc.subs.push_back(std::move(p));
    }
    auto& info = out->arrays[ref.name];
    info.name = ref.name;
    (is_write ? info.writes : info.reads).push_back(std::move(acc));
  }

  void visit_expr(const Stmt& stmt, const Expr& e, bool is_write_root) {
    if (e.kind == ExprKind::ArrayRef && config->is_status(e.name)) {
      record_access(stmt, e, is_write_root);
      // Subscripts themselves may contain reads of status arrays
      // (indirect indexing); record them as reads.
      for (const auto& a : e.args) visit_expr(stmt, *a, false);
      return;
    }
    for (const auto& a : e.args) {
      if (a) visit_expr(stmt, *a, false);
    }
  }

  void detect_reduction(const Stmt& stmt) {
    // s = max(s, ...) / s = min(s, ...) / s = s + ...
    if (stmt.lhs->kind != ExprKind::VarRef) return;
    const std::string& var = stmt.lhs->name;
    const Expr& rhs = *stmt.rhs;
    if (rhs.kind == ExprKind::Intrinsic &&
        (rhs.name == "max" || rhs.name == "min" || rhs.name == "amax1" ||
         rhs.name == "amin1") &&
        !rhs.args.empty() && rhs.args[0]->kind == ExprKind::VarRef &&
        rhs.args[0]->name == var) {
      const std::string op =
          (rhs.name == "max" || rhs.name == "amax1") ? "max" : "min";
      out->reductions.push_back(ReductionInfo{var, op, &stmt});
      return;
    }
    if (rhs.kind == ExprKind::Binary && rhs.bin_op == fortran::BinOp::Add &&
        rhs.args[0]->kind == ExprKind::VarRef && rhs.args[0]->name == var) {
      out->reductions.push_back(ReductionInfo{var, "sum", &stmt});
    }
  }

  void visit_stmts(const fortran::StmtList& stmts) {
    for (const auto& s : stmts) {
      switch (s->kind) {
        case StmtKind::Assign:
          visit_expr(*s, *s->lhs, true);
          visit_expr(*s, *s->rhs, false);
          detect_reduction(*s);
          break;
        case StmtKind::Do:
          if (s->lo) visit_expr(*s, *s->lo, false);
          if (s->hi) visit_expr(*s, *s->hi, false);
          break;
        case StmtKind::If:
          visit_expr(*s, *s->cond, false);
          break;
        default:
          for (const auto& a : s->args) {
            if (a) visit_expr(*s, *a, false);
          }
          break;
      }
      visit_stmts(s->body);
      visit_stmts(s->else_body);
    }
  }
};

/// True if the loop variable of `node` indexes a status dimension of a
/// status array somewhere under it.
bool scans_field(const LoopTree::Node& node, const FieldLoop& fl) {
  const auto it = fl.var_dims.find(node.loop->do_var);
  return it != fl.var_dims.end() && it->second >= 0;
}

/// Why type_for() answered the way it did, for the provenance log.
std::string classification_rationale(LoopType t, const ArrayInfo& info) {
  switch (t) {
    case LoopType::C:
      return "assigned (" + std::to_string(info.writes.size()) +
             "x) and referenced (" + std::to_string(info.reads.size()) +
             "x) in the nest";
    case LoopType::A:
      return "assigned (" + std::to_string(info.writes.size()) +
             "x), never referenced";
    case LoopType::R:
      return "referenced (" + std::to_string(info.reads.size()) +
             "x), never assigned";
    case LoopType::O:
      return "neither assigned nor referenced";
  }
  return "";
}

void record_classifications(const FieldLoop& fl, obs::ProvenanceLog& prov) {
  for (const auto& [name, info] : fl.arrays) {
    const LoopType t = fl.type_for(name);
    prov.add(obs::DecisionKind::LoopClassification, fl.loop->loc,
             "loop@" + std::to_string(fl.loop->loc.line) + " array '" + name +
                 "'",
             std::string(loop_type_name(t)),
             classification_rationale(t, info));
  }
}

}  // namespace

std::vector<FieldLoop> analyze_field_loops(const fortran::ProgramUnit& unit,
                                           const FieldConfig& config,
                                           DiagnosticEngine& diags,
                                           obs::ProvenanceLog* prov) {
  std::vector<FieldLoop> out;
  const LoopTree tree = LoopTree::build(unit);

  // Analyze every loop node tentatively; then keep maximal nests.
  std::map<const LoopTree::Node*, FieldLoop> analyzed;
  for (const auto* node : tree.all_nodes()) {
    FieldLoop fl;
    fl.loop = node->loop;
    fl.unit = &unit;
    std::map<std::string, int> vars, dirs;
    collect_loop_vars(*node->loop, vars, dirs);
    fl.var_dims = std::move(vars);
    fl.var_dirs = std::move(dirs);

    Collector c{&config, &fl.var_dims, &fl, &diags};
    c.visit_stmts(node->loop->body);
    // Also classify subscripts in the loop header of the root itself.
    analyzed.emplace(node, std::move(fl));
  }

  // A field-loop root is a loop that scans the field while no ancestor
  // does (the frame/iteration loop above it does not index the grid).
  // Decide for every node before any FieldLoop is moved out of the map.
  std::map<const LoopTree::Node*, bool> scans;
  for (const auto* node : tree.all_nodes()) {
    scans[node] = scans_field(*node, analyzed.at(node));
  }
  for (const auto* node : tree.all_nodes()) {
    auto& fl = analyzed.at(node);
    if (!scans.at(node)) continue;
    bool ancestor_scans = false;
    for (const auto* anc : LoopTree::ancestors(*node)) {
      if (scans.at(anc)) {
        ancestor_scans = true;
        break;
      }
    }
    if (ancestor_scans) continue;
    // Drop variables that never got a dimension.
    for (auto it = fl.var_dims.begin(); it != fl.var_dims.end();) {
      if (it->second < 0) {
        it = fl.var_dims.erase(it);
      } else {
        ++it;
      }
    }
    out.push_back(std::move(fl));
  }

  // Document order.
  std::sort(out.begin(), out.end(),
            [](const FieldLoop& a, const FieldLoop& b) {
              return a.loop->id < b.loop->id;
            });
  if (prov != nullptr) {
    for (const auto& fl : out) record_classifications(fl, *prov);
  }
  return out;
}

}  // namespace autocfd::ir

// Call graph over program units. The interprocedural synchronization
// optimization (paper section 5.3) hoists sync regions out of
// subroutines, which requires call sites and a recursion check (the
// Fortran-77 subset forbids recursion, as F77 itself does).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "autocfd/fortran/ast.hpp"
#include "autocfd/support/diagnostics.hpp"

namespace autocfd::ir {

struct CallSite {
  const fortran::Stmt* stmt = nullptr;  // the Call statement
  std::string caller;
  std::string callee;
};

class CallGraph {
 public:
  static CallGraph build(const fortran::SourceFile& file,
                         DiagnosticEngine& diags);

  [[nodiscard]] const std::vector<CallSite>& call_sites() const {
    return sites_;
  }
  [[nodiscard]] std::vector<const CallSite*> calls_from(
      std::string_view caller) const;
  [[nodiscard]] std::vector<const CallSite*> calls_to(
      std::string_view callee) const;

  /// Units in reverse topological order (callees before callers); the
  /// interprocedural sync pass processes them bottom-up.
  [[nodiscard]] const std::vector<std::string>& bottom_up_order() const {
    return order_;
  }

  [[nodiscard]] bool has_recursion() const { return recursive_; }

 private:
  std::vector<CallSite> sites_;
  std::vector<std::string> order_;
  bool recursive_ = false;
};

}  // namespace autocfd::ir

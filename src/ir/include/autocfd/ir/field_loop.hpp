// Field-loop analysis: finds the loops that scan the flow field and
// classifies them per status array into the paper's four types
// (Figure 1): A-type (assignment-only), R-type (reference-only),
// C-type (combined) and O-type (unrelated).
//
// The analysis also extracts the stencil of every access — per-dimension
// subscript patterns with offsets — which is what the partition-aware
// dependency analysis (section 4.2) consumes, including the paper's
// special cases: direction-limited references (case 2), boundary code
// sections (case 3), packed status arrays with extended dimensions
// (case 4) and dependency distances larger than 1 (case 5).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "autocfd/fortran/ast.hpp"
#include "autocfd/ir/loop_tree.hpp"
#include "autocfd/obs/provenance.hpp"
#include "autocfd/support/diagnostics.hpp"

namespace autocfd::ir {

/// What the user directives tell us about the flow field.
struct FieldConfig {
  int grid_rank = 2;  // number of flow-field dimensions
  std::vector<std::string> status_arrays;

  [[nodiscard]] bool is_status(std::string_view array) const;
  /// Number of status dimensions of `array_rank`-dimensional status
  /// array: min(rank, grid_rank). Trailing dimensions beyond the grid
  /// rank are "extended" (packed) dimensions (paper section 4.2 case 4).
  [[nodiscard]] int status_dims(int array_rank) const;
};

/// Pattern of one subscript expression relative to the loop variables
/// of the enclosing field-loop nest.
struct SubscriptPattern {
  enum class Kind {
    LoopIndex,  // var, var+c or var-c for an enclosing loop variable
    Invariant,  // constant or loop-invariant expression
    Complex,    // indirect (g(i)) or multi-variable — analysis gives up
  };
  Kind kind = Kind::Invariant;
  std::string loop_var;  // LoopIndex only
  long long offset = 0;  // LoopIndex only: v(i+offset)
  std::optional<long long> const_value;  // Invariant with known value

  friend bool operator==(const SubscriptPattern&,
                         const SubscriptPattern&) = default;
};

/// One read or write of a status array inside a field loop.
struct ArrayAccess {
  const fortran::Stmt* stmt = nullptr;  // assignment holding the access
  bool is_write = false;
  std::vector<SubscriptPattern> subs;  // one per array dimension
};

/// Per-array access summary within one field loop.
struct ArrayInfo {
  std::string name;
  std::vector<ArrayAccess> writes;
  std::vector<ArrayAccess> reads;

  [[nodiscard]] bool assigned() const { return !writes.empty(); }
  [[nodiscard]] bool referenced() const { return !reads.empty(); }
};

enum class LoopType { A, R, C, O };
[[nodiscard]] std::string_view loop_type_name(LoopType t);

/// Scalar reduction recognized inside a field loop
/// (errmax = max(errmax, ...) or s = s + ...).
struct ReductionInfo {
  std::string var;
  std::string op;  // "max", "min" or "sum"
  const fortran::Stmt* stmt = nullptr;
};

/// A field loop: the outermost Do of a nest scanning the flow field.
struct FieldLoop {
  const fortran::Stmt* loop = nullptr;
  const fortran::ProgramUnit* unit = nullptr;

  /// loop variable -> 0-based grid dimension it scans.
  std::map<std::string, int> var_dims;
  /// loop variable -> +1 (ascending) or -1 (descending).
  std::map<std::string, int> var_dirs;
  /// Per status array touched in the nest.
  std::map<std::string, ArrayInfo> arrays;
  std::vector<ReductionInfo> reductions;

  [[nodiscard]] LoopType type_for(std::string_view array) const;
  /// Grid dimensions scanned by this nest, ascending.
  [[nodiscard]] std::vector<int> scanned_dims() const;
  [[nodiscard]] int dir_of_dim(int dim) const;  // 0 if dim not scanned
};

/// Analyzes one unit. All loops whose variables index status dimensions
/// are found; for each maximal such nest a FieldLoop is produced.
/// With a provenance log, one LoopClassification entry is recorded per
/// (field loop, status array) stating the A/R/C/O verdict and why.
[[nodiscard]] std::vector<FieldLoop> analyze_field_loops(
    const fortran::ProgramUnit& unit, const FieldConfig& config,
    DiagnosticEngine& diags, obs::ProvenanceLog* prov = nullptr);

/// Classifies one subscript expression. `var_dims` gives the loop
/// variables in scope (any map value works; only keys are used).
[[nodiscard]] SubscriptPattern classify_subscript(
    const fortran::Expr& sub, const std::map<std::string, int>& loop_vars);

}  // namespace autocfd::ir

// Loop structure tree implementing the paper's Definitions 6.1-6.4:
// inner/outer loops, direct inner/outer loops, adjacent loops and
// simple loops. The sync optimizer (section 5) is phrased entirely in
// terms of these relations.
//
// Nodes point into the unit's AST (non-owning); the tree is valid as
// long as the SourceFile it was built from is alive and unmodified.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "autocfd/fortran/ast.hpp"

namespace autocfd::ir {

class LoopTree {
 public:
  struct Node {
    const fortran::Stmt* loop = nullptr;  // the Do statement
    Node* parent = nullptr;               // enclosing loop, null if top level
    std::vector<Node*> children;          // loops directly inside
    int depth = 0;                        // 0 for outermost loops
  };

  /// Builds the loop tree for one program unit. Loops inside both
  /// branches of an If are still "inside" their enclosing loop, so If
  /// nesting is transparent here (branch structure is handled by the
  /// sync region machinery separately).
  static LoopTree build(const fortran::ProgramUnit& unit);

  [[nodiscard]] const std::vector<Node*>& roots() const { return roots_; }
  [[nodiscard]] const Node* node_for(const fortran::Stmt& loop) const;
  [[nodiscard]] std::vector<const Node*> all_nodes() const;

  // --- Definitions 6.1-6.4 -------------------------------------------------

  /// Def 6.1: L2 is an inner loop of L1 (strictly nested, any depth).
  [[nodiscard]] static bool is_inner(const Node& l2, const Node& l1);

  /// Def 6.2: L1 |- L2 — L2 is a *direct* inner loop of L1.
  [[nodiscard]] static bool is_direct_inner(const Node& l2, const Node& l1);

  /// Def 6.3: L1 || L2 — adjacent loops (same direct outer loop, or
  /// both outermost).
  [[nodiscard]] static bool adjacent(const Node& l1, const Node& l2);

  /// Def 6.4: a simple loop contains no pair of adjacent inner loops —
  /// i.e. every nesting level inside it has at most one loop.
  [[nodiscard]] static bool is_simple(const Node& l);

  /// The chain of enclosing loops, innermost first.
  [[nodiscard]] static std::vector<const Node*> ancestors(const Node& l);

 private:
  std::vector<std::unique_ptr<Node>> storage_;
  std::vector<Node*> roots_;
  std::map<const fortran::Stmt*, Node*> by_stmt_;
};

}  // namespace autocfd::ir

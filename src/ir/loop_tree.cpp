#include "autocfd/ir/loop_tree.hpp"

namespace autocfd::ir {

namespace {

void collect(const fortran::StmtList& stmts, LoopTree::Node* parent,
             std::vector<std::unique_ptr<LoopTree::Node>>& storage,
             std::vector<LoopTree::Node*>& roots,
             std::map<const fortran::Stmt*, LoopTree::Node*>& by_stmt) {
  for (const auto& s : stmts) {
    if (s->kind == fortran::StmtKind::Do) {
      auto node = std::make_unique<LoopTree::Node>();
      node->loop = s.get();
      node->parent = parent;
      node->depth = parent ? parent->depth + 1 : 0;
      LoopTree::Node* raw = node.get();
      storage.push_back(std::move(node));
      by_stmt[s.get()] = raw;
      if (parent) {
        parent->children.push_back(raw);
      } else {
        roots.push_back(raw);
      }
      collect(s->body, raw, storage, roots, by_stmt);
      collect(s->else_body, raw, storage, roots, by_stmt);
    } else {
      // If branches and logical-if bodies are transparent for loop
      // nesting purposes.
      collect(s->body, parent, storage, roots, by_stmt);
      collect(s->else_body, parent, storage, roots, by_stmt);
    }
  }
}

}  // namespace

LoopTree LoopTree::build(const fortran::ProgramUnit& unit) {
  LoopTree tree;
  collect(unit.body, nullptr, tree.storage_, tree.roots_, tree.by_stmt_);
  return tree;
}

const LoopTree::Node* LoopTree::node_for(const fortran::Stmt& loop) const {
  const auto it = by_stmt_.find(&loop);
  return it == by_stmt_.end() ? nullptr : it->second;
}

std::vector<const LoopTree::Node*> LoopTree::all_nodes() const {
  std::vector<const Node*> out;
  out.reserve(storage_.size());
  for (const auto& n : storage_) out.push_back(n.get());
  return out;
}

bool LoopTree::is_inner(const Node& l2, const Node& l1) {
  for (const Node* p = l2.parent; p; p = p->parent) {
    if (p == &l1) return true;
  }
  return false;
}

bool LoopTree::is_direct_inner(const Node& l2, const Node& l1) {
  return l2.parent == &l1;
}

bool LoopTree::adjacent(const Node& l1, const Node& l2) {
  return &l1 != &l2 && l1.parent == l2.parent;
}

bool LoopTree::is_simple(const Node& l) {
  // No nesting level inside l may hold two adjacent loops.
  if (l.children.size() > 1) return false;
  for (const Node* c : l.children) {
    if (!is_simple(*c)) return false;
  }
  return true;
}

std::vector<const LoopTree::Node*> LoopTree::ancestors(const Node& l) {
  std::vector<const Node*> out;
  for (const Node* p = l.parent; p; p = p->parent) out.push_back(p);
  return out;
}

}  // namespace autocfd::ir

#include "autocfd/ledger/history.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>

#include "autocfd/ledger/sentinel.hpp"
#include "autocfd/obs/json_util.hpp"

namespace autocfd::ledger {

std::optional<HistoryFormat> parse_history_format(std::string_view name) {
  if (name.empty() || name == "text") return HistoryFormat::Text;
  if (name == "json") return HistoryFormat::Json;
  if (name == "html") return HistoryFormat::Html;
  return std::nullopt;
}

std::string sparkline(const std::vector<double>& values, int width) {
  static const char kLevels[] = " .:-=+*#%@";
  constexpr int kNumLevels = 10;
  if (values.empty() || width <= 0) return "";
  const std::size_t n = values.size();
  const std::size_t take = std::min<std::size_t>(
      n, static_cast<std::size_t>(width));
  const std::size_t start = n - take;
  double lo = values[start], hi = values[start];
  for (std::size_t i = start; i < n; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  out.reserve(take);
  for (std::size_t i = start; i < n; ++i) {
    if (hi <= lo) {
      out += '=';
      continue;
    }
    const double t = (values[i] - lo) / (hi - lo);
    int level = static_cast<int>(t * (kNumLevels - 1) + 0.5);
    level = std::max(0, std::min(kNumLevels - 1, level));
    out += kLevels[level];
  }
  return out;
}

namespace {

/// One group's records in ledger order, with the metric series laid
/// out for rendering.
struct GroupView {
  std::string key;
  const RunRecord* newest = nullptr;
  std::vector<const RunRecord*> records;
  /// metric -> values, one per record that carried it (ledger order).
  std::map<std::string, std::vector<double>> series;
};

std::vector<GroupView> build_groups(const std::vector<RunRecord>& records) {
  std::map<std::string, GroupView> by_key;
  for (const auto& rec : records) {
    auto& group = by_key[rec.group_key()];
    group.key = rec.group_key();
    group.records.push_back(&rec);
    group.newest = &rec;
    for (const auto& [metric, value] : rec.metrics) {
      group.series[metric].push_back(value);
    }
  }
  std::vector<GroupView> out;
  out.reserve(by_key.size());
  for (auto& [key, group] : by_key) out.push_back(std::move(group));
  return out;
}

/// The metrics the human views lead with when all_metrics is off: the
/// gating keys plus the headline cost accounts.
bool is_headline(const std::string& metric) {
  if (metric_direction(metric) != Direction::Informational) return true;
  static const std::set<std::string> kHeadline = {
      "comm.share",        "comm.wait_s",   "comm.transfer_s",
      "comm.compute_s",    "total_flops",   "phase.total.wall_s",
      "cell.efficiency",   "cell.karp_flatt",
      "recovery.recovery_s",
  };
  return kHeadline.count(metric) > 0;
}

struct SeriesStats {
  double first = 0.0, last = 0.0, lo = 0.0, hi = 0.0;
};

SeriesStats stats_of(const std::vector<double>& values) {
  SeriesStats s;
  if (values.empty()) return s;
  s.first = values.front();
  s.last = values.back();
  s.lo = *std::min_element(values.begin(), values.end());
  s.hi = *std::max_element(values.begin(), values.end());
  return s;
}

void write_text(const std::vector<GroupView>& groups, std::ostream& os,
                const HistoryOptions& options) {
  if (groups.empty()) {
    os << "history: no records\n";
    return;
  }
  for (const auto& group : groups) {
    const auto& head = *group.newest;
    os << "== " << head.kind << " " << head.input << " [" << head.engine
       << (head.engine.empty() ? "" : ", ") << head.build_type << ", "
       << head.machine << "] - " << group.records.size() << " record(s)\n";
    char line[256];
    std::snprintf(line, sizeof line, "   %-36s %10s %10s %10s %10s  %s\n",
                  "metric", "first", "last", "min", "max", "trend");
    os << line;
    for (const auto& [metric, values] : group.series) {
      if (!options.all_metrics && !is_headline(metric)) continue;
      const auto s = stats_of(values);
      std::snprintf(line, sizeof line,
                    "   %-36s %10.5g %10.5g %10.5g %10.5g  [%s]\n",
                    metric.c_str(), s.first, s.last, s.lo, s.hi,
                    sparkline(values, options.spark_width).c_str());
      os << line;
    }
    os << "\n";
  }
}

void write_json(const std::vector<GroupView>& groups, std::ostream& os) {
  using obs::json_escape;
  using obs::json_number;
  os << "{\n  \"schema_version\": " << kLedgerSchemaVersion
     << ",\n  \"groups\": [";
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& group = groups[g];
    const auto& head = *group.newest;
    os << (g > 0 ? "," : "") << "\n    {\"kind\": \""
       << json_escape(head.kind) << "\", \"input\": \""
       << json_escape(head.input) << "\", \"engine\": \""
       << json_escape(head.engine) << "\", \"build_type\": \""
       << json_escape(head.build_type) << "\", \"machine\": \""
       << json_escape(head.machine) << "\", \"records\": "
       << group.records.size() << ", \"series\": [";
    bool first = true;
    for (const auto& [metric, values] : group.series) {
      os << (first ? "" : ", ") << "\n      {\"metric\": \""
         << json_escape(metric) << "\", \"values\": [";
      for (std::size_t i = 0; i < values.size(); ++i) {
        os << (i > 0 ? ", " : "") << json_number(values[i]);
      }
      os << "]}";
      first = false;
    }
    os << "\n    ]}";
  }
  os << "\n  ]\n}\n";
}

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

void write_html(const std::vector<GroupView>& groups, std::ostream& os,
                const HistoryOptions& options) {
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
        "<title>acfd run history</title>\n<style>\n"
        "body { font-family: sans-serif; margin: 2em; color: #222; }\n"
        "h2 { border-bottom: 1px solid #ccc; padding-bottom: 0.2em; }\n"
        "table { border-collapse: collapse; margin: 0.6em 0 1.6em; }\n"
        "th, td { padding: 0.25em 0.9em; text-align: right; }\n"
        "th { background: #f0f0f0; }\n"
        "td.metric, th.metric { text-align: left; font-family: monospace; }\n"
        "td.spark { font-family: monospace; white-space: pre;"
        " letter-spacing: 0.05em; background: #fafafa; }\n"
        "tr:nth-child(even) { background: #f7f7fb; }\n"
        ".meta { color: #777; font-size: 0.9em; }\n"
        "</style>\n</head>\n<body>\n<h1>acfd run history</h1>\n";
  if (groups.empty()) {
    os << "<p>No records.</p>\n";
  }
  for (const auto& group : groups) {
    const auto& head = *group.newest;
    os << "<h2>" << html_escape(head.kind) << " &middot; "
       << html_escape(head.input) << "</h2>\n<p class=\"meta\">engine "
       << html_escape(head.engine.empty() ? "-" : head.engine)
       << " &middot; " << html_escape(head.build_type) << " &middot; "
       << html_escape(head.machine) << " &middot; " << group.records.size()
       << " record(s)</p>\n<table>\n<tr><th class=\"metric\">metric</th>"
          "<th>first</th><th>last</th><th>min</th><th>max</th>"
          "<th>trend</th></tr>\n";
    for (const auto& [metric, values] : group.series) {
      if (!options.all_metrics && !is_headline(metric)) continue;
      const auto s = stats_of(values);
      char cells[160];
      std::snprintf(cells, sizeof cells,
                    "<td>%.5g</td><td>%.5g</td><td>%.5g</td><td>%.5g</td>",
                    s.first, s.last, s.lo, s.hi);
      os << "<tr><td class=\"metric\">" << html_escape(metric) << "</td>"
         << cells << "<td class=\"spark\">"
         << html_escape(sparkline(values, options.spark_width))
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }
  os << "</body>\n</html>\n";
}

}  // namespace

void write_history(const std::vector<RunRecord>& records,
                   HistoryFormat format, std::ostream& os,
                   const HistoryOptions& options) {
  const auto groups = build_groups(records);
  switch (format) {
    case HistoryFormat::Text: write_text(groups, os, options); break;
    case HistoryFormat::Json: write_json(groups, os); break;
    case HistoryFormat::Html: write_html(groups, os, options); break;
  }
}

}  // namespace autocfd::ledger

// Run-history views over a telemetry ledger: per-group trend tables
// with ASCII sparklines (text), a full machine-readable dump (json)
// and a self-contained dashboard (html). A "group" is the sentinel's
// comparison unit — (kind, input, engine, build_type, machine) — so
// what the dashboards trend is exactly what the sentinel gates.
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

#include "autocfd/ledger/ledger.hpp"

namespace autocfd::ledger {

enum class HistoryFormat { Text, Json, Html };

/// Parses "text" / "json" / "html"; empty selects Text.
[[nodiscard]] std::optional<HistoryFormat> parse_history_format(
    std::string_view name);

struct HistoryOptions {
  /// Sparklines sample the last `spark_width` records of a series.
  int spark_width = 32;
  /// Text/HTML views show the gating metrics (elapsed / speedup /
  /// identical) plus a short headline set; this widens them to every
  /// metric the group ever recorded. JSON always emits everything.
  bool all_metrics = false;
};

/// Renders the records (ledger order) in the requested format.
void write_history(const std::vector<RunRecord>& records,
                   HistoryFormat format, std::ostream& os,
                   const HistoryOptions& options = {});

/// The ASCII sparkline the views share: one character per sample,
/// " .:-=+*#%@" from the series minimum to its maximum (a flat series
/// renders as '='). Exposed for tests.
[[nodiscard]] std::string sparkline(const std::vector<double>& values,
                                    int width);

}  // namespace autocfd::ledger

// Telemetry ledger: the persistent memory between acfd invocations.
//
// Every run of the pipeline — an `acfd` invocation, one bench binary's
// sidecar, one sweep cell — distills into a RunRecord and appends one
// line to a JSONL ledger file. The ledger is append-only and
// schema-versioned: each line is a self-contained JSON object carrying
// its own schema_version, so mixed-version files read cleanly (foreign
// versions are skipped with a warning, never misread) and a truncated
// or corrupted line costs exactly that line.
//
// Records are written with the repository's deterministic JSON
// conventions (fixed key order, obs::json_number formatting), so one
// record round-trips write -> read -> write byte-identically — the
// property CI leans on to diff ledgers — and are read back with
// plan::json_reader, the same reader the planner and sweep use.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace autocfd::ledger {

/// Version stamp of the run-record JSON schema. Bump whenever a field
/// is added, removed, or changes meaning; readers skip records from
/// another version with a warning instead of misreading them.
inline constexpr int kLedgerSchemaVersion = 1;

/// One execution distilled for longitudinal comparison. The meta
/// fields identify *what* was measured (the regression sentinel only
/// compares records that agree on all of them); `metrics` holds every
/// numeric observation under the flat dotted-key convention the bench
/// sidecars already use ("elapsed_s", "phase.total.wall_s",
/// "hot.0.time_s", ...); `attrs` holds string-valued facts ("hot.0
/// .class", "plan.partition", ...).
struct RunRecord {
  int schema_version = kLedgerSchemaVersion;
  /// Provenance of the record: "run" (acfd), "bench" (a bench binary's
  /// sidecar), "sweep-cell" (one cell of a scaling sweep).
  std::string kind;
  /// Program or bench identity ("aerofoil", "fig_overlap", ...).
  std::string input;

  // meta.* — the measurement configuration.
  std::string source_fnv;  // FNV-1a hex of the source text; "" unknown
  std::string build_type;  // "Release" | "Debug"
  std::string engine;      // "bytecode" | "tree"; "" when not a run
  std::string machine;     // machine-model name
  long long seed = 0;      // fault-plan seed (0: clean)
  std::string partition;   // PartitionSpec::str(); "" when not a run
  std::string strategy;    // combine strategy; "" when not a run
  int nranks = 0;

  std::map<std::string, double> metrics;
  std::map<std::string, std::string> attrs;

  /// The sentinel's grouping identity: records comparing apples to
  /// apples agree on this string.
  [[nodiscard]] std::string group_key() const;

  /// One JSON object on a single line (no trailing newline).
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;
};

/// A parsed ledger: the readable records in file order plus one
/// warning per skipped line ("<origin>:<line>: <why> (skipped)").
struct LedgerReadResult {
  std::vector<RunRecord> records;
  std::vector<std::string> warnings;
};

/// Parses JSONL text. Corrupt lines and records with a foreign
/// schema_version are skipped with an actionable warning; blank lines
/// are ignored silently.
[[nodiscard]] LedgerReadResult parse_ledger(std::string_view text,
                                            std::string_view origin);

/// Reads and parses a ledger file. A missing or unreadable file yields
/// zero records and one warning — a fresh ledger is not an error.
[[nodiscard]] LedgerReadResult read_ledger(const std::string& path);

/// Appends one record as a JSONL line, creating the file if needed.
/// Returns a one-line diagnostic on I/O failure, nullopt on success.
std::optional<std::string> append_record(const std::string& path,
                                         const RunRecord& record);

/// Compaction: rewrites the ledger keeping only the newest
/// `keep_last` records of every group (RunRecord::group_key), in
/// their original relative order. Unreadable lines are dropped (they
/// were unreadable anyway). Returns a diagnostic on I/O failure.
struct CompactionStats {
  std::size_t kept = 0;
  std::size_t dropped = 0;
};
std::optional<std::string> compact_ledger(const std::string& path,
                                          std::size_t keep_last,
                                          CompactionStats* stats = nullptr);

/// Rotation: when the ledger holds more than `max_records` readable
/// records, renames it to "<path>.1" (replacing any previous rotation)
/// so appends start a fresh file. Returns true when a rotation
/// happened.
bool rotate_ledger(const std::string& path, std::size_t max_records);

/// FNV-1a (64-bit) fingerprint of a source text, as fixed-width hex —
/// the identity that ties ledger records back to the exact program
/// they measured.
[[nodiscard]] std::string source_fingerprint(std::string_view source);

/// "Release" or "Debug", from NDEBUG — inline so every translation
/// unit reports its own build flavor, matching bench_util's sidecars.
[[nodiscard]] inline std::string build_type_name() {
#ifdef NDEBUG
  return "Release";
#else
  return "Debug";
#endif
}

}  // namespace autocfd::ledger

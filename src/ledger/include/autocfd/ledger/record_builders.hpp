// Builders that distill the repository's existing observability
// artifacts into ledger RunRecords: a finished prof::RunReport (plus
// the compile-side ObsContext), and a bench binary's flat sidecar
// maps. The sweep layer builds its per-cell records on top of
// make_run_record and adds the scaling figures itself, so the ledger
// stays independent of src/sweep.
#pragma once

#include <map>
#include <string>

#include "autocfd/ledger/ledger.hpp"

namespace autocfd::obs {
struct ObsContext;
}
namespace autocfd::prof {
struct RunReport;
}

namespace autocfd::ledger {

/// The measurement configuration a caller knows up front.
struct RunMeta {
  std::string kind;     // "run" | "bench" | "sweep-cell"
  std::string input;    // program stem / bench name / sweep title
  std::string machine;  // machine-model name
  /// Source text to fingerprint; empty leaves source_fnv blank.
  std::string source;
  long long seed = 0;  // fault-plan seed, 0 when clean
};

/// Distills one execution. `report` (nullable) contributes the runtime
/// block — elapsed/speedup, rank-time decomposition, wire totals,
/// recovery rollup, top-5 hot loops, compile summary, partition and
/// engine identity; `obs` (nullable) contributes the pass-profiler
/// phases and the metrics-registry snapshot. With both null the record
/// carries meta only — still a valid (if silent) history point.
[[nodiscard]] RunRecord make_run_record(const RunMeta& meta,
                                        const prof::RunReport* report,
                                        const obs::ObsContext* obs);

/// Wraps one bench sidecar (the flat BENCH_*.json maps) as a record.
/// The sidecar's meta.build_type / meta.engine / meta.machine /
/// meta.seed keys are lifted into the record's identity fields; every
/// other key is preserved verbatim, so the sentinel gates exactly the
/// keys bench_compare would.
[[nodiscard]] RunRecord record_from_sidecar(
    const std::string& input, const std::map<std::string, double>& numbers,
    const std::map<std::string, std::string>& strings);

/// Reads one BENCH_*.json sidecar file into a record. The record's
/// input is the file's stem with the "BENCH_" prefix stripped
/// ("BENCH_fig_overlap.json" -> "fig_overlap"). Returns nullopt with a
/// diagnostic when the file is unreadable or not a flat JSON object.
[[nodiscard]] std::optional<RunRecord> record_from_sidecar_file(
    const std::string& path, std::string* error);

}  // namespace autocfd::ledger

// Deterministic regression sentinel over a telemetry ledger.
//
// The sentinel turns the ledger's run history into a gate: for every
// (kind, input, engine, build_type, machine) group it forms a robust
// baseline — median and MAD over the last K earlier records — for each
// gating metric of the group's newest record, and flags the newest
// value when it falls outside the direction-aware tolerance. Gating
// metrics follow tools/bench_compare's key conventions: keys containing
// "elapsed" are lower-better, keys containing "speedup" or "identical"
// are higher-better, everything else is informational and never gates.
//
// The median+MAD baseline makes the gate robust to the odd outlier in
// history (one slow CI run does not poison the baseline) while an
// actual regression — the newest record drifting beyond both the
// relative threshold and the noise band — trips it deterministically.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "autocfd/ledger/ledger.hpp"

namespace autocfd::ledger {

enum class Direction { LowerBetter, HigherBetter, Informational };

/// bench_compare's key conventions: "elapsed" lower-better, "speedup"
/// and "identical" higher-better, everything else informational.
[[nodiscard]] Direction metric_direction(const std::string& key);

struct SentinelOptions {
  /// Baseline window: how many earlier records of the group feed the
  /// median/MAD (fewer exist near the ledger's start).
  std::size_t window = 8;
  /// Minimum earlier records before a metric gates at all; below this
  /// the metric is reported as "no baseline yet" and never fails.
  std::size_t min_history = 3;
  /// Relative tolerance around the median (the floor of the band).
  double rel_threshold = 0.10;
  /// Noise band: the tolerance also admits mad_factor * MAD, so a
  /// metric whose history genuinely wobbles gets proportional slack.
  double mad_factor = 4.0;
};

/// One gated metric of one group's newest record.
struct SentinelFinding {
  std::string group;   // RunRecord::group_key()
  std::string input;   // the group's input, for the headline
  std::string metric;
  Direction direction = Direction::Informational;
  double value = 0.0;            // newest record's value
  double baseline_median = 0.0;  // over the window
  double baseline_mad = 0.0;
  double tolerance = 0.0;        // absolute band half-width applied
  std::size_t history = 0;       // earlier records consulted
  bool regressed = false;
};

struct SentinelReport {
  std::size_t groups = 0;           // groups with a newest record
  std::size_t metrics_checked = 0;  // gating metrics with enough history
  std::size_t metrics_waiting = 0;  // gating metrics below min_history
  /// Every checked metric, regressions first then by (group, metric).
  std::vector<SentinelFinding> findings;

  [[nodiscard]] std::vector<const SentinelFinding*> regressions() const;
  [[nodiscard]] bool ok() const { return regressions().empty(); }
};

/// Runs the sentinel over records in ledger (file) order: the last
/// record of each group is the candidate, the up-to-`window` records
/// before it are its baseline.
[[nodiscard]] SentinelReport run_sentinel(
    const std::vector<RunRecord>& records, const SentinelOptions& options = {});

/// Human-readable verdict table (one line per checked metric, loud
/// REGRESSED lines first) and deterministic JSON for tooling.
void write_sentinel_text(const SentinelReport& report, std::ostream& os);
void write_sentinel_json(const SentinelReport& report, std::ostream& os);

}  // namespace autocfd::ledger

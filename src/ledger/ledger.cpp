#include "autocfd/ledger/ledger.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "autocfd/obs/json_util.hpp"
#include "autocfd/plan/json_reader.hpp"

namespace autocfd::ledger {

// ----------------------------------------------------------- RunRecord

std::string RunRecord::group_key() const {
  // The apples-to-apples identity: two records are comparable only
  // when the same input ran under the same engine, build flavor and
  // machine model. kind is included so a bench sidecar never baselines
  // an interactive run of the same program.
  return kind + "|" + input + "|" + engine + "|" + build_type + "|" +
         machine;
}

void RunRecord::write_json(std::ostream& os) const {
  using obs::json_escape;
  using obs::json_number;
  os << "{\"schema_version\": " << schema_version;
  os << ", \"kind\": \"" << json_escape(kind) << "\"";
  os << ", \"input\": \"" << json_escape(input) << "\"";
  os << ", \"meta\": {";
  os << "\"source_fnv\": \"" << json_escape(source_fnv) << "\"";
  os << ", \"build_type\": \"" << json_escape(build_type) << "\"";
  os << ", \"engine\": \"" << json_escape(engine) << "\"";
  os << ", \"machine\": \"" << json_escape(machine) << "\"";
  os << ", \"seed\": " << seed;
  os << ", \"partition\": \"" << json_escape(partition) << "\"";
  os << ", \"strategy\": \"" << json_escape(strategy) << "\"";
  os << ", \"nranks\": " << nranks;
  os << "}, \"metrics\": {";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    os << (first ? "" : ", ") << "\"" << json_escape(key)
       << "\": " << json_number(value);
    first = false;
  }
  os << "}, \"attrs\": {";
  first = true;
  for (const auto& [key, value] : attrs) {
    os << (first ? "" : ", ") << "\"" << json_escape(key) << "\": \""
       << json_escape(value) << "\"";
    first = false;
  }
  os << "}}";
}

std::string RunRecord::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

// ------------------------------------------------------------- reading

namespace {

/// Rebuilds a RunRecord from one parsed JSONL line. Returns nullopt
/// with a one-line reason when the line cannot be a record of this
/// schema version.
std::optional<RunRecord> record_from_json(const plan::JsonValue& root,
                                          std::string* why) {
  if (root.kind != plan::JsonValue::Kind::Object) {
    *why = "not a JSON object";
    return std::nullopt;
  }
  const long long version = root.int_or("schema_version", 0);
  if (version != kLedgerSchemaVersion) {
    *why = "record schema_version " + std::to_string(version) +
           " (this build reads " + std::to_string(kLedgerSchemaVersion) +
           "); re-record or migrate the ledger";
    return std::nullopt;
  }
  RunRecord rec;
  rec.kind = root.str_or("kind", "");
  rec.input = root.str_or("input", "");
  if (const auto* meta = root.find("meta");
      meta != nullptr && meta->kind == plan::JsonValue::Kind::Object) {
    rec.source_fnv = meta->str_or("source_fnv", "");
    rec.build_type = meta->str_or("build_type", "");
    rec.engine = meta->str_or("engine", "");
    rec.machine = meta->str_or("machine", "");
    rec.seed = meta->int_or("seed", 0);
    rec.partition = meta->str_or("partition", "");
    rec.strategy = meta->str_or("strategy", "");
    rec.nranks = static_cast<int>(meta->int_or("nranks", 0));
  }
  if (const auto* metrics = root.find("metrics");
      metrics != nullptr && metrics->kind == plan::JsonValue::Kind::Object) {
    for (const auto& [key, value] : metrics->fields) {
      if (value.kind == plan::JsonValue::Kind::Number) {
        rec.metrics[key] = value.number;
      }
    }
  }
  if (const auto* attrs = root.find("attrs");
      attrs != nullptr && attrs->kind == plan::JsonValue::Kind::Object) {
    for (const auto& [key, value] : attrs->fields) {
      if (value.kind == plan::JsonValue::Kind::String) {
        rec.attrs[key] = value.string;
      }
    }
  }
  return rec;
}

}  // namespace

LedgerReadResult parse_ledger(std::string_view text,
                              std::string_view origin) {
  LedgerReadResult result;
  std::size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    ++line_no;
    // Blank lines (and a trailing newline) are not records.
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;

    const auto warn = [&](const std::string& why) {
      result.warnings.push_back(std::string(origin) + ":" +
                                std::to_string(line_no) + ": " + why +
                                " (skipped)");
    };
    std::string parse_error;
    const auto root = plan::parse_json(line, &parse_error);
    if (!root) {
      warn("unparseable line: " + parse_error);
      continue;
    }
    std::string why;
    auto rec = record_from_json(*root, &why);
    if (!rec) {
      warn(why);
      continue;
    }
    result.records.push_back(std::move(*rec));
  }
  return result;
}

LedgerReadResult read_ledger(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    LedgerReadResult result;
    result.warnings.push_back("cannot read ledger '" + path +
                              "' (treating as empty)");
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_ledger(buf.str(), path);
}

// ------------------------------------------------------------ appending

std::optional<std::string> append_record(const std::string& path,
                                         const RunRecord& record) {
  std::ofstream os(path, std::ios::app);
  if (!os) {
    return "cannot open ledger '" + path + "' for append";
  }
  record.write_json(os);
  os << "\n";
  os.flush();
  if (!os) {
    return "write to ledger '" + path + "' failed";
  }
  return std::nullopt;
}

// ------------------------------------------- compaction and rotation

std::optional<std::string> compact_ledger(const std::string& path,
                                          std::size_t keep_last,
                                          CompactionStats* stats) {
  auto parsed = read_ledger(path);
  // Count how many of each group survive: the newest keep_last.
  std::map<std::string, std::size_t> group_sizes;
  for (const auto& rec : parsed.records) ++group_sizes[rec.group_key()];

  std::vector<const RunRecord*> kept;
  std::map<std::string, std::size_t> seen;
  for (const auto& rec : parsed.records) {
    const auto key = rec.group_key();
    const std::size_t index = seen[key]++;
    // Keep records whose index counts into the final keep_last.
    if (index + keep_last >= group_sizes[key]) kept.push_back(&rec);
  }

  // Rewrite via a sibling temp file, then replace atomically.
  const std::string tmp = path + ".compact.tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) return "cannot write '" + tmp + "'";
    for (const auto* rec : kept) {
      rec->write_json(os);
      os << "\n";
    }
    os.flush();
    if (!os) return "write to '" + tmp + "' failed";
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return "cannot replace ledger '" + path + "': " + ec.message();
  }
  if (stats != nullptr) {
    stats->kept = kept.size();
    stats->dropped = parsed.records.size() - kept.size();
  }
  return std::nullopt;
}

bool rotate_ledger(const std::string& path, std::size_t max_records) {
  const auto parsed = read_ledger(path);
  if (parsed.records.size() <= max_records) return false;
  std::error_code ec;
  std::filesystem::rename(path, path + ".1", ec);
  return !ec;
}

// ---------------------------------------------------------- fingerprint

std::string source_fingerprint(std::string_view source) {
  // FNV-1a 64, the same function the message layer uses for payload
  // checksums — cheap, deterministic, and good enough to key caches
  // and group ledger records by exact source text.
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : source) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace autocfd::ledger

#include "autocfd/ledger/record_builders.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "autocfd/obs/obs.hpp"
#include "autocfd/plan/json_reader.hpp"
#include "autocfd/prof/report.hpp"

namespace autocfd::ledger {

RunRecord make_run_record(const RunMeta& meta,
                          const prof::RunReport* report,
                          const obs::ObsContext* obs) {
  RunRecord rec;
  rec.kind = meta.kind;
  rec.input = meta.input;
  rec.machine = meta.machine;
  rec.seed = meta.seed;
  rec.build_type = build_type_name();
  if (!meta.source.empty()) {
    rec.source_fnv = source_fingerprint(meta.source);
  }

  if (report != nullptr) {
    rec.engine = report->engine;
    rec.partition = report->partition;
    rec.nranks = report->nranks;

    rec.metrics["elapsed_s"] = report->elapsed_s;
    if (report->seq_elapsed_s) {
      rec.metrics["seq_elapsed_s"] = *report->seq_elapsed_s;
    }
    if (const auto speedup = report->speedup()) {
      rec.metrics["speedup"] = *speedup;
    }
    rec.metrics["total_flops"] = report->total_flops;

    // Rank-time decomposition summed over ranks: the same figures a
    // sweep cell distills, so run and sweep-cell records trend alike.
    double compute = 0.0, transfer = 0.0, wait = 0.0, recovery = 0.0;
    for (const auto& rb : report->ranks) {
      compute += rb.compute;
      transfer += rb.transfer;
      wait += rb.wait;
      recovery += rb.recovery;
    }
    rec.metrics["comm.compute_s"] = compute;
    rec.metrics["comm.transfer_s"] = transfer;
    rec.metrics["comm.wait_s"] = wait;
    const double total = compute + transfer + wait;
    rec.metrics["comm.share"] =
        total > 0.0 ? (transfer + wait) / total : 0.0;

    long long messages = 0, bytes = 0;
    for (const auto& rt : report->comm.rank_totals) {
      messages += rt.messages_sent;
      bytes += rt.bytes_sent;
    }
    rec.metrics["comm.messages"] = static_cast<double>(messages);
    rec.metrics["comm.bytes"] = static_cast<double>(bytes);

    if (report->recovery.enabled) {
      rec.metrics["recovery.retransmits"] =
          static_cast<double>(report->recovery.retransmits);
      rec.metrics["recovery.recovered"] =
          static_cast<double>(report->recovery.recovered);
      rec.metrics["recovery.recovery_s"] = recovery;
    }

    // Compile summary: the decisions whose runtime cost the trend
    // lines explain.
    rec.metrics["compile.field_loops"] = report->compile.field_loops;
    rec.metrics["compile.dependence_pairs"] =
        report->compile.dependence_pairs;
    rec.metrics["compile.syncs_before"] = report->compile.syncs_before;
    rec.metrics["compile.syncs_after"] = report->compile.syncs_after;
    rec.metrics["compile.optimization_percent"] =
        report->compile.optimization_percent;
    rec.metrics["compile.pipelined_loops"] =
        report->compile.pipelined_loops;
    rec.metrics["compile.mirror_image_loops"] =
        report->compile.mirror_image_loops;

    // Top-5 hot loops, in the bench sidecars' hot.N.* convention.
    const auto hot = report->profile.hottest(5);
    for (std::size_t i = 0; i < hot.size(); ++i) {
      const std::string prefix = "hot." + std::to_string(i);
      rec.metrics[prefix + ".line"] =
          static_cast<double>(hot[i]->loc.line);
      rec.metrics[prefix + ".time_s"] = hot[i]->time_s;
      rec.metrics[prefix + ".share"] = hot[i]->share;
      rec.attrs[prefix + ".class"] =
          hot[i]->loop_class.empty() ? (hot[i]->is_loop ? "?" : "-")
                                     : hot[i]->loop_class;
    }
  }

  if (obs != nullptr) {
    for (const auto& phase : obs->profiler.phases()) {
      rec.metrics["phase." + phase.name + ".wall_s"] = phase.wall_s;
      for (const auto& [key, value] : phase.counters) {
        rec.metrics["phase." + phase.name + "." + key] = value;
      }
    }
    rec.metrics["phase.total.wall_s"] = obs->profiler.total_wall_s();

    // Metrics-registry snapshot: counters and gauges verbatim,
    // histograms as their summary statistics.
    for (const auto& [name, value] : obs->metrics.counters()) {
      rec.metrics[name] = static_cast<double>(value);
    }
    for (const auto& [name, value] : obs->metrics.gauges()) {
      rec.metrics[name] = value;
    }
    for (const auto& [name, hist] : obs->metrics.histograms()) {
      rec.metrics[name + ".count"] = static_cast<double>(hist.count());
      rec.metrics[name + ".sum"] = hist.sum();
      rec.metrics[name + ".mean"] = hist.mean();
      rec.metrics[name + ".min"] = hist.min();
      rec.metrics[name + ".max"] = hist.max();
    }
  }
  return rec;
}

RunRecord record_from_sidecar(
    const std::string& input, const std::map<std::string, double>& numbers,
    const std::map<std::string, std::string>& strings) {
  RunRecord rec;
  rec.kind = "bench";
  rec.input = input;
  rec.build_type = build_type_name();

  for (const auto& [key, value] : strings) {
    if (key == "meta.build_type") {
      rec.build_type = value;
    } else if (key == "meta.engine") {
      rec.engine = value;
    } else if (key == "meta.machine") {
      rec.machine = value;
    } else {
      rec.attrs[key] = value;
    }
  }
  for (const auto& [key, value] : numbers) {
    if (key == "meta.seed") {
      rec.seed = static_cast<long long>(value);
    } else {
      rec.metrics[key] = value;
    }
  }
  return rec;
}

std::optional<RunRecord> record_from_sidecar_file(const std::string& path,
                                                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open";
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();

  std::string parse_error;
  const auto doc = plan::parse_json(text.str(), &parse_error);
  if (!doc || doc->kind != plan::JsonValue::Kind::Object) {
    if (error != nullptr) {
      *error = path + ": " +
               (parse_error.empty() ? "not a JSON object" : parse_error);
    }
    return std::nullopt;
  }

  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
  for (const auto& [key, value] : doc->fields) {
    if (value.kind == plan::JsonValue::Kind::Number) {
      numbers[key] = value.number;
    } else if (value.kind == plan::JsonValue::Kind::String) {
      strings[key] = value.string;
    } else if (value.kind == plan::JsonValue::Kind::Bool) {
      numbers[key] = value.boolean ? 1.0 : 0.0;
    }
    // Nested objects/arrays never appear in the flat sidecars; any
    // that do are ignored rather than rejected.
  }

  std::string stem = std::filesystem::path(path).stem().string();
  if (stem.rfind("BENCH_", 0) == 0) stem = stem.substr(6);
  return record_from_sidecar(stem, numbers, strings);
}

}  // namespace autocfd::ledger

#include "autocfd/ledger/sentinel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "autocfd/obs/json_util.hpp"

namespace autocfd::ledger {

Direction metric_direction(const std::string& key) {
  if (key.find("elapsed") != std::string::npos) {
    return Direction::LowerBetter;
  }
  if (key.find("speedup") != std::string::npos ||
      key.find("identical") != std::string::npos) {
    return Direction::HigherBetter;
  }
  return Direction::Informational;
}

namespace {

/// Median of an unsorted copy; 0 for an empty series.
double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::LowerBetter: return "lower-better";
    case Direction::HigherBetter: return "higher-better";
    default: return "informational";
  }
}

}  // namespace

std::vector<const SentinelFinding*> SentinelReport::regressions() const {
  std::vector<const SentinelFinding*> out;
  for (const auto& f : findings) {
    if (f.regressed) out.push_back(&f);
  }
  return out;
}

SentinelReport run_sentinel(const std::vector<RunRecord>& records,
                            const SentinelOptions& options) {
  SentinelReport report;

  // Group records by identity, preserving ledger (chronological)
  // order within each group. std::map keys the result deterministically.
  std::map<std::string, std::vector<const RunRecord*>> groups;
  for (const auto& rec : records) groups[rec.group_key()].push_back(&rec);

  for (const auto& [key, series] : groups) {
    if (series.empty()) continue;
    ++report.groups;
    const RunRecord& newest = *series.back();

    for (const auto& [metric, value] : newest.metrics) {
      const Direction dir = metric_direction(metric);
      if (dir == Direction::Informational) continue;

      // Baseline: the last `window` earlier records carrying this
      // metric (a record that never measured it contributes nothing).
      std::vector<double> history;
      for (std::size_t i = series.size() - 1; i-- > 0;) {
        const auto it = series[i]->metrics.find(metric);
        if (it == series[i]->metrics.end()) continue;
        history.push_back(it->second);
        if (history.size() >= options.window) break;
      }
      if (history.size() < options.min_history) {
        ++report.metrics_waiting;
        continue;
      }
      ++report.metrics_checked;

      const double med = median_of(history);
      std::vector<double> deviations;
      deviations.reserve(history.size());
      for (const double v : history) deviations.push_back(std::fabs(v - med));
      const double mad = median_of(deviations);
      const double tol = std::max(options.rel_threshold * std::fabs(med),
                                  options.mad_factor * mad);

      SentinelFinding finding;
      finding.group = key;
      finding.input = newest.input;
      finding.metric = metric;
      finding.direction = dir;
      finding.value = value;
      finding.baseline_median = med;
      finding.baseline_mad = mad;
      finding.tolerance = tol;
      finding.history = history.size();
      finding.regressed = dir == Direction::LowerBetter
                              ? value > med + tol
                              : value < med - tol;
      report.findings.push_back(std::move(finding));
    }
  }

  // Regressions first so the verdict leads; then deterministic order.
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const SentinelFinding& a, const SentinelFinding& b) {
                     if (a.regressed != b.regressed) return a.regressed;
                     if (a.group != b.group) return a.group < b.group;
                     return a.metric < b.metric;
                   });
  return report;
}

void write_sentinel_text(const SentinelReport& report, std::ostream& os) {
  const auto n_regressed = report.regressions().size();
  for (const auto& f : report.findings) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "  %-9s %-24s %-36s %.6g vs median %.6g (mad %.3g, "
                  "band +/-%.3g, %zu run(s), %s)\n",
                  f.regressed ? "REGRESSED" : "ok", f.input.c_str(),
                  f.metric.c_str(), f.value, f.baseline_median,
                  f.baseline_mad, f.tolerance, f.history,
                  direction_name(f.direction));
    os << line;
  }
  os << "perf_sentinel: " << report.groups << " group(s), "
     << report.metrics_checked << " metric(s) checked, "
     << report.metrics_waiting << " awaiting history, " << n_regressed
     << " regression(s)\n";
}

void write_sentinel_json(const SentinelReport& report, std::ostream& os) {
  using obs::json_escape;
  using obs::json_number;
  os << "{\n  \"groups\": " << report.groups
     << ",\n  \"metrics_checked\": " << report.metrics_checked
     << ",\n  \"metrics_waiting\": " << report.metrics_waiting
     << ",\n  \"regressions\": " << report.regressions().size()
     << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const auto& f = report.findings[i];
    os << (i > 0 ? "," : "") << "\n    {\"group\": \""
       << json_escape(f.group) << "\", \"input\": \""
       << json_escape(f.input) << "\", \"metric\": \""
       << json_escape(f.metric) << "\", \"direction\": \""
       << direction_name(f.direction) << "\", \"value\": "
       << json_number(f.value) << ", \"baseline_median\": "
       << json_number(f.baseline_median) << ", \"baseline_mad\": "
       << json_number(f.baseline_mad) << ", \"tolerance\": "
       << json_number(f.tolerance) << ", \"history\": " << f.history
       << ", \"regressed\": " << (f.regressed ? "true" : "false") << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace autocfd::ledger

#include "autocfd/mp/cluster.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

namespace autocfd::mp {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Compute: return "compute";
    case EventKind::Send: return "send";
    case EventKind::Recv: return "recv";
    case EventKind::AllReduce: return "allreduce";
    case EventKind::Barrier: return "barrier";
    case EventKind::Unreceived: return "unreceived";
    case EventKind::FaultDelay: return "fault.delay";
    case EventKind::FaultDrop: return "fault.drop";
    case EventKind::FaultCorrupt: return "fault.corrupt";
    case EventKind::Timeout: return "timeout";
    case EventKind::Retransmit: return "retransmit";
  }
  return "?";
}

namespace {

/// Wire id handed to the fault hook for retransmission `attempt` of
/// logical message `msg_id`: distinct per attempt (so a retransmit
/// draws a fresh, independent fault decision instead of repeating the
/// original's forever) yet a pure function of the logical identity (so
/// schedules stay deterministic and independent of unrelated traffic).
/// The base keeps retransmit ids clear of ordinary channel sequence
/// numbers, which targeted fault matchers (msg_id=0 etc.) select on.
constexpr long long kRetransmitIdBase = 1LL << 40;
constexpr long long kRetransmitAttemptStride = 1LL << 16;

long long retransmit_wire_id(long long msg_id, int attempt) {
  return kRetransmitIdBase + msg_id * kRetransmitAttemptStride + attempt;
}

}  // namespace

int Comm::size() const { return cluster_->size(); }
const MachineConfig& Comm::config() const { return cluster_->config(); }

void Comm::add_compute(double seconds) {
  std::lock_guard lock(cluster_->mu_);
  if (cluster_->fault_ != nullptr) {
    // Straggler model: a constant per-rank slowdown of every compute
    // span (the hook guarantees the factor is stable for the run).
    seconds *= cluster_->fault_->compute_factor(rank_);
  }
  auto& clock = cluster_->clocks_[static_cast<std::size_t>(rank_)];
  const double before = clock;
  clock += seconds;
  cluster_->stats_[static_cast<std::size_t>(rank_)].compute_time += seconds;
  if (cluster_->sink_ != nullptr) {
    TraceEvent e;
    e.kind = EventKind::Compute;
    e.rank = rank_;
    e.t0 = before;
    e.t1 = clock;
    cluster_->emit(e);
  }
}

double Comm::now() const {
  std::lock_guard lock(cluster_->mu_);
  return cluster_->clocks_[static_cast<std::size_t>(rank_)];
}

const RankStats& Comm::stats() const {
  return cluster_->stats_[static_cast<std::size_t>(rank_)];
}

void Comm::send(int dst, int tag, std::vector<double> data) {
  cluster_->send_impl(rank_, dst, tag, std::move(data), 1);
}

void Comm::send_chunked(int dst, int tag, std::vector<double> data,
                        long long n_messages) {
  cluster_->send_impl(rank_, dst, tag, std::move(data),
                      std::max<long long>(n_messages, 1));
}

std::vector<double> Comm::recv(int src, int tag) {
  return cluster_->recv_impl(rank_, src, tag);
}

std::vector<double> Comm::sendrecv(int peer, int tag,
                                   std::vector<double> data) {
  // Deterministic pairing: lower rank sends first. With buffered sends
  // either order works, but keeping it fixed makes traces stable.
  if (rank_ < peer) {
    send(peer, tag, std::move(data));
    return recv(peer, tag);
  }
  auto in = recv(peer, tag);
  send(peer, tag, std::move(data));
  return in;
}

double Comm::allreduce_max(double value, int site) {
  return cluster_->allreduce_impl(rank_, value, /*is_max=*/true,
                                  EventKind::AllReduce, site);
}

double Comm::allreduce_sum(double value, int site) {
  return cluster_->allreduce_impl(rank_, value, /*is_max=*/false,
                                  EventKind::AllReduce, site);
}

void Comm::barrier(int site) { cluster_->barrier_impl(rank_, site); }

Cluster::Cluster(int nprocs, MachineConfig config)
    : nprocs_(nprocs), config_(config) {
  if (nprocs < 1) throw std::invalid_argument("cluster needs >= 1 rank");
  clocks_.assign(static_cast<std::size_t>(nprocs), 0.0);
  stats_.assign(static_cast<std::size_t>(nprocs), RankStats{});
  blocked_ops_.assign(static_cast<std::size_t>(nprocs), BlockedOp{});
}

double Cluster::RunResult::elapsed() const {
  double best = 0.0;
  for (const auto& r : ranks) best = std::max(best, r.total_time());
  return best;
}

void Cluster::emit(const TraceEvent& event) {
  if (sink_ != nullptr) sink_->on_event(event);
}

std::uint64_t Cluster::payload_checksum(const std::vector<double>& data) {
  // FNV-1a over the byte representation. Cheap, deterministic, and
  // sensitive to any single-bit flip of the payload.
  std::uint64_t h = 1469598103934665603ull;
  for (const double v : data) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::string Cluster::label_of(int id) const {
  if (id >= 0 && labeler_) return labeler_(id);
  if (id >= 0) return "tag " + std::to_string(id);
  return "(unattributed)";
}

void Cluster::maybe_trip_watchdog() {
  // Requires mu_. Trip only on provable quiescence: every rank either
  // finished or is blocked, and every blocked operation is genuinely
  // stuck (no matching message queued, rendezvous not fired). A rank
  // that was completed but has not woken yet is *not* stuck — skipping
  // the trip then avoids false positives during wake-up races.
  if (watchdog_ <= 0.0 || abort_) return;
  if (finished_ + blocked_ != nprocs_ || blocked_ == 0) return;

  int victim = -1;
  bool victim_p2p = false;
  double victim_deadline = 0.0;
  for (int r = 0; r < nprocs_; ++r) {
    const auto& op = blocked_ops_[static_cast<std::size_t>(r)];
    if (!op.active) continue;
    if (op.collective) {
      // The rendezvous this rank waits for could still fire only if
      // the remaining ranks arrive — but they are all finished or
      // blocked too, so a still-pending generation means genuinely
      // stuck. A fired generation means the rank is waking up.
      if (coll_generation_ != op.generation) return;
    } else {
      const auto it = channels_.find({op.peer, r});
      if (it != channels_.end() &&
          std::any_of(it->second.begin(), it->second.end(),
                      [&](const Message& m) { return m.tag == op.tag; })) {
        return;  // a matching message is queued: the rank is waking up
      }
      // A dropped message with a live retransmit buffer entry is
      // *progress*, not a hang: the receiver will drive recovery as
      // soon as it wakes on the pending entry. Only an exhausted
      // budget (recv_recover throwing) makes this rank truly stuck.
      if (recovery_.enabled) {
        const auto pit = pending_.find({op.peer, r});
        if (pit != pending_.end() &&
            std::any_of(pit->second.begin(), pit->second.end(),
                        [&](const PendingEntry& p) {
                          return p.tag == op.tag && !p.in_channel;
                        })) {
          return;
        }
      }
    }
    const double deadline = op.entry + watchdog_;
    const bool p2p = !op.collective;
    // Prefer point-to-point victims: a stuck collective is usually the
    // downstream symptom of a rank stuck in a receive.
    const bool better =
        victim < 0 || (p2p && !victim_p2p) ||
        (p2p == victim_p2p && deadline < victim_deadline);
    if (better) {
      victim = r;
      victim_p2p = p2p;
      victim_deadline = deadline;
    }
  }
  if (victim < 0) return;

  const auto& op = blocked_ops_[static_cast<std::size_t>(victim)];
  timeout_victim_ = victim;
  timeout_info_ = CommErrorInfo{};
  timeout_info_.rank = victim;
  timeout_info_.peer = op.peer;
  timeout_info_.tag = op.tag;
  timeout_info_.site = op.site;
  timeout_info_.time = op.entry + watchdog_;
  timeout_info_.site_label = label_of(op.collective ? op.site : op.tag);
  abort_ = true;
  cv_.notify_all();
}

void Cluster::throw_released(int rank, const BlockedOp& op) {
  // Requires mu_. The rank was woken while still blocked: it is either
  // the watchdog's chosen victim or collateral of another failure.
  if (timeout_victim_ == rank) {
    if (sink_ != nullptr) {
      TraceEvent e;
      e.kind = EventKind::Timeout;
      e.rank = rank;
      e.peer = timeout_info_.peer;
      e.tag = timeout_info_.tag;
      e.site = timeout_info_.site;
      e.t0 = e.t1 = op.entry;
      e.arrival = timeout_info_.time;
      e.wait = watchdog_;
      emit(e);
    }
    std::string what = "watchdog timeout: rank " +
                       std::to_string(rank) +
                       (op.collective
                            ? " blocked in collective"
                            : " blocked in recv from rank " +
                                  std::to_string(op.peer) + " tag " +
                                  std::to_string(op.tag)) +
                       " at " + timeout_info_.site_label +
                       ", no live rank can complete it (virtual deadline " +
                       std::to_string(timeout_info_.time) + " s)";
    throw CommTimeoutError(what, timeout_info_);
  }
  CommErrorInfo info;
  info.rank = rank;
  info.peer = op.peer;
  info.tag = op.tag;
  info.site = op.site;
  info.time = clocks_[static_cast<std::size_t>(rank)];
  info.site_label = label_of(op.collective ? op.site : op.tag);
  throw CommAbortError("rank " + std::to_string(rank) +
                           " released from blocking operation: another rank "
                           "of the run failed",
                       info);
}

Cluster::RunResult Cluster::run(const std::function<void(Comm&)>& fn) {
  // Reset state so a Cluster can run several programs.
  {
    std::lock_guard lock(mu_);
    channels_.clear();
    channel_seq_.clear();
    pending_.clear();
    clocks_.assign(static_cast<std::size_t>(nprocs_), 0.0);
    stats_.assign(static_cast<std::size_t>(nprocs_), RankStats{});
    coll_arrived_ = 0;
    coll_generation_ = 0;
    abort_ = false;
    finished_ = 0;
    blocked_ = 0;
    timeout_victim_ = -1;
    timeout_info_ = CommErrorInfo{};
    blocked_ops_.assign(static_cast<std::size_t>(nprocs_), BlockedOp{});
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs_));
  threads.reserve(static_cast<std::size_t>(nprocs_));
  for (int r = 0; r < nprocs_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      Comm comm(*this, r);
      try {
        fn(comm);
        std::lock_guard lock(mu_);
        ++finished_;
        // A rank retiring can be the last event that makes the rest of
        // the cluster provably stuck.
        maybe_trip_watchdog();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Cooperative abort: release every rank blocked in a recv or
        // collective so all threads join instead of deadlocking.
        std::lock_guard lock(mu_);
        ++finished_;
        abort_ = true;
        cv_.notify_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Report messages that were sent but never received (channel map
  // iteration order is deterministic, so so is the event order). Done
  // before any rethrow so even an aborted run leaves a full trace.
  {
    std::lock_guard lock(mu_);
    for (const auto& [route, queue] : channels_) {
      for (const auto& msg : queue) {
        TraceEvent e;
        e.kind = EventKind::Unreceived;
        e.rank = route.first;
        e.peer = route.second;
        e.tag = msg.tag;
        e.bytes = msg.bytes;
        e.n_messages = msg.n_messages;
        e.msg_id = msg.msg_id;
        e.t0 = e.t1 = e.arrival = msg.arrival_time;
        emit(e);
      }
    }
    // Dropped messages awaiting a retransmit nobody drove (recovery
    // enabled, receiver never asked): logically sent, never received.
    // Entries whose original still sits in a channel were reported by
    // the loop above already.
    for (const auto& [route, entries] : pending_) {
      for (const auto& entry : entries) {
        if (entry.in_channel) continue;
        TraceEvent e;
        e.kind = EventKind::Unreceived;
        e.rank = route.first;
        e.peer = route.second;
        e.tag = entry.tag;
        e.bytes = entry.bytes;
        e.n_messages = entry.n_messages;
        e.msg_id = entry.msg_id;
        e.t0 = e.t1 = e.arrival = entry.original_arrival;
        emit(e);
      }
    }
  }
  // Surface the root cause: the lowest rank holding a non-abort error
  // (CommAbortErrors are the cascade released by the failure, not the
  // failure). Fall back to the first error of any kind.
  std::exception_ptr first;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    try {
      std::rethrow_exception(e);
    } catch (const CommAbortError&) {
      continue;
    } catch (...) {
      first = e;
      break;
    }
  }
  if (first) std::rethrow_exception(first);
  RunResult result;
  result.ranks = stats_;
  return result;
}

void Cluster::send_impl(int src, int dst, int tag, std::vector<double> data,
                        long long n_messages) {
  if (dst < 0 || dst >= nprocs_) {
    throw std::out_of_range("send to invalid rank " + std::to_string(dst));
  }
  const auto bytes =
      static_cast<long long>(data.size() * sizeof(double));
  const double cost =
      static_cast<double>(n_messages) * config_.net_latency +
      static_cast<double>(bytes) * config_.net_byte_time;
  std::lock_guard lock(mu_);
  if (abort_) {
    CommErrorInfo info;
    info.rank = src;
    info.peer = dst;
    info.tag = tag;
    info.time = clocks_[static_cast<std::size_t>(src)];
    info.site_label = label_of(tag);
    throw CommAbortError("rank " + std::to_string(src) +
                             " send aborted: another rank of the run failed",
                         info);
  }
  auto& clock = clocks_[static_cast<std::size_t>(src)];
  auto& st = stats_[static_cast<std::size_t>(src)];
  const double before = clock;
  clock += cost;  // blocking, store-and-forward: sender pays in full
  st.comm_time += cost;
  st.messages_sent += n_messages;
  st.bytes_sent += bytes;
  // Deterministic message id: the per-channel sequence number. Matching
  // is FIFO per (src, dst, tag), so the id is identical across reruns.
  // Dropped messages consume an id too, keeping identities stable for
  // targeted fault schedules.
  const long long msg_id = channel_seq_[{src, dst}]++;
  // Integrity checksum taken before the fault hook may touch the
  // payload: the receiver recomputes and compares.
  const std::uint64_t checksum = payload_checksum(data);
  // Reliable delivery retains the pristine payload before the hook can
  // mutate it; the copy is kept only if this attempt actually fails.
  std::vector<double> pristine;
  if (recovery_.enabled && fault_ != nullptr) pristine = data;
  FaultDecision fd;
  if (fault_ != nullptr) {
    fd = fault_->on_message(src, dst, tag, msg_id, bytes, clock, data);
  }
  const double arrival = clock + fd.extra_delay;
  if (recovery_.enabled && (fd.drop || fd.corrupted)) {
    // Transport-layer retransmit buffer: the receiver replays this
    // logical message from the pristine payload (same checksum as the
    // original) when the attempt in flight turns out lost or damaged.
    PendingEntry entry;
    entry.tag = tag;
    entry.pristine = std::move(pristine);
    entry.departure = clock;
    entry.transfer = cost;
    entry.original_arrival = arrival;
    entry.msg_id = msg_id;
    entry.n_messages = n_messages;
    entry.bytes = bytes;
    entry.checksum = checksum;
    entry.in_channel = !fd.drop;
    pending_[{src, dst}].push_back(std::move(entry));
  }
  if (sink_ != nullptr) {
    TraceEvent e;
    e.kind = EventKind::Send;
    e.rank = src;
    e.t0 = before;
    e.t1 = clock;
    e.peer = dst;
    e.tag = tag;
    e.bytes = bytes;
    e.n_messages = n_messages;
    e.msg_id = msg_id;
    e.arrival = arrival;  // store-and-forward: departure (+ fault delay)
    emit(e);
    const auto fault_event = [&](EventKind kind, double wait) {
      TraceEvent f = e;
      f.kind = kind;
      f.t0 = f.t1 = clock;
      f.wait = wait;
      emit(f);
    };
    if (fd.extra_delay > 0.0) fault_event(EventKind::FaultDelay, fd.extra_delay);
    if (fd.corrupted) fault_event(EventKind::FaultCorrupt, 0.0);
    if (fd.drop) fault_event(EventKind::FaultDrop, 0.0);
  }
  if (!fd.drop) {
    channels_[{src, dst}].push_back(Message{tag, std::move(data), arrival,
                                            msg_id, n_messages, bytes,
                                            checksum});
  }
  cv_.notify_all();
}

std::vector<double> Cluster::recv_impl(int dst, int src, int tag) {
  if (src < 0 || src >= nprocs_) {
    throw std::out_of_range("recv from invalid rank " + std::to_string(src));
  }
  std::unique_lock lock(mu_);
  auto& queue = channels_[{src, dst}];
  auto& pending = pending_[{src, dst}];
  // MPI semantics: match the first message with this tag (FIFO per
  // (source, tag) pair), skipping messages with other tags.
  const auto find_match = [&] {
    return std::find_if(queue.begin(), queue.end(),
                        [tag](const Message& m) { return m.tag == tag; });
  };
  // With recovery enabled, a logical message whose original attempt
  // was dropped lives only in the retransmit buffer: it matches this
  // receive too. FIFO order is kept by logical id — the per-channel
  // sequence number the original attempt consumed.
  const auto find_pending_dropped = [&] {
    if (!recovery_.enabled) return pending.end();
    return std::find_if(pending.begin(), pending.end(),
                        [tag](const PendingEntry& p) {
                          return p.tag == tag && !p.in_channel;
                        });
  };
  auto match = find_match();
  auto dropped = find_pending_dropped();
  if (match == queue.end() && dropped == pending.end() && abort_) {
    BlockedOp op;
    op.peer = src;
    op.tag = tag;
    throw_released(dst, op);
  }
  if (match == queue.end() && dropped == pending.end()) {
    auto& op = blocked_ops_[static_cast<std::size_t>(dst)];
    op.active = true;
    op.collective = false;
    op.peer = src;
    op.tag = tag;
    op.site = -1;
    op.entry = clocks_[static_cast<std::size_t>(dst)];
    ++blocked_;
    maybe_trip_watchdog();
    cv_.wait(lock, [&] {
      match = find_match();
      dropped = find_pending_dropped();
      return match != queue.end() || dropped != pending.end() || abort_;
    });
    --blocked_;
    const BlockedOp released = op;
    op.active = false;
    if (match == queue.end() && dropped == pending.end()) {
      throw_released(dst, released);
    }
  }

  // The earliest logical message with this tag wins, whether its
  // original attempt reached the channel or evaporated in flight.
  if (dropped != pending.end() &&
      (match == queue.end() || dropped->msg_id < match->msg_id)) {
    PendingEntry entry = std::move(*dropped);
    pending.erase(dropped);
    return recv_recover(dst, src, std::move(entry),
                        /*original_corrupt=*/false);
  }

  const bool fifo_skip = match != queue.begin();
  Message msg = std::move(*match);
  queue.erase(match);
  if (payload_checksum(msg.data) != msg.checksum) {
    if (recovery_.enabled) {
      // NACK path: the attempt arrived damaged; replay it from the
      // sender's retained pristine payload under the same checksum.
      const auto pit = std::find_if(pending.begin(), pending.end(),
                                    [&](const PendingEntry& p) {
                                      return p.msg_id == msg.msg_id;
                                    });
      if (pit != pending.end()) {
        PendingEntry entry = std::move(*pit);
        pending.erase(pit);
        return recv_recover(dst, src, std::move(entry),
                            /*original_corrupt=*/true);
      }
    }
    CommErrorInfo info;
    info.rank = dst;
    info.peer = src;
    info.tag = tag;
    info.time = clocks_[static_cast<std::size_t>(dst)];
    info.site_label = label_of(tag);
    throw CommChecksumError(
        "checksum mismatch: message rank " + std::to_string(src) + " -> " +
            std::to_string(dst) + " tag " + std::to_string(tag) + " (" +
            std::to_string(msg.bytes) + " B, msg " +
            std::to_string(msg.msg_id) + ") was corrupted in flight at " +
            info.site_label,
        info);
  }
  auto& clock = clocks_[static_cast<std::size_t>(dst)];
  auto& st = stats_[static_cast<std::size_t>(dst)];
  const double before = clock;
  clock = std::max(clock, msg.arrival_time);
  st.comm_time += clock - before;  // waiting counts as communication
  st.wait_time += clock - before;
  st.messages_received += msg.n_messages;
  st.bytes_received += msg.bytes;
  if (sink_ != nullptr) {
    TraceEvent e;
    e.kind = EventKind::Recv;
    e.rank = dst;
    e.t0 = before;
    e.t1 = clock;
    e.peer = src;
    e.tag = tag;
    e.bytes = msg.bytes;
    e.n_messages = msg.n_messages;
    e.msg_id = msg.msg_id;
    e.arrival = msg.arrival_time;
    e.wait = clock - before;
    e.fifo_skip = fifo_skip;
    emit(e);
  }
  return std::move(msg.data);
}

std::vector<double> Cluster::recv_recover(int dst, int src,
                                          PendingEntry entry,
                                          bool original_corrupt) {
  // Requires mu_. The receiver drives the whole retry loop in virtual
  // time under the lock: retransmission k departs backoff_interval(k)
  // after attempt k-1 (timer-driven, like a transport-layer RTO — no
  // modeled NACK round trip) and each attempt draws a fresh,
  // deterministic fault decision under a per-attempt wire id. The
  // payload replayed is the sender's pristine copy, so a delivered
  // retransmission verifies against the *original* checksum and the
  // program's results stay bit-identical to a clean run.
  auto& st = stats_[static_cast<std::size_t>(dst)];
  auto& clock = clocks_[static_cast<std::size_t>(dst)];
  const double before = clock;
  double depart = entry.departure;
  bool last_corrupt = original_corrupt;
  double last_arrival = entry.original_arrival;
  int attempts = 1;  // the original wire attempt

  const auto mark = [&](EventKind kind, double t, double wait,
                        double arrival, int attempt) {
    if (sink_ == nullptr) return;
    TraceEvent e;
    e.kind = kind;
    e.rank = dst;  // receiver stream: deterministic in program order
    e.peer = src;
    e.tag = entry.tag;
    e.bytes = entry.bytes;
    e.n_messages = entry.n_messages;
    e.msg_id = entry.msg_id;
    e.t0 = e.t1 = t;
    e.wait = wait;
    e.arrival = arrival;
    e.attempts = attempt;
    emit(e);
  };

  for (int k = 1; k <= recovery_.budget; ++k) {
    depart += recovery_.backoff_interval(k);
    std::vector<double> wire = entry.pristine;
    FaultDecision fd;
    if (fault_ != nullptr) {
      fd = fault_->on_message(src, dst, entry.tag,
                              retransmit_wire_id(entry.msg_id, k),
                              entry.bytes, depart, wire);
    }
    ++attempts;
    ++st.retransmits;
    const double arrival = depart + entry.transfer + fd.extra_delay;
    mark(EventKind::Retransmit, depart, recovery_.backoff_interval(k),
         arrival, k);
    // Keep the trace-derived fault.* counters equal to the injector's
    // own: retransmitted attempts can fail again, and those decisions
    // are reported just like first-attempt ones (on this stream).
    if (fd.extra_delay > 0.0) {
      mark(EventKind::FaultDelay, depart, fd.extra_delay, arrival, k);
    }
    if (fd.corrupted) mark(EventKind::FaultCorrupt, depart, 0.0, arrival, k);
    if (fd.drop) mark(EventKind::FaultDrop, depart, 0.0, arrival, k);
    if (!fd.drop && payload_checksum(wire) == entry.checksum) {
      // Delivered under the original checksum. The extra idle past the
      // arrival the first attempt would have had is recovery time — a
      // sub-account of wait, so total accounting is unchanged.
      clock = std::max(clock, arrival);
      const double wait = clock - before;
      const double recovery =
          clock - std::max(before, entry.original_arrival);
      st.comm_time += wait;
      st.wait_time += wait;
      st.recovery_time += std::max(recovery, 0.0);
      st.messages_received += entry.n_messages;
      st.bytes_received += entry.bytes;
      st.recovered += 1;
      if (sink_ != nullptr) {
        TraceEvent e;
        e.kind = EventKind::Recv;
        e.rank = dst;
        e.t0 = before;
        e.t1 = clock;
        e.peer = src;
        e.tag = entry.tag;
        e.bytes = entry.bytes;
        e.n_messages = entry.n_messages;
        e.msg_id = entry.msg_id;
        e.arrival = arrival;
        e.wait = wait;
        e.recovery = std::max(recovery, 0.0);
        e.attempts = attempts;
        emit(e);
      }
      cv_.notify_all();
      return wire;
    }
    last_corrupt = !fd.drop;
    last_arrival = arrival;
  }

  // Budget exhausted: degrade into the fail-fast error the protocol
  // would have thrown on the first failure, with attempts attached.
  CommErrorInfo info;
  info.rank = dst;
  info.peer = src;
  info.tag = entry.tag;
  info.time = last_arrival;
  info.attempts = attempts;
  info.site_label = label_of(entry.tag);
  const std::string identity =
      "message rank " + std::to_string(src) + " -> " + std::to_string(dst) +
      " tag " + std::to_string(entry.tag) + " (" +
      std::to_string(entry.bytes) + " B, msg " +
      std::to_string(entry.msg_id) + ")";
  if (last_corrupt) {
    throw CommChecksumError(
        "checksum mismatch: " + identity + " still corrupted after " +
            std::to_string(attempts) + " attempts (retry budget " +
            std::to_string(recovery_.budget) + " exhausted) at " +
            info.site_label,
        info);
  }
  throw CommTimeoutError(
      "retry budget exhausted: " + identity + " lost " +
          std::to_string(attempts) + " times (budget " +
          std::to_string(recovery_.budget) + ") at " + info.site_label +
          ", giving up at virtual time " + std::to_string(last_arrival),
      info);
}

double Cluster::allreduce_impl(int rank, double value, bool is_max,
                               EventKind kind, int site) {
  std::unique_lock lock(mu_);
  if (abort_) {
    BlockedOp op;
    op.collective = true;
    op.site = site;
    throw_released(rank, op);
  }
  const long long my_generation = coll_generation_;
  if (coll_arrived_ == 0) {
    coll_value_max_ = value;
    coll_value_sum_ = value;
    coll_time_ = clocks_[static_cast<std::size_t>(rank)];
  } else {
    coll_value_max_ = std::max(coll_value_max_, value);
    coll_value_sum_ += value;
    coll_time_ =
        std::max(coll_time_, clocks_[static_cast<std::size_t>(rank)]);
  }
  ++coll_arrived_;
  stats_[static_cast<std::size_t>(rank)].collectives += 1;
  if (coll_arrived_ == nprocs_) {
    // Tree-structured collective: log2(P) message rounds each way.
    coll_rendezvous_ = coll_time_;
    int rounds = 0;
    for (int p = 1; p < nprocs_; p *= 2) ++rounds;
    coll_time_ += static_cast<double>(config_.collective_log_cost * rounds) *
                  config_.message_time(static_cast<long long>(sizeof(double)));
    coll_arrived_ = 0;
    ++coll_generation_;
    for (int r = 0; r < nprocs_; ++r) {
      auto& st = stats_[static_cast<std::size_t>(r)];
      const double entry = clocks_[static_cast<std::size_t>(r)];
      st.comm_time += coll_time_ - entry;
      st.wait_time += coll_rendezvous_ - entry;
      if (sink_ != nullptr) {
        // The last arriver emits every rank's event: blocked ranks
        // still hold their entry clocks, and appending here keeps each
        // rank's stream in program order.
        TraceEvent e;
        e.kind = kind;
        e.rank = r;
        e.t0 = entry;
        e.t1 = coll_time_;
        e.arrival = coll_rendezvous_;
        e.wait = coll_rendezvous_ - entry;
        e.coll_seq = my_generation;
        e.site = site;
        emit(e);
      }
      clocks_[static_cast<std::size_t>(r)] = coll_time_;
    }
    cv_.notify_all();
  } else {
    auto& op = blocked_ops_[static_cast<std::size_t>(rank)];
    op.active = true;
    op.collective = true;
    op.peer = -1;
    op.tag = -1;
    op.site = site;
    op.entry = clocks_[static_cast<std::size_t>(rank)];
    op.generation = my_generation;
    ++blocked_;
    maybe_trip_watchdog();
    cv_.wait(lock, [&] {
      return coll_generation_ != my_generation || abort_;
    });
    --blocked_;
    const BlockedOp released = op;
    op.active = false;
    if (coll_generation_ == my_generation) throw_released(rank, released);
  }
  return is_max ? coll_value_max_ : coll_value_sum_;
}

void Cluster::barrier_impl(int rank, int site) {
  (void)allreduce_impl(rank, 0.0, /*is_max=*/true, EventKind::Barrier, site);
}

}  // namespace autocfd::mp

#include "autocfd/mp/cluster.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

namespace autocfd::mp {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Compute: return "compute";
    case EventKind::Send: return "send";
    case EventKind::Recv: return "recv";
    case EventKind::AllReduce: return "allreduce";
    case EventKind::Barrier: return "barrier";
    case EventKind::Unreceived: return "unreceived";
  }
  return "?";
}

int Comm::size() const { return cluster_->size(); }
const MachineConfig& Comm::config() const { return cluster_->config(); }

void Comm::add_compute(double seconds) {
  std::lock_guard lock(cluster_->mu_);
  auto& clock = cluster_->clocks_[static_cast<std::size_t>(rank_)];
  const double before = clock;
  clock += seconds;
  cluster_->stats_[static_cast<std::size_t>(rank_)].compute_time += seconds;
  if (cluster_->sink_ != nullptr) {
    TraceEvent e;
    e.kind = EventKind::Compute;
    e.rank = rank_;
    e.t0 = before;
    e.t1 = clock;
    cluster_->emit(e);
  }
}

double Comm::now() const {
  std::lock_guard lock(cluster_->mu_);
  return cluster_->clocks_[static_cast<std::size_t>(rank_)];
}

const RankStats& Comm::stats() const {
  return cluster_->stats_[static_cast<std::size_t>(rank_)];
}

void Comm::send(int dst, int tag, std::vector<double> data) {
  cluster_->send_impl(rank_, dst, tag, std::move(data), 1);
}

void Comm::send_chunked(int dst, int tag, std::vector<double> data,
                        long long n_messages) {
  cluster_->send_impl(rank_, dst, tag, std::move(data),
                      std::max<long long>(n_messages, 1));
}

std::vector<double> Comm::recv(int src, int tag) {
  return cluster_->recv_impl(rank_, src, tag);
}

std::vector<double> Comm::sendrecv(int peer, int tag,
                                   std::vector<double> data) {
  // Deterministic pairing: lower rank sends first. With buffered sends
  // either order works, but keeping it fixed makes traces stable.
  if (rank_ < peer) {
    send(peer, tag, std::move(data));
    return recv(peer, tag);
  }
  auto in = recv(peer, tag);
  send(peer, tag, std::move(data));
  return in;
}

double Comm::allreduce_max(double value, int site) {
  return cluster_->allreduce_impl(rank_, value, /*is_max=*/true,
                                  EventKind::AllReduce, site);
}

double Comm::allreduce_sum(double value, int site) {
  return cluster_->allreduce_impl(rank_, value, /*is_max=*/false,
                                  EventKind::AllReduce, site);
}

void Comm::barrier(int site) { cluster_->barrier_impl(rank_, site); }

Cluster::Cluster(int nprocs, MachineConfig config)
    : nprocs_(nprocs), config_(config) {
  if (nprocs < 1) throw std::invalid_argument("cluster needs >= 1 rank");
  clocks_.assign(static_cast<std::size_t>(nprocs), 0.0);
  stats_.assign(static_cast<std::size_t>(nprocs), RankStats{});
}

double Cluster::RunResult::elapsed() const {
  double best = 0.0;
  for (const auto& r : ranks) best = std::max(best, r.total_time());
  return best;
}

void Cluster::emit(const TraceEvent& event) {
  if (sink_ != nullptr) sink_->on_event(event);
}

Cluster::RunResult Cluster::run(const std::function<void(Comm&)>& fn) {
  // Reset state so a Cluster can run several programs.
  {
    std::lock_guard lock(mu_);
    channels_.clear();
    channel_seq_.clear();
    clocks_.assign(static_cast<std::size_t>(nprocs_), 0.0);
    stats_.assign(static_cast<std::size_t>(nprocs_), RankStats{});
    coll_arrived_ = 0;
    coll_generation_ = 0;
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs_));
  threads.reserve(static_cast<std::size_t>(nprocs_));
  for (int r = 0; r < nprocs_; ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      Comm comm(*this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        cv_.notify_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  // Report messages that were sent but never received (channel map
  // iteration order is deterministic, so so is the event order).
  {
    std::lock_guard lock(mu_);
    for (const auto& [route, queue] : channels_) {
      for (const auto& msg : queue) {
        TraceEvent e;
        e.kind = EventKind::Unreceived;
        e.rank = route.first;
        e.peer = route.second;
        e.tag = msg.tag;
        e.bytes = msg.bytes;
        e.n_messages = msg.n_messages;
        e.msg_id = msg.msg_id;
        e.t0 = e.t1 = e.arrival = msg.arrival_time;
        emit(e);
      }
    }
  }
  RunResult result;
  result.ranks = stats_;
  return result;
}

void Cluster::send_impl(int src, int dst, int tag, std::vector<double> data,
                        long long n_messages) {
  if (dst < 0 || dst >= nprocs_) {
    throw std::out_of_range("send to invalid rank " + std::to_string(dst));
  }
  const auto bytes =
      static_cast<long long>(data.size() * sizeof(double));
  const double cost =
      static_cast<double>(n_messages) * config_.net_latency +
      static_cast<double>(bytes) * config_.net_byte_time;
  std::lock_guard lock(mu_);
  auto& clock = clocks_[static_cast<std::size_t>(src)];
  auto& st = stats_[static_cast<std::size_t>(src)];
  const double before = clock;
  clock += cost;  // blocking, store-and-forward: sender pays in full
  st.comm_time += cost;
  st.messages_sent += n_messages;
  st.bytes_sent += bytes;
  // Deterministic message id: the per-channel sequence number. Matching
  // is FIFO per (src, dst, tag), so the id is identical across reruns.
  const long long msg_id = channel_seq_[{src, dst}]++;
  channels_[{src, dst}].push_back(
      Message{tag, std::move(data), clock, msg_id, n_messages, bytes});
  if (sink_ != nullptr) {
    TraceEvent e;
    e.kind = EventKind::Send;
    e.rank = src;
    e.t0 = before;
    e.t1 = clock;
    e.peer = dst;
    e.tag = tag;
    e.bytes = bytes;
    e.n_messages = n_messages;
    e.msg_id = msg_id;
    e.arrival = clock;  // store-and-forward: departure == arrival
    emit(e);
  }
  cv_.notify_all();
}

std::vector<double> Cluster::recv_impl(int dst, int src, int tag) {
  if (src < 0 || src >= nprocs_) {
    throw std::out_of_range("recv from invalid rank " + std::to_string(src));
  }
  std::unique_lock lock(mu_);
  auto& queue = channels_[{src, dst}];
  // MPI semantics: match the first message with this tag (FIFO per
  // (source, tag) pair), skipping messages with other tags.
  auto match = queue.end();
  cv_.wait(lock, [&] {
    match = std::find_if(queue.begin(), queue.end(), [tag](const Message& m) {
      return m.tag == tag;
    });
    return match != queue.end();
  });
  const bool fifo_skip = match != queue.begin();
  Message msg = std::move(*match);
  queue.erase(match);
  auto& clock = clocks_[static_cast<std::size_t>(dst)];
  auto& st = stats_[static_cast<std::size_t>(dst)];
  const double before = clock;
  clock = std::max(clock, msg.arrival_time);
  st.comm_time += clock - before;  // waiting counts as communication
  st.wait_time += clock - before;
  st.messages_received += msg.n_messages;
  st.bytes_received += msg.bytes;
  if (sink_ != nullptr) {
    TraceEvent e;
    e.kind = EventKind::Recv;
    e.rank = dst;
    e.t0 = before;
    e.t1 = clock;
    e.peer = src;
    e.tag = tag;
    e.bytes = msg.bytes;
    e.n_messages = msg.n_messages;
    e.msg_id = msg.msg_id;
    e.arrival = msg.arrival_time;
    e.wait = clock - before;
    e.fifo_skip = fifo_skip;
    emit(e);
  }
  return std::move(msg.data);
}

double Cluster::allreduce_impl(int rank, double value, bool is_max,
                               EventKind kind, int site) {
  std::unique_lock lock(mu_);
  const long long my_generation = coll_generation_;
  if (coll_arrived_ == 0) {
    coll_value_max_ = value;
    coll_value_sum_ = value;
    coll_time_ = clocks_[static_cast<std::size_t>(rank)];
  } else {
    coll_value_max_ = std::max(coll_value_max_, value);
    coll_value_sum_ += value;
    coll_time_ =
        std::max(coll_time_, clocks_[static_cast<std::size_t>(rank)]);
  }
  ++coll_arrived_;
  stats_[static_cast<std::size_t>(rank)].collectives += 1;
  if (coll_arrived_ == nprocs_) {
    // Tree-structured collective: log2(P) message rounds each way.
    coll_rendezvous_ = coll_time_;
    int rounds = 0;
    for (int p = 1; p < nprocs_; p *= 2) ++rounds;
    coll_time_ += static_cast<double>(config_.collective_log_cost * rounds) *
                  config_.message_time(static_cast<long long>(sizeof(double)));
    coll_arrived_ = 0;
    ++coll_generation_;
    for (int r = 0; r < nprocs_; ++r) {
      auto& st = stats_[static_cast<std::size_t>(r)];
      const double entry = clocks_[static_cast<std::size_t>(r)];
      st.comm_time += coll_time_ - entry;
      st.wait_time += coll_rendezvous_ - entry;
      if (sink_ != nullptr) {
        // The last arriver emits every rank's event: blocked ranks
        // still hold their entry clocks, and appending here keeps each
        // rank's stream in program order.
        TraceEvent e;
        e.kind = kind;
        e.rank = r;
        e.t0 = entry;
        e.t1 = coll_time_;
        e.arrival = coll_rendezvous_;
        e.wait = coll_rendezvous_ - entry;
        e.coll_seq = my_generation;
        e.site = site;
        emit(e);
      }
      clocks_[static_cast<std::size_t>(r)] = coll_time_;
    }
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return coll_generation_ != my_generation; });
  }
  return is_max ? coll_value_max_ : coll_value_sum_;
}

void Cluster::barrier_impl(int rank, int site) {
  (void)allreduce_impl(rank, 0.0, /*is_max=*/true, EventKind::Barrier, site);
}

}  // namespace autocfd::mp

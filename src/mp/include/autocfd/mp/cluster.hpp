// Simulated message-passing cluster.
//
// Ranks run as real threads; message passing and collectives have MPI
// semantics (blocking send/recv matched by (source, tag) in FIFO
// order, allreduce, barrier). *Time*, however, is virtual: every rank
// carries a clock advanced by compute and communication costs from the
// MachineConfig, and message envelopes carry the sender's clock so a
// receive completes at max(receiver clock, sender departure + transfer
// time). With deterministic matching the resulting virtual times are
// reproducible regardless of host scheduling.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "autocfd/mp/machine.hpp"

namespace autocfd::mp {

/// Per-rank cost/traffic counters.
struct RankStats {
  double compute_time = 0.0;
  double comm_time = 0.0;
  long long messages_sent = 0;
  long long bytes_sent = 0;
  long long collectives = 0;

  [[nodiscard]] double total_time() const { return compute_time + comm_time; }
};

class Cluster;

/// Per-rank communication handle (the MPI_COMM_WORLD analog).
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  [[nodiscard]] const MachineConfig& config() const;

  /// Advances this rank's virtual clock by compute time.
  void add_compute(double seconds);
  [[nodiscard]] double now() const;
  [[nodiscard]] const RankStats& stats() const;

  /// Blocking send: the sender's clock pays the full message time
  /// (store-and-forward, no overlap).
  void send(int dst, int tag, std::vector<double> data);
  /// Send delivered as `n_messages` back-to-back wire messages (the
  /// fine-grained pipelining of mirror-image sweeps: one message per
  /// grid line crossing the block boundary). Pays n x latency plus the
  /// byte cost once; matched by a single recv.
  void send_chunked(int dst, int tag, std::vector<double> data,
                    long long n_messages);
  /// Blocking receive from a specific source.
  [[nodiscard]] std::vector<double> recv(int src, int tag);
  /// Paired exchange (the halo-swap workhorse); both sides pay one
  /// message each way and synchronize clocks like MPI_Sendrecv.
  [[nodiscard]] std::vector<double> sendrecv(int peer, int tag,
                                             std::vector<double> data);

  [[nodiscard]] double allreduce_max(double value);
  [[nodiscard]] double allreduce_sum(double value);
  void barrier();

 private:
  friend class Cluster;
  Comm(Cluster& cluster, int rank) : cluster_(&cluster), rank_(rank) {}

  Cluster* cluster_;
  int rank_;
};

class Cluster {
 public:
  Cluster(int nprocs, MachineConfig config);

  [[nodiscard]] int size() const { return nprocs_; }
  [[nodiscard]] const MachineConfig& config() const { return config_; }

  struct RunResult {
    std::vector<RankStats> ranks;
    /// Parallel execution time: the slowest rank's virtual clock.
    [[nodiscard]] double elapsed() const;
  };

  /// Runs `fn` on every rank concurrently; returns per-rank stats.
  /// Rethrows the first rank exception after joining all threads.
  RunResult run(const std::function<void(Comm&)>& fn);

 private:
  friend class Comm;

  struct Message {
    int tag;
    std::vector<double> data;
    double arrival_time;  // sender departure + transfer time
  };

  void send_impl(int src, int dst, int tag, std::vector<double> data,
                 long long n_messages);
  std::vector<double> recv_impl(int dst, int src, int tag);
  double allreduce_impl(int rank, double value, bool is_max);
  void barrier_impl(int rank);

  int nprocs_;
  MachineConfig config_;

  std::mutex mu_;
  std::condition_variable cv_;
  // (src, dst) -> FIFO of messages.
  std::map<std::pair<int, int>, std::deque<Message>> channels_;
  std::vector<double> clocks_;
  std::vector<RankStats> stats_;

  // Collective rendezvous state.
  int coll_arrived_ = 0;
  long long coll_generation_ = 0;
  double coll_value_max_ = 0.0;
  double coll_value_sum_ = 0.0;
  double coll_time_ = 0.0;
};

}  // namespace autocfd::mp

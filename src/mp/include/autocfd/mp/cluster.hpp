// Simulated message-passing cluster.
//
// Ranks run as real threads; message passing and collectives have MPI
// semantics (blocking send/recv matched by (source, tag) in FIFO
// order, allreduce, barrier). *Time*, however, is virtual: every rank
// carries a clock advanced by compute and communication costs from the
// MachineConfig, and message envelopes carry the sender's clock so a
// receive completes at max(receiver clock, sender departure + transfer
// time). With deterministic matching the resulting virtual times are
// reproducible regardless of host scheduling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "autocfd/mp/comm_error.hpp"
#include "autocfd/mp/events.hpp"
#include "autocfd/mp/fault_hook.hpp"
#include "autocfd/mp/machine.hpp"
#include "autocfd/mp/recovery.hpp"

namespace autocfd::mp {

/// Per-rank cost/traffic counters. A sendrecv counts as two logical
/// messages on each rank: one sent, one received. Collectives are
/// incremented on every participating rank.
struct RankStats {
  double compute_time = 0.0;
  double comm_time = 0.0;
  /// Portion of comm_time spent idle: blocked in recv before the
  /// message arrived, or blocked in a collective before the slowest
  /// rank entered. comm_time - wait_time is transfer cost.
  double wait_time = 0.0;
  /// Portion of wait_time spent recovering lost or corrupted messages
  /// (reliable delivery enabled): idle past the arrival the original
  /// attempt would have had. A sub-account of wait_time, so
  /// compute + (comm - wait) + wait still totals the rank's clock.
  double recovery_time = 0.0;
  long long messages_sent = 0;
  long long bytes_sent = 0;
  long long messages_received = 0;
  long long bytes_received = 0;
  long long collectives = 0;
  /// Wire retransmissions this rank *drove* as a receiver (recovery
  /// runs receiver-side; retransmits are not counted in
  /// messages_sent/bytes_sent, which stay sender-attempt accounting).
  long long retransmits = 0;
  /// Messages this rank received only after at least one retransmit.
  long long recovered = 0;

  [[nodiscard]] double total_time() const { return compute_time + comm_time; }
};

class Cluster;

/// Per-rank communication handle (the MPI_COMM_WORLD analog).
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  [[nodiscard]] const MachineConfig& config() const;

  /// Advances this rank's virtual clock by compute time.
  void add_compute(double seconds);
  [[nodiscard]] double now() const;
  [[nodiscard]] const RankStats& stats() const;

  /// Blocking send: the sender's clock pays the full message time
  /// (store-and-forward, no overlap).
  void send(int dst, int tag, std::vector<double> data);
  /// Send delivered as `n_messages` back-to-back wire messages (the
  /// fine-grained pipelining of mirror-image sweeps: one message per
  /// grid line crossing the block boundary). Pays n x latency plus the
  /// byte cost once; matched by a single recv.
  void send_chunked(int dst, int tag, std::vector<double> data,
                    long long n_messages);
  /// Blocking receive from a specific source.
  [[nodiscard]] std::vector<double> recv(int src, int tag);
  /// Paired exchange (the halo-swap workhorse); both sides pay one
  /// message each way and synchronize clocks like MPI_Sendrecv.
  [[nodiscard]] std::vector<double> sendrecv(int peer, int tag,
                                             std::vector<double> data);

  /// Collectives take an optional sync-plan `site` id so an attached
  /// EventSink can attribute the rendezvous (all ranks must pass the
  /// same site, which holds trivially when it comes from a shared
  /// program statement).
  [[nodiscard]] double allreduce_max(double value, int site = -1);
  [[nodiscard]] double allreduce_sum(double value, int site = -1);
  void barrier(int site = -1);

 private:
  friend class Cluster;
  Comm(Cluster& cluster, int rank) : cluster_(&cluster), rank_(rank) {}

  Cluster* cluster_;
  int rank_;
};

class Cluster {
 public:
  Cluster(int nprocs, MachineConfig config);

  [[nodiscard]] int size() const { return nprocs_; }
  [[nodiscard]] const MachineConfig& config() const { return config_; }

  /// Attaches an event sink for subsequent run() calls (nullptr
  /// detaches). The sink must outlive the runs; it is invoked under
  /// the cluster lock and must not call back into the cluster.
  void set_event_sink(EventSink* sink) { sink_ = sink; }

  /// Attaches a fault-injection hook for subsequent run() calls
  /// (nullptr detaches). Invoked under the cluster lock; must not call
  /// back into the cluster. See autocfd/mp/fault_hook.hpp.
  void set_fault_hook(FaultHook* hook) { fault_ = hook; }

  /// Reliable-delivery protocol for subsequent run() calls. Disabled
  /// (the default) keeps the fail-fast semantics: a dropped message
  /// eventually trips the watchdog and a corrupted one throws
  /// CommChecksumError on first receipt. Enabled, the receiver drives
  /// checksum-verified retransmissions from the sender's retained
  /// pristine payload on an exponential-backoff schedule, and those
  /// errors fire only once the per-message retry budget is exhausted.
  void set_recovery(const RecoveryConfig& recovery) { recovery_ = recovery; }
  [[nodiscard]] const RecoveryConfig& recovery() const { return recovery_; }

  /// Watchdog deadline in *virtual* seconds. The simulator detects a
  /// hang exactly (every live rank blocked on an operation no other
  /// rank can ever complete) with no real-time timers; the deadline
  /// sets the virtual instant (entry clock + deadline) the victim's
  /// CommTimeoutError reports and orders victims when several
  /// operations are stuck. <= 0 disables the watchdog (a genuine hang
  /// then blocks forever, the pre-hardening behavior).
  void set_watchdog(double virtual_seconds) { watchdog_ = virtual_seconds; }
  [[nodiscard]] double watchdog() const { return watchdog_; }

  /// Resolves a tag / collective-site id to a human label for error
  /// messages (typically sync::TagRegistry::label). Kept as a function
  /// so the mp layer does not depend on the sync plan.
  void set_tag_labeler(std::function<std::string(int)> labeler) {
    labeler_ = std::move(labeler);
  }

  struct RunResult {
    std::vector<RankStats> ranks;
    /// Parallel execution time: the slowest rank's virtual clock.
    [[nodiscard]] double elapsed() const;
  };

  /// Runs `fn` on every rank concurrently; returns per-rank stats.
  /// All rank threads are always joined; if any rank threw, the first
  /// root-cause error (lowest rank holding a non-CommAbortError, the
  /// cascade releases the others) is rethrown afterwards. Partial
  /// per-rank stats of a failed run remain available via last_stats().
  RunResult run(const std::function<void(Comm&)>& fn);

  /// Per-rank stats of the most recent run (complete or aborted).
  [[nodiscard]] const std::vector<RankStats>& last_stats() const {
    return stats_;
  }

  /// FNV-1a checksum over the byte representation of a payload — the
  /// per-message integrity check the receiver verifies.
  [[nodiscard]] static std::uint64_t payload_checksum(
      const std::vector<double>& data);

 private:
  friend class Comm;

  struct Message {
    int tag;
    std::vector<double> data;
    double arrival_time;  // sender departure + transfer time (+ faults)
    long long msg_id;     // per-channel sequence, deterministic
    long long n_messages;
    long long bytes;
    std::uint64_t checksum;  // taken before fault corruption
  };

  /// Retransmit buffer entry (recovery enabled): the sender's
  /// transport layer retains every logical message — pristine payload,
  /// original checksum, departure and transfer cost — until its
  /// receiver verified delivery. The *receiver* drives the retry loop
  /// in deterministic virtual time; see recv_recover in cluster.cpp.
  struct PendingEntry {
    int tag = -1;
    std::vector<double> pristine;  // payload before any corruption
    double departure = 0.0;        // sender clock at send completion
    double transfer = 0.0;         // cost one wire attempt takes
    double original_arrival = 0.0; // when the first attempt (would have)
                                   // arrived — the recovery baseline
    long long msg_id = -1;         // logical id (the original wire id)
    long long n_messages = 1;
    long long bytes = 0;
    std::uint64_t checksum = 0;    // of the pristine payload
    bool in_channel = false;  // original attempt sits in channels_
  };

  /// What a rank is currently blocked on (watchdog bookkeeping).
  struct BlockedOp {
    bool active = false;
    bool collective = false;
    int peer = -1;
    int tag = -1;
    int site = -1;
    double entry = 0.0;  // rank clock when it blocked
    /// Collective generation the op waits on; the op is stuck only
    /// while coll_generation_ still equals it (rendezvous not fired).
    long long generation = -1;
  };

  void send_impl(int src, int dst, int tag, std::vector<double> data,
                 long long n_messages);
  std::vector<double> recv_impl(int dst, int src, int tag);
  /// Requires the lock. Drives the retransmission loop for pending
  /// logical message `entry` of channel (src, dst): replays wire
  /// attempts on the backoff schedule until one arrives with the
  /// original checksum intact (returns the delivered payload, fully
  /// accounted on the receiver) or the budget runs out (then throws
  /// CommChecksumError / CommTimeoutError carrying the attempt count).
  std::vector<double> recv_recover(int dst, int src, PendingEntry entry,
                                   bool original_corrupt);
  double allreduce_impl(int rank, double value, bool is_max,
                        EventKind kind, int site);
  void barrier_impl(int rank, int site);
  void emit(const TraceEvent& event);
  /// Resolves a tag/site id through the installed labeler.
  [[nodiscard]] std::string label_of(int id) const;
  /// Requires the lock. If every live rank is blocked, no operation
  /// can ever complete: picks the victim (smallest virtual deadline)
  /// and turns the hang into a CommTimeoutError via the abort flag.
  void maybe_trip_watchdog();
  /// Requires the lock. Throws the timeout (victim) or abort
  /// (collateral) error for a rank released while still blocked.
  [[noreturn]] void throw_released(int rank, const BlockedOp& op);

  int nprocs_;
  MachineConfig config_;
  EventSink* sink_ = nullptr;
  FaultHook* fault_ = nullptr;
  RecoveryConfig recovery_;
  double watchdog_ = kDefaultWatchdog;
  std::function<std::string(int)> labeler_;

  std::mutex mu_;
  std::condition_variable cv_;
  // (src, dst) -> FIFO of messages.
  std::map<std::pair<int, int>, std::deque<Message>> channels_;
  // (src, dst) -> count of messages ever pushed (msg_id source).
  std::map<std::pair<int, int>, long long> channel_seq_;
  // (src, dst) -> logical messages awaiting verified delivery, in
  // logical (msg_id) order. Only populated with recovery enabled.
  std::map<std::pair<int, int>, std::deque<PendingEntry>> pending_;
  std::vector<double> clocks_;
  std::vector<RankStats> stats_;

  // Abort / watchdog state (one run at a time).
  bool abort_ = false;
  int finished_ = 0;       // rank bodies that returned or threw
  int blocked_ = 0;        // ranks blocked in recv or a collective
  int timeout_victim_ = -1;
  CommErrorInfo timeout_info_;
  std::vector<BlockedOp> blocked_ops_;

 public:
  /// Default watchdog deadline: 30 virtual seconds, far beyond any
  /// legitimate wait of the simulated workloads.
  static constexpr double kDefaultWatchdog = 30.0;

 private:

  // Collective rendezvous state.
  int coll_arrived_ = 0;
  long long coll_generation_ = 0;
  double coll_value_max_ = 0.0;
  double coll_value_sum_ = 0.0;
  double coll_time_ = 0.0;
  double coll_rendezvous_ = 0.0;  // slowest entry clock, pre-cost
};

}  // namespace autocfd::mp

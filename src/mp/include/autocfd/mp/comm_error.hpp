// Structured communication failures of the simulated cluster.
//
// The hardened runtime never hangs and never std::terminate()s: a
// blocked operation that can provably no longer complete becomes a
// CommTimeoutError, a payload whose checksum does not match becomes a
// CommChecksumError, and every other rank of the same run is released
// with a CommAbortError. Each error carries enough identity (rank,
// peer, tag, sync-plan site label) to attribute the failure back to
// the synchronization point that issued the communication.
#pragma once

#include <stdexcept>
#include <string>

namespace autocfd::mp {

/// Identity of a failed communication operation.
struct CommErrorInfo {
  int rank = -1;   // the rank the error is charged to
  int peer = -1;   // counterpart rank (-1 for collectives)
  int tag = -1;    // wire tag (-1 for collectives)
  int site = -1;   // sync-plan site of a collective (-1 otherwise)
  double time = 0.0;  // virtual time the failure was declared at
  /// Wire attempts made before the failure was declared: 1 without
  /// recovery, 1 + retransmissions when a retry budget was exhausted.
  int attempts = 1;
  /// Resolved sync-plan site label ("halo s3 dim 0", "tag 7", ...)
  /// when the cluster has a tag labeler installed.
  std::string site_label;
};

class CommError : public std::runtime_error {
 public:
  CommError(const std::string& what, CommErrorInfo info)
      : std::runtime_error(what), info_(std::move(info)) {}

  [[nodiscard]] const CommErrorInfo& info() const { return info_; }

 private:
  CommErrorInfo info_;
};

/// The watchdog converted a hang (blocked recv or collective that can
/// never complete) into an error instead of waiting forever.
class CommTimeoutError : public CommError {
 public:
  using CommError::CommError;
};

/// A received payload failed its per-message checksum: the data was
/// corrupted between send and receive.
class CommChecksumError : public CommError {
 public:
  using CommError::CommError;
};

/// This rank was released from a blocking operation because another
/// rank of the same run failed; it is collateral, not the root cause.
class CommAbortError : public CommError {
 public:
  using CommError::CommError;
};

}  // namespace autocfd::mp

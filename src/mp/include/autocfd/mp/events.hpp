// Event stream of the simulated cluster.
//
// When a Cluster has an EventSink attached, every virtual-clock
// advance (compute span, send, receive, collective) is reported as a
// TraceEvent carrying the acting rank's clock interval plus enough
// identity (matched message ids, collective generations) for a
// consumer to rebuild the happens-before DAG of the run. Events are
// emitted under the cluster lock, so a sink needs no synchronization
// against the cluster itself; per-rank event order equals that rank's
// program order and is therefore deterministic.
#pragma once

#include <cstdint>

namespace autocfd::mp {

enum class EventKind {
  Compute,       // add_compute span
  Send,          // blocking send (latency x n_messages + bytes once)
  Recv,          // blocking receive; duration is pure idle wait
  AllReduce,     // collective rendezvous + tree cost
  Barrier,       // allreduce in disguise (value ignored)
  Unreceived,    // post-run: a message left sitting in a channel
  // Fault-injection events (zero-width markers on the sender's clock;
  // `wait` carries the injected delay for FaultDelay).
  FaultDelay,    // message transfer time perturbed by the fault hook
  FaultDrop,     // message silently discarded by the fault hook
  FaultCorrupt,  // payload mutated in flight (checksum will catch it)
  Timeout,       // watchdog declared a blocked operation dead
  /// Recovery: one wire retransmission of a lost or corrupted message
  /// (zero-width marker on the *receiver's* stream, since the receiver
  /// drives the retry loop; `wait` carries the backoff interval that
  /// preceded it, t0/t1 the virtual departure of the retransmission).
  Retransmit,
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

/// One timestamped event on one rank's virtual clock.
struct TraceEvent {
  EventKind kind = EventKind::Compute;
  int rank = -1;
  double t0 = 0.0;  // rank clock when the operation began
  double t1 = 0.0;  // rank clock when it completed

  // Point-to-point identity (Send/Recv/Unreceived).
  int peer = -1;           // destination for Send, source for Recv
  int tag = -1;
  long long bytes = 0;
  long long n_messages = 0;
  /// Deterministic id matching a Send to its Recv: assigned per
  /// (src, dst) channel in program order, identical across reruns.
  long long msg_id = -1;

  // Timing decomposition.
  /// Recv: when the message hit the wire-end (sender departure +
  /// transfer). Collectives: the rendezvous instant (slowest entry).
  double arrival = 0.0;
  /// Recv: idle time, max(arrival - t0, 0). Collectives: time spent
  /// blocked waiting for the slowest rank.
  double wait = 0.0;

  /// Recv matched a message behind one or more older messages with
  /// different tags on the same channel (legal MPI, but a smell in
  /// generated halo-exchange code).
  bool fifo_skip = false;

  // Recovery decomposition (reliable-delivery protocol; see
  // autocfd/mp/recovery.hpp).
  /// Recv: portion of `wait` attributable to retransmissions — the
  /// extra idle time past the arrival the original attempt would have
  /// had. Always a sub-account of `wait`, never in addition to it.
  double recovery = 0.0;
  /// Recv: wire attempts the delivery consumed (1 = first try, no
  /// recovery). Retransmit: the 1-based retransmission number.
  int attempts = 1;

  /// Collective generation, shared by all ranks of one rendezvous.
  long long coll_seq = -1;

  /// Sync-plan site that issued a collective (see sync::TagRegistry);
  /// point-to-point events are attributed through `tag` instead.
  int site = -1;
};

/// Receiver of cluster events. Implementations are called under the
/// cluster mutex: they must not call back into the Cluster.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

}  // namespace autocfd::mp

// Fault-injection hook of the simulated cluster.
//
// A Cluster with a FaultHook installed consults it for every
// point-to-point wire message (at send time, under the cluster lock)
// and for every compute span. The hook decides — as a pure function of
// the message identity and virtual departure time, so decisions are
// deterministic regardless of host thread scheduling — whether to
// delay the transfer, drop the message, or corrupt the payload, and
// how much to slow a rank's computation down. The concrete seeded
// injector lives in src/fault (fault::FaultInjector); this interface
// keeps the mp layer free of any dependency on it.
#pragma once

#include <vector>

namespace autocfd::mp {

/// What the hook decided for one message. Corruption is performed by
/// the hook itself (it mutates the payload it is handed, *after* the
/// cluster computed the checksum) and reported back via `corrupted`.
struct FaultDecision {
  double extra_delay = 0.0;  // seconds added to the transfer time
  bool drop = false;         // discard the message instead of enqueuing
  bool corrupted = false;    // the hook mutated the payload in place
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Called under the cluster lock for every wire message. `payload`
  /// may be mutated to model in-flight corruption; the checksum has
  /// already been taken, so the receiver will detect the mutation.
  virtual FaultDecision on_message(int src, int dst, int tag,
                                   long long msg_id, long long bytes,
                                   double departure,
                                   std::vector<double>& payload) = 0;

  /// Multiplier (>= 1) applied to every compute span of `rank` — the
  /// straggler / memory-pressure model. Must be constant per rank for
  /// the run so virtual times stay deterministic.
  virtual double compute_factor(int rank) = 0;
};

}  // namespace autocfd::mp

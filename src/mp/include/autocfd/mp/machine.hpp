// Machine model of the simulated cluster.
//
// The paper's testbed was "a dedicated network of 6 Pentium
// workstations connected by Ethernet" (1999-2003 era). We reproduce it
// as a deterministic virtual-time model:
//   * computation: seconds per floating-point operation, scaled by a
//     memory-hierarchy factor (cache-resident, RAM-resident, or
//     thrashing) derived from the per-rank working-set size — this is
//     what produces the paper's superlinear regime (Table 5) and the
//     out-of-memory slowdowns it discusses;
//   * communication: the classic alpha-beta model, latency plus
//     per-byte cost, with no computation/communication overlap (the
//     paper notes overlap was not achievable with mirror-image sweeps).
#pragma once

#include <cstdint>

namespace autocfd::mp {

struct MachineConfig {
  // --- computation ---------------------------------------------------------
  double flop_time = 12e-9;  // ~83 Mflop/s sustained, late-90s Pentium II

  // --- memory hierarchy ----------------------------------------------------
  long long cache_bytes = 512LL * 1024;        // L2 cache
  long long memory_bytes = 64LL * 1024 * 1024; // RAM per workstation
  double cache_factor = 1.0;    // working set fits in cache
  double ram_factor = 2.6;      // streaming from RAM
  double thrash_factor = 30.0;  // paging to disk

  // --- network (alpha-beta) ------------------------------------------------
  // Plain 10 Mb/s Ethernet with TCP, as the paper's 1999-2003 testbed:
  // ~1 ms small-message latency, ~1 MB/s effective bandwidth.
  double net_latency = 0.8e-3;    // per message
  double net_byte_time = 1.0e-6;  // per byte
  int collective_log_cost = 2;    // latency multiplier for collectives

  /// Time one message of `bytes` occupies sender and wire.
  [[nodiscard]] double message_time(long long bytes) const {
    return net_latency + static_cast<double>(bytes) * net_byte_time;
  }

  /// Per-flop slowdown for a given working-set size. Piecewise with a
  /// smooth ramp between regimes so scaling curves are not cliffed.
  [[nodiscard]] double memory_factor(long long working_set_bytes) const;

  /// The preset used by all paper-reproduction benches.
  [[nodiscard]] static MachineConfig pentium_ethernet_1999();
};

}  // namespace autocfd::mp

// Reliable-delivery configuration of the simulated cluster.
//
// With recovery enabled the cluster turns the fail-fast fault handling
// of the hardened runtime (drop -> watchdog timeout, corruption ->
// checksum error) into a self-healing protocol: every point-to-point
// message is retained by the sender's transport layer until its
// receiver has verified the checksum, and a dropped or corrupted
// attempt is retransmitted from the pristine payload — under the same
// checksum as the original — on a timer-driven exponential backoff
// schedule in deterministic virtual time. Only when a message's retry
// budget is exhausted does the original error fire, now carrying the
// attempt count. See DESIGN.md §16 for the protocol.
#pragma once

#include <string>

namespace autocfd::mp {

/// Knobs of the ack/retransmit protocol. Disabled by default: the
/// cluster then behaves exactly as the fail-fast hardened runtime.
struct RecoveryConfig {
  bool enabled = false;
  /// Initial retransmit timeout (virtual seconds): the first
  /// retransmission of a message departs rto after the original.
  double rto = 2e-3;
  /// Exponential backoff multiplier applied per attempt: attempt k
  /// departs min(rto * backoff^(k-1), max_backoff) after attempt k-1.
  double backoff = 2.0;
  /// Cap on the per-attempt backoff interval (virtual seconds).
  double max_backoff = 20e-3;
  /// Maximum retransmissions per logical message (the original attempt
  /// is not counted). Exhausting the budget degrades gracefully into
  /// CommTimeoutError (last attempt dropped) or CommChecksumError
  /// (last attempt corrupted) with the attempt count attached.
  int budget = 8;

  /// Backoff interval preceding retransmission `attempt` (1-based).
  [[nodiscard]] double backoff_interval(int attempt) const;

  /// Parses a comma-separated spec, e.g. "budget=8,rto=0.002,
  /// backoff=2,cap=0.02". Every key is optional (missing keys keep
  /// their defaults); an empty spec enables recovery with defaults.
  /// Throws std::invalid_argument with an actionable diagnostic on
  /// unknown keys or out-of-range values. The returned config has
  /// enabled == true.
  [[nodiscard]] static RecoveryConfig parse(const std::string& spec);
  /// Round-trippable spec string ("budget=8,rto=0.002,...").
  [[nodiscard]] std::string str() const;
};

}  // namespace autocfd::mp

#include "autocfd/mp/machine.hpp"

#include <algorithm>
#include <cmath>

namespace autocfd::mp {

double MachineConfig::memory_factor(long long working_set_bytes) const {
  // Geometric interpolation between the cache-resident and RAM-resident
  // regimes: the larger the fraction of the working set that misses
  // cache, the slower each operation — this graded curve is what gives
  // smaller per-rank working sets their edge (the paper's Table 3
  // cache observation and Table 5 superlinear regime), with a thrash
  // ramp once the working set no longer fits in RAM.
  const auto ws = static_cast<double>(working_set_bytes);
  const auto cache = static_cast<double>(cache_bytes);
  const auto ram = static_cast<double>(memory_bytes);
  if (ws <= cache) return cache_factor;
  if (ws <= ram) {
    const double t = std::log(ws / cache) / std::log(ram / cache);
    return cache_factor * std::pow(ram_factor / cache_factor, t);
  }
  if (ws <= 1.5 * ram) {
    const double t = (ws - ram) / (0.5 * ram);
    return ram_factor + t * (thrash_factor - ram_factor);
  }
  return thrash_factor;
}

MachineConfig MachineConfig::pentium_ethernet_1999() { return {}; }

}  // namespace autocfd::mp

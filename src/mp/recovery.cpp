#include "autocfd/mp/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace autocfd::mp {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

double parse_num(const std::string& key, const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("recovery spec: bad number '" + text +
                                "' for key '" + key + "'");
  }
}

}  // namespace

double RecoveryConfig::backoff_interval(int attempt) const {
  double interval = rto;
  for (int k = 1; k < attempt; ++k) {
    interval *= backoff;
    if (interval >= max_backoff) break;
  }
  return std::min(interval, max_backoff);
}

RecoveryConfig RecoveryConfig::parse(const std::string& spec) {
  RecoveryConfig rc;
  rc.enabled = true;
  if (spec == "default") return rc;  // "recovery on, stock knobs"
  for (const auto& item : split(spec, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(
          "recovery spec: expected key=value, got '" + item +
          "' (keys: budget, rto, backoff, cap)");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "budget") {
      const double v = parse_num(key, value);
      if (v != std::floor(v) || v < 1.0) {
        throw std::invalid_argument(
            "recovery spec: budget needs an integer >= 1, got '" + value +
            "'");
      }
      rc.budget = static_cast<int>(v);
    } else if (key == "rto") {
      rc.rto = parse_num(key, value);
      if (rc.rto <= 0.0) {
        throw std::invalid_argument(
            "recovery spec: rto must be > 0 virtual seconds, got '" + value +
            "'");
      }
    } else if (key == "backoff") {
      rc.backoff = parse_num(key, value);
      if (rc.backoff < 1.0) {
        throw std::invalid_argument(
            "recovery spec: backoff multiplier must be >= 1, got '" + value +
            "'");
      }
    } else if (key == "cap") {
      rc.max_backoff = parse_num(key, value);
      if (rc.max_backoff <= 0.0) {
        throw std::invalid_argument(
            "recovery spec: cap must be > 0 virtual seconds, got '" + value +
            "'");
      }
    } else {
      throw std::invalid_argument("recovery spec: unknown key '" + key +
                                  "' (keys: budget, rto, backoff, cap)");
    }
  }
  return rc;
}

std::string RecoveryConfig::str() const {
  std::ostringstream os;
  os << "budget=" << budget << ",rto=" << rto << ",backoff=" << backoff
     << ",cap=" << max_backoff;
  return os.str();
}

}  // namespace autocfd::mp

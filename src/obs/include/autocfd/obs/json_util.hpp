// Minimal JSON-writing helpers shared by the observability exporters
// (pass profiler, provenance log, metrics registry). The library emits
// JSON by hand — like src/trace/export.cpp — so the schema stays exact
// and no external dependency is needed.
#pragma once

#include <string>
#include <string_view>

namespace autocfd::obs {

/// Escapes `s` for inclusion inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Formats a double as a JSON number (shortest round-trip form; nan and
/// infinities — invalid JSON — are clamped to 0 and +/-1e308).
[[nodiscard]] std::string json_number(double v);

}  // namespace autocfd::obs

// Unified metrics registry: counters, gauges and histograms with JSON
// export. One registry carries both compile-phase metrics (fed by the
// PassProfiler) and per-rank runtime metrics (fed by the trace->metrics
// bridge in src/trace), so a single `--metrics-out` file describes a
// whole pre-compile + simulated-run session.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace autocfd::obs {

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds of the
/// finite buckets; one overflow bucket (+inf) is implicit. Also tracks
/// count/min/max/sum for summary statistics.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per finite bucket; the last element is the overflow bucket.
  [[nodiscard]] const std::vector<std::int64_t>& bucket_counts() const {
    return bucket_counts_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> bucket_counts_;  // bounds_.size() + 1
  std::int64_t count_ = 0;
  double min_ = 0.0, max_ = 0.0, sum_ = 0.0;
};

/// Default bucket bounds for byte-sized quantities (powers of 4 up to
/// 16 MiB) and for second-sized quantities (1 us .. 100 s decades).
[[nodiscard]] std::vector<double> byte_buckets();
[[nodiscard]] std::vector<double> seconds_buckets();

class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name` (created at 0 on first use).
  void add(const std::string& name, std::int64_t delta = 1);
  /// Sets gauge `name`.
  void set_gauge(const std::string& name, double value);
  /// Histogram `name`, created with `bounds` on first use (subsequent
  /// calls ignore `bounds`).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  [[nodiscard]] std::int64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count","min","max","sum","mean","buckets":[{"le","count"},...]}}}
  /// Keys are emitted in sorted order: the output is deterministic.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;

  /// One line per metric, for terminals and tests.
  [[nodiscard]] std::string text_report() const;

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace autocfd::obs

// One observability context for one pre-compiler invocation. Pass a
// (possibly null) ObsContext* through core::parallelize to collect the
// pass profile, the decision provenance and the unified metrics of the
// run; a null context costs nothing on the hot paths.
#pragma once

#include "autocfd/obs/metrics.hpp"
#include "autocfd/obs/profile.hpp"
#include "autocfd/obs/provenance.hpp"

namespace autocfd::obs {

struct ObsContext {
  PassProfiler profiler;
  ProvenanceLog provenance;
  MetricsRegistry metrics;

  /// Provenance log of a nullable context (phases take ProvenanceLog*).
  [[nodiscard]] static ProvenanceLog* provenance_of(ObsContext* obs) {
    return obs != nullptr ? &obs->provenance : nullptr;
  }
  [[nodiscard]] static PassProfiler* profiler_of(ObsContext* obs) {
    return obs != nullptr ? &obs->profiler : nullptr;
  }

  /// Folds the pass profile into the metrics registry ("compile.*"
  /// namespace) — call once after the pipeline finishes.
  void export_profile_to_metrics() { profiler.to_metrics(metrics); }
};

}  // namespace autocfd::obs

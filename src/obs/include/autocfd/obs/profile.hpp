// Pass profiler for the pre-compiler pipeline.
//
// Every stage of core::parallelize (parse, field-loop classification,
// partitioning, dependence analysis, self-dep / mirror-image, sync
// regions, combining, restructuring) opens an RAII PhaseTimer; on scope
// exit the wall time and the phase-specific counters (loops classified
// per category, |S_LDP| edges tested vs admitted, regions hoisted,
// intersections evaluated vs merged, ...) land in the profiler. The
// profiler also measures the total pipeline time so consumers can
// assert that the phases account for (almost) all of it.
#pragma once

#include <chrono>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace autocfd::obs {

class MetricsRegistry;

/// One completed phase: wall time plus named counters.
struct PhaseProfile {
  std::string name;
  double wall_s = 0.0;
  std::map<std::string, double> counters;
};

class PassProfiler {
 public:
  /// RAII timer. Holds a (possibly null) profiler so call sites can
  /// open timers unconditionally; with a null profiler every operation
  /// is a no-op. Records on destruction.
  class PhaseTimer {
   public:
    PhaseTimer(PassProfiler* profiler, std::string name)
        : profiler_(profiler), name_(std::move(name)),
          start_(std::chrono::steady_clock::now()) {}
    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;
    ~PhaseTimer() { stop(); }

    /// Adds `delta` to the phase counter `key`.
    void count(const std::string& key, double delta = 1.0) {
      if (profiler_ != nullptr) counters_[key] += delta;
    }

    /// Records the phase now (idempotent; the destructor is then a no-op).
    void stop() {
      if (profiler_ == nullptr) return;
      PhaseProfile p;
      p.name = std::move(name_);
      p.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
      p.counters = std::move(counters_);
      profiler_->record(std::move(p));
      profiler_ = nullptr;
    }

   private:
    PassProfiler* profiler_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    std::map<std::string, double> counters_;
  };

  /// Scoped timer for the *total* pipeline; same RAII discipline.
  class TotalTimer {
   public:
    explicit TotalTimer(PassProfiler* profiler)
        : profiler_(profiler), start_(std::chrono::steady_clock::now()) {}
    TotalTimer(const TotalTimer&) = delete;
    TotalTimer& operator=(const TotalTimer&) = delete;
    ~TotalTimer() {
      if (profiler_ == nullptr) return;
      profiler_->total_wall_s_ +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
    }

   private:
    PassProfiler* profiler_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Appends a phase record; a re-run phase (same name) accumulates
  /// into the existing record instead of duplicating it.
  void record(PhaseProfile p);

  [[nodiscard]] const std::vector<PhaseProfile>& phases() const {
    return phases_;
  }
  [[nodiscard]] const PhaseProfile* find(std::string_view name) const;

  /// Sum of the recorded phases' wall times.
  [[nodiscard]] double phase_sum_s() const;
  /// Total measured across the whole pipeline (0 if never measured).
  [[nodiscard]] double total_wall_s() const { return total_wall_s_; }

  /// Human-readable table: one line per phase with time, share of the
  /// total, and counters.
  [[nodiscard]] std::string text_report() const;

  /// {"total_wall_s": ..., "phases": [{"name", "wall_s", "counters"}]}
  void write_json(std::ostream& os) const;

  /// Exports into a metrics registry: gauge "compile.<phase>.wall_s"
  /// and counter "compile.<phase>.<counter>" per entry, plus
  /// "compile.total.wall_s".
  void to_metrics(MetricsRegistry& reg) const;

 private:
  std::vector<PhaseProfile> phases_;
  double total_wall_s_ = 0.0;
};

}  // namespace autocfd::obs

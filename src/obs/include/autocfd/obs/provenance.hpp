// Decision-provenance log: the "explain" engine of the pre-compiler.
//
// Every consequential decision the pipeline takes — classifying a field
// loop A/R/C/O per status array, splitting a self-dependence into its
// flow and anti halves, hoisting a sync region's start point out of a
// loop/branch/call (or pinning it), merging upper-bound regions into
// one synchronization point — appends a structured entry here. The log
// answers "why did the parallelizer do that?" without re-running the
// analysis under a debugger, and its JSON form is schema-stable so
// tools and tests can consume it.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "autocfd/support/diagnostics.hpp"

namespace autocfd::obs {

enum class DecisionKind {
  LoopClassification,  // ir: field loop typed A/R/C/O for one array
  SelfDependence,      // depend: direction-vector split of a self-dep
  RegionHoist,         // sync: start point hoisted out of an owner stmt
  RegionPin,           // sync: hoisting stopped (reader/goto/boundary)
  RegionExtent,        // sync: final upper-bound region of one pair
  CombineMerge,        // sync: one synchronization point for N regions
  PartitionChoice,     // core: partition resolved from directives
  PlannerOverride,     // plan: profile-guided plan overrode a heuristic
};

[[nodiscard]] const char* decision_kind_name(DecisionKind kind);

struct ProvenanceEntry {
  DecisionKind kind = DecisionKind::LoopClassification;
  SourceLoc loc;          // where in the *sequential* source
  std::string subject;    // what was decided about ("loop@12 array v")
  std::string decision;   // the chosen alternative ("C", "merged", ...)
  std::string rationale;  // why, in one sentence
  /// Cross-references: sync-region ids for combine decisions, grid
  /// dimensions for self-dependence splits. Empty when not applicable.
  std::vector<int> refs;
};

class ProvenanceLog {
 public:
  void add(ProvenanceEntry entry) { entries_.push_back(std::move(entry)); }
  void add(DecisionKind kind, SourceLoc loc, std::string subject,
           std::string decision, std::string rationale,
           std::vector<int> refs = {});

  [[nodiscard]] const std::vector<ProvenanceEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::vector<const ProvenanceEntry*> of_kind(
      DecisionKind kind) const;

  /// "explain: [classify] 12:3 loop@12 array v -> C (assigned and
  /// referenced in the nest)" — one line per entry, insertion order.
  [[nodiscard]] std::string text_report() const;

  /// {"decisions": [{"kind","line","column","subject","decision",
  /// "rationale","refs":[...]}, ...]} in insertion order.
  void write_json(std::ostream& os) const;

 private:
  std::vector<ProvenanceEntry> entries_;
};

/// Short tag used in the text report ("classify", "self-dep", ...).
[[nodiscard]] const char* decision_kind_tag(DecisionKind kind);

}  // namespace autocfd::obs

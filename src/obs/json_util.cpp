#include "autocfd/obs/json_util.hpp"

#include <cmath>
#include <cstdio>

namespace autocfd::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isnan(v)) v = 0.0;
  if (std::isinf(v)) v = v > 0 ? 1e308 : -1e308;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace autocfd::obs

#include "autocfd/obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "autocfd/obs/json_util.hpp"

namespace autocfd::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bucket_counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  if (bucket_counts_.empty()) bucket_counts_.assign(1, 0);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++bucket_counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

std::vector<double> byte_buckets() {
  std::vector<double> out;
  for (double b = 64.0; b <= 16.0 * 1024 * 1024; b *= 4.0) out.push_back(b);
  return out;
}

std::vector<double> seconds_buckets() {
  std::vector<double> out;
  for (double b = 1e-6; b <= 100.0; b *= 10.0) out.push_back(b);
  return out;
}

void MetricsRegistry::add(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds)))
      .first->second;
}

std::int64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << json_escape(name) << "\": " << value;
  }
  os << (counters_.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << json_escape(name) << "\": " << json_number(value);
  }
  os << (gauges_.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << json_escape(name) << "\": {\"count\": " << h.count()
       << ", \"min\": " << json_number(h.min())
       << ", \"max\": " << json_number(h.max())
       << ", \"sum\": " << json_number(h.sum())
       << ", \"mean\": " << json_number(h.mean()) << ", \"buckets\": [";
    const auto& bounds = h.bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      if (i < bounds.size()) {
        os << json_number(bounds[i]);
      } else {
        os << "\"inf\"";
      }
      os << ", \"count\": " << counts[i] << "}";
    }
    os << "]}";
  }
  os << (histograms_.empty() ? "" : "\n  ") << "}\n}\n";
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string MetricsRegistry::text_report() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << '\n';
  }
  for (const auto& [name, value] : gauges_) {
    os << name << " = " << json_number(value) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": count=" << h.count() << " min=" << json_number(h.min())
       << " max=" << json_number(h.max()) << " mean=" << json_number(h.mean())
       << '\n';
  }
  return os.str();
}

}  // namespace autocfd::obs

#include "autocfd/obs/profile.hpp"

#include <cstdio>
#include <sstream>

#include "autocfd/obs/json_util.hpp"
#include "autocfd/obs/metrics.hpp"

namespace autocfd::obs {

void PassProfiler::record(PhaseProfile p) {
  for (auto& existing : phases_) {
    if (existing.name == p.name) {
      existing.wall_s += p.wall_s;
      for (const auto& [key, value] : p.counters) {
        existing.counters[key] += value;
      }
      return;
    }
  }
  phases_.push_back(std::move(p));
}

const PhaseProfile* PassProfiler::find(std::string_view name) const {
  for (const auto& p : phases_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

double PassProfiler::phase_sum_s() const {
  double sum = 0.0;
  for (const auto& p : phases_) sum += p.wall_s;
  return sum;
}

std::string PassProfiler::text_report() const {
  std::ostringstream os;
  char line[256];
  const double total = total_wall_s_ > 0.0 ? total_wall_s_ : phase_sum_s();
  std::snprintf(line, sizeof line, "pass profile: %zu phase(s), %.3f ms\n",
                phases_.size(), total * 1e3);
  os << line;
  for (const auto& p : phases_) {
    std::snprintf(line, sizeof line, "  %-26s %9.3f ms %5.1f%%", p.name.c_str(),
                  p.wall_s * 1e3,
                  total > 0.0 ? 100.0 * p.wall_s / total : 0.0);
    os << line;
    bool first = true;
    for (const auto& [key, value] : p.counters) {
      os << (first ? "  " : ", ") << key << "=";
      if (value == static_cast<double>(static_cast<long long>(value))) {
        os << static_cast<long long>(value);
      } else {
        os << json_number(value);
      }
      first = false;
    }
    os << '\n';
  }
  return os.str();
}

void PassProfiler::write_json(std::ostream& os) const {
  os << "{\"total_wall_s\": " << json_number(total_wall_s_)
     << ", \"phases\": [";
  bool first_phase = true;
  for (const auto& p : phases_) {
    if (!first_phase) os << ",";
    first_phase = false;
    os << "\n  {\"name\": \"" << json_escape(p.name)
       << "\", \"wall_s\": " << json_number(p.wall_s) << ", \"counters\": {";
    bool first_counter = true;
    for (const auto& [key, value] : p.counters) {
      if (!first_counter) os << ", ";
      first_counter = false;
      os << "\"" << json_escape(key) << "\": " << json_number(value);
    }
    os << "}}";
  }
  os << "\n]}";
}

void PassProfiler::to_metrics(MetricsRegistry& reg) const {
  reg.set_gauge("compile.total.wall_s", total_wall_s_);
  for (const auto& p : phases_) {
    reg.set_gauge("compile." + p.name + ".wall_s", p.wall_s);
    for (const auto& [key, value] : p.counters) {
      reg.add("compile." + p.name + "." + key,
              static_cast<std::int64_t>(value));
    }
  }
}

}  // namespace autocfd::obs

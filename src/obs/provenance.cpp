#include "autocfd/obs/provenance.hpp"

#include <sstream>

#include "autocfd/obs/json_util.hpp"

namespace autocfd::obs {

const char* decision_kind_name(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::LoopClassification: return "loop_classification";
    case DecisionKind::SelfDependence: return "self_dependence";
    case DecisionKind::RegionHoist: return "region_hoist";
    case DecisionKind::RegionPin: return "region_pin";
    case DecisionKind::RegionExtent: return "region_extent";
    case DecisionKind::CombineMerge: return "combine_merge";
    case DecisionKind::PartitionChoice: return "partition_choice";
    case DecisionKind::PlannerOverride: return "planner_override";
  }
  return "?";
}

const char* decision_kind_tag(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::LoopClassification: return "classify";
    case DecisionKind::SelfDependence: return "self-dep";
    case DecisionKind::RegionHoist: return "hoist";
    case DecisionKind::RegionPin: return "pin";
    case DecisionKind::RegionExtent: return "region";
    case DecisionKind::CombineMerge: return "combine";
    case DecisionKind::PartitionChoice: return "partition";
    case DecisionKind::PlannerOverride: return "planned";
  }
  return "?";
}

void ProvenanceLog::add(DecisionKind kind, SourceLoc loc, std::string subject,
                        std::string decision, std::string rationale,
                        std::vector<int> refs) {
  ProvenanceEntry e;
  e.kind = kind;
  e.loc = loc;
  e.subject = std::move(subject);
  e.decision = std::move(decision);
  e.rationale = std::move(rationale);
  e.refs = std::move(refs);
  entries_.push_back(std::move(e));
}

std::vector<const ProvenanceEntry*> ProvenanceLog::of_kind(
    DecisionKind kind) const {
  std::vector<const ProvenanceEntry*> out;
  for (const auto& e : entries_) {
    if (e.kind == kind) out.push_back(&e);
  }
  return out;
}

std::string ProvenanceLog::text_report() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << "explain: [" << decision_kind_tag(e.kind) << "] " << e.loc.str()
       << " " << e.subject << " -> " << e.decision;
    if (!e.refs.empty()) {
      os << " {";
      for (std::size_t i = 0; i < e.refs.size(); ++i) {
        os << (i > 0 ? "," : "") << e.refs[i];
      }
      os << "}";
    }
    if (!e.rationale.empty()) os << " (" << e.rationale << ")";
    os << '\n';
  }
  return os.str();
}

void ProvenanceLog::write_json(std::ostream& os) const {
  os << "{\"decisions\": [";
  bool first = true;
  for (const auto& e : entries_) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"kind\": \"" << decision_kind_name(e.kind)
       << "\", \"line\": " << e.loc.line << ", \"column\": " << e.loc.column
       << ", \"subject\": \"" << json_escape(e.subject)
       << "\", \"decision\": \"" << json_escape(e.decision)
       << "\", \"rationale\": \"" << json_escape(e.rationale)
       << "\", \"refs\": [";
    for (std::size_t i = 0; i < e.refs.size(); ++i) {
      os << (i > 0 ? ", " : "") << e.refs[i];
    }
    os << "]}";
  }
  os << "\n]}";
}

}  // namespace autocfd::obs

#include "autocfd/partition/comm_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace autocfd::partition {

HaloWidths HaloWidths::uniform(int rank, int width) {
  HaloWidths h;
  h.lo.assign(static_cast<std::size_t>(rank), width);
  h.hi.assign(static_cast<std::size_t>(rank), width);
  return h;
}

bool HaloWidths::any() const {
  return std::any_of(lo.begin(), lo.end(), [](int w) { return w > 0; }) ||
         std::any_of(hi.begin(), hi.end(), [](int w) { return w > 0; });
}

HaloWidths HaloWidths::merge(const HaloWidths& a, const HaloWidths& b) {
  if (a.lo.empty()) return b;
  if (b.lo.empty()) return a;
  HaloWidths out = a;
  for (std::size_t d = 0; d < out.lo.size() && d < b.lo.size(); ++d) {
    out.lo[d] = std::max(out.lo[d], b.lo[d]);
    out.hi[d] = std::max(out.hi[d], b.hi[d]);
  }
  return out;
}

namespace {

/// Area of the face of `sg` orthogonal to `dim`.
long long face_area(const SubGrid& sg, int dim) {
  long long area = 1;
  for (int d = 0; d < static_cast<int>(sg.lo.size()); ++d) {
    if (d == dim) continue;
    area *= sg.extent(d);
  }
  return area;
}

}  // namespace

long long comm_points(const BlockPartition& part, int rank,
                      const HaloWidths& halo) {
  const auto& sg = part.subgrid(rank);
  long long total = 0;
  for (int d = 0; d < part.grid().rank(); ++d) {
    const auto du = static_cast<std::size_t>(d);
    // Low neighbor wants our first halo.hi[d]... careful with naming:
    // the neighbor below needs our low-face layers as *its* high halo.
    if (part.neighbor(rank, d, -1)) {
      total += face_area(sg, d) * halo.hi[du];
    }
    if (part.neighbor(rank, d, +1)) {
      total += face_area(sg, d) * halo.lo[du];
    }
  }
  return total;
}

long long max_comm_points(const BlockPartition& part, const HaloWidths& halo) {
  long long best = 0;
  for (int r = 0; r < part.num_tasks(); ++r) {
    best = std::max(best, comm_points(part, r, halo));
  }
  return best;
}

long long total_comm_points(const BlockPartition& part,
                            const HaloWidths& halo) {
  long long total = 0;
  for (int r = 0; r < part.num_tasks(); ++r) {
    total += comm_points(part, r, halo);
  }
  return total;
}

int neighbor_count(const BlockPartition& part, int rank) {
  int n = 0;
  for (int d = 0; d < part.grid().rank(); ++d) {
    if (part.neighbor(rank, d, -1)) ++n;
    if (part.neighbor(rank, d, +1)) ++n;
  }
  return n;
}

namespace {

void enumerate_rec(int remaining, int dims_left, std::vector<int>& acc,
                   std::vector<PartitionSpec>& out) {
  if (dims_left == 1) {
    acc.push_back(remaining);
    out.push_back(PartitionSpec{acc});
    acc.pop_back();
    return;
  }
  for (int f = 1; f <= remaining; ++f) {
    if (remaining % f != 0) continue;
    acc.push_back(f);
    enumerate_rec(remaining / f, dims_left - 1, acc, out);
    acc.pop_back();
  }
}

}  // namespace

std::vector<PartitionSpec> enumerate_partitions(int nprocs, int rank) {
  if (nprocs < 1 || rank < 1) {
    throw std::invalid_argument("nprocs and rank must be positive");
  }
  std::vector<PartitionSpec> out;
  std::vector<int> acc;
  enumerate_rec(nprocs, rank, acc, out);
  return out;
}

PartitionSpec find_best_partition(const Grid& grid, int nprocs,
                                  const HaloWidths& halo) {
  PartitionSpec best;
  long long best_max = -1, best_total = -1, best_load = -1;
  for (const auto& spec : enumerate_partitions(nprocs, grid.rank())) {
    // Skip over-cut dimensions.
    bool feasible = true;
    for (int d = 0; d < grid.rank(); ++d) {
      if (spec.cuts[static_cast<std::size_t>(d)] >
          grid.extents[static_cast<std::size_t>(d)]) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    const BlockPartition part(grid, spec);
    const long long mx = max_comm_points(part, halo);
    const long long tot = total_comm_points(part, halo);
    long long load = 0;
    for (int r = 0; r < part.num_tasks(); ++r) {
      load = std::max(load, part.subgrid(r).points());
    }
    const bool better =
        best_max < 0 || mx < best_max ||
        (mx == best_max &&
         (tot < best_total || (tot == best_total && load < best_load)));
    if (better) {
      best = spec;
      best_max = mx;
      best_total = tot;
      best_load = load;
    }
  }
  if (best_max < 0) {
    throw std::invalid_argument("no feasible partition for " +
                                std::to_string(nprocs) + " tasks on grid " +
                                grid.str());
  }
  return best;
}

}  // namespace autocfd::partition

#include "autocfd/partition/grid.hpp"

#include <sstream>
#include <stdexcept>

#include "autocfd/support/strings.hpp"

namespace autocfd::partition {

long long Grid::total_points() const {
  long long n = 1;
  for (const auto e : extents) n *= e;
  return n;
}

std::string Grid::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < extents.size(); ++i) {
    if (i) os << 'x';
    os << extents[i];
  }
  return os.str();
}

int PartitionSpec::num_tasks() const {
  int n = 1;
  for (const auto c : cuts) n *= c;
  return n;
}

std::string PartitionSpec::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    if (i) os << 'x';
    os << cuts[i];
  }
  return os.str();
}

PartitionSpec PartitionSpec::parse(std::string_view text) {
  PartitionSpec spec;
  for (const auto& part : autocfd::split(text, 'x')) {
    const int v = std::stoi(part);
    if (v < 1) throw std::invalid_argument("partition cut must be >= 1");
    spec.cuts.push_back(v);
  }
  if (spec.cuts.empty()) {
    throw std::invalid_argument("empty partition spec");
  }
  return spec;
}

long long SubGrid::points() const {
  long long n = 1;
  for (std::size_t d = 0; d < lo.size(); ++d) n *= hi[d] - lo[d] + 1;
  return n;
}

std::vector<std::pair<long long, long long>> BlockPartition::split_extent(
    long long n, int parts) {
  std::vector<std::pair<long long, long long>> out;
  out.reserve(static_cast<std::size_t>(parts));
  const long long base = n / parts;
  const long long extra = n % parts;
  long long next = 1;
  for (int p = 0; p < parts; ++p) {
    const long long len = base + (p < extra ? 1 : 0);
    out.emplace_back(next, next + len - 1);
    next += len;
  }
  return out;
}

BlockPartition::BlockPartition(Grid grid, PartitionSpec spec)
    : grid_(std::move(grid)), spec_(std::move(spec)) {
  if (grid_.rank() != spec_.rank()) {
    throw std::invalid_argument("partition rank " +
                                std::to_string(spec_.rank()) +
                                " does not match grid rank " +
                                std::to_string(grid_.rank()));
  }
  for (int d = 0; d < grid_.rank(); ++d) {
    if (spec_.cuts[static_cast<std::size_t>(d)] > grid_.extents[static_cast<std::size_t>(d)]) {
      throw std::invalid_argument("more cuts than points in dimension " +
                                  std::to_string(d));
    }
  }

  // Per-dimension balanced splits, then a row-major lattice walk
  // (last dimension fastest) assigning ranks.
  std::vector<std::vector<std::pair<long long, long long>>> splits;
  splits.reserve(static_cast<std::size_t>(grid_.rank()));
  for (int d = 0; d < grid_.rank(); ++d) {
    splits.push_back(split_extent(grid_.extents[static_cast<std::size_t>(d)],
                                  spec_.cuts[static_cast<std::size_t>(d)]));
  }
  const int ntasks = spec_.num_tasks();
  subgrids_.resize(static_cast<std::size_t>(ntasks));
  std::vector<int> coord(static_cast<std::size_t>(grid_.rank()), 0);
  for (int r = 0; r < ntasks; ++r) {
    SubGrid sg;
    sg.coord = coord;
    for (int d = 0; d < grid_.rank(); ++d) {
      const auto& [lo, hi] =
          splits[static_cast<std::size_t>(d)][static_cast<std::size_t>(
              coord[static_cast<std::size_t>(d)])];
      sg.lo.push_back(lo);
      sg.hi.push_back(hi);
    }
    subgrids_[static_cast<std::size_t>(r)] = std::move(sg);
    // increment lattice coordinate, last dimension fastest
    for (int d = grid_.rank() - 1; d >= 0; --d) {
      auto& c = coord[static_cast<std::size_t>(d)];
      if (++c < spec_.cuts[static_cast<std::size_t>(d)]) break;
      c = 0;
    }
  }
}

int BlockPartition::rank_of(const std::vector<int>& coord) const {
  int r = 0;
  for (int d = 0; d < spec_.rank(); ++d) {
    r = r * spec_.cuts[static_cast<std::size_t>(d)] +
        coord[static_cast<std::size_t>(d)];
  }
  return r;
}

std::optional<int> BlockPartition::neighbor(int rank, int dim, int dir) const {
  auto coord = subgrid(rank).coord;
  const auto d = static_cast<std::size_t>(dim);
  coord[d] += dir;
  if (coord[d] < 0 || coord[d] >= spec_.cuts[d]) return std::nullopt;
  return rank_of(coord);
}

}  // namespace autocfd::partition

// Communication-volume model for block partitions (paper section 4.1).
//
// Communication happens across demarcation lines: for every dimension a
// partition actually cuts, each interior block exchanges a halo face
// with its neighbor. The paper's claim — communication is minimized
// when demarcation lines carry (near-)equal point counts — falls out of
// the balanced split; `find_best_partition` searches all factorizations
// of the processor count for the one minimizing the maximum per-task
// communication (the quantity that bounds parallel time).
#pragma once

#include <vector>

#include "autocfd/partition/grid.hpp"

namespace autocfd::partition {

/// Halo requirement per grid dimension: how many ghost layers a task
/// needs from its low/high neighbor (from dependency distances).
struct HaloWidths {
  std::vector<int> lo;
  std::vector<int> hi;

  [[nodiscard]] static HaloWidths uniform(int rank, int width);
  [[nodiscard]] bool any() const;
  /// Element-wise maximum of two requirements.
  [[nodiscard]] static HaloWidths merge(const HaloWidths& a,
                                        const HaloWidths& b);
  friend bool operator==(const HaloWidths&, const HaloWidths&) = default;
};

/// Grid points one task sends per halo exchange (sum over its cut
/// faces of face-area x halo width required by the *neighbor*).
[[nodiscard]] long long comm_points(const BlockPartition& part, int rank,
                                    const HaloWidths& halo);

/// Maximum per-task communication: the paper's balance criterion.
[[nodiscard]] long long max_comm_points(const BlockPartition& part,
                                        const HaloWidths& halo);

/// Total points crossing all demarcation lines (both directions).
[[nodiscard]] long long total_comm_points(const BlockPartition& part,
                                          const HaloWidths& halo);

/// Number of neighbors rank exchanges with.
[[nodiscard]] int neighbor_count(const BlockPartition& part, int rank);

/// All factorizations of `nprocs` into `rank` ordered factors
/// (e.g. 4 procs, rank 3 -> 4x1x1, 1x4x1, ..., 2x2x1, ...).
[[nodiscard]] std::vector<PartitionSpec> enumerate_partitions(int nprocs,
                                                              int rank);

/// Section 4.1 optimal search: among all factorizations, choose the one
/// minimizing max per-task communication; ties broken by total
/// communication, then by max subgrid size (load balance).
[[nodiscard]] PartitionSpec find_best_partition(const Grid& grid, int nprocs,
                                                const HaloWidths& halo);

}  // namespace autocfd::partition

// Flow-field grid and block-partition descriptors (paper section 4.1).
//
// The pre-compiler partitions the computational grid into x*y*z equal
// blocks; each block becomes one SPMD subtask. The paper's two goals:
// balance the computation (equal point counts) and minimize the
// communication (equal demarcation-line point counts).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace autocfd::partition {

/// A structured computational grid: extent (number of points, 1-based)
/// per dimension.
struct Grid {
  std::vector<long long> extents;

  [[nodiscard]] int rank() const { return static_cast<int>(extents.size()); }
  [[nodiscard]] long long total_points() const;
  [[nodiscard]] std::string str() const;  // "99x41x13"
};

/// How many parts each dimension is cut into, e.g. {4,1,1} for the
/// paper's "4 x 1 x 1" partitions.
struct PartitionSpec {
  std::vector<int> cuts;

  [[nodiscard]] int num_tasks() const;
  [[nodiscard]] int rank() const { return static_cast<int>(cuts.size()); }
  [[nodiscard]] std::string str() const;  // "4x1x1"
  [[nodiscard]] static PartitionSpec parse(std::string_view text);

  friend bool operator==(const PartitionSpec&, const PartitionSpec&) = default;
};

/// The block owned by one subtask: inclusive global index range per
/// dimension plus its coordinate in the partition lattice.
struct SubGrid {
  std::vector<long long> lo;
  std::vector<long long> hi;
  std::vector<int> coord;

  [[nodiscard]] long long points() const;
  [[nodiscard]] long long extent(int dim) const { return hi[dim] - lo[dim] + 1; }
};

/// Block partition of a grid: maps ranks <-> lattice coordinates and
/// computes each rank's subgrid with maximally balanced extents
/// (the first `n mod parts` blocks along a dimension get the extra
/// point, so any two blocks differ by at most one point per dimension).
class BlockPartition {
 public:
  BlockPartition(Grid grid, PartitionSpec spec);

  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] const PartitionSpec& spec() const { return spec_; }
  [[nodiscard]] int num_tasks() const { return spec_.num_tasks(); }

  [[nodiscard]] const SubGrid& subgrid(int rank) const {
    return subgrids_.at(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] int rank_of(const std::vector<int>& coord) const;
  /// Neighbor rank along `dim` in direction `dir` (+1/-1); nullopt at
  /// the grid boundary.
  [[nodiscard]] std::optional<int> neighbor(int rank, int dim,
                                            int dir) const;

  /// Balanced 1-D split: `parts` inclusive [lo, hi] ranges of 1..n.
  [[nodiscard]] static std::vector<std::pair<long long, long long>>
  split_extent(long long n, int parts);

 private:
  Grid grid_;
  PartitionSpec spec_;
  std::vector<SubGrid> subgrids_;
};

}  // namespace autocfd::partition

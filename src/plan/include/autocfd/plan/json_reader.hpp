// Minimal recursive-descent JSON reader for the planner's inputs.
//
// The repository writes all of its JSON by hand (obs/json_util) and,
// until now, never read any back. The planner closes the loop: it must
// parse the run-report JSON that `acfd --report=json` emitted and the
// PlanFile it previously wrote. This reader covers exactly the JSON
// the repo produces — objects, arrays, strings with the json_escape
// escapes, numbers, booleans, null — with no external dependency.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace autocfd::plan {

/// One parsed JSON value. Objects keep insertion order so that a
/// write -> read -> write round trip is byte-identical.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                           // Array
  std::vector<std::pair<std::string, JsonValue>> fields;  // Object

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  // Typed accessors with fallbacks (never throw).
  [[nodiscard]] double num_or(std::string_view key, double fallback) const;
  [[nodiscard]] long long int_or(std::string_view key,
                                 long long fallback) const;
  [[nodiscard]] std::string str_or(std::string_view key,
                                   std::string fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  /// Array-valued member, or an empty list when absent/mistyped.
  [[nodiscard]] const std::vector<JsonValue>& list(std::string_view key) const;
};

/// Parses one JSON document. On failure returns nullopt and, when
/// `error` is non-null, a one-line diagnostic with the byte offset.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error);

}  // namespace autocfd::plan

// PlanFile: the planner's deterministic output artifact.
//
// A PlanFile records the configuration the planner chose (partition +
// combining strategy), the static-heuristic configuration it was
// compared against, the predicted virtual times of both, a one-line
// rationale, and the full scored candidate table. It is written as
// deterministic JSON (fixed key order, fixed number formatting) so
// that write -> read -> write is byte-identical and CI can diff plans;
// `to_overrides()` turns it into the core::PlanOverrides that
// `acfd --plan=<file>` feeds into the pre-compiler.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "autocfd/core/pipeline.hpp"

namespace autocfd::plan {

/// Version stamp of the plan-file JSON schema.
inline constexpr int kPlanFileSchemaVersion = 1;

struct PlanFile {
  int schema_version = kPlanFileSchemaVersion;
  std::string planned_from;  // title of the source run report
  std::string fault_spec;    // FaultPlan::str(), empty when clean
  int nranks = 0;

  std::string partition;  // chosen PartitionSpec::str()
  std::string strategy;   // chosen combine strategy name
  std::string static_partition;
  std::string static_strategy;
  double predicted_s = 0.0;
  double static_predicted_s = 0.0;
  std::string rationale;
  /// One line per secondary decision (self-dep pipeline-vs-local etc.),
  /// echoed into the explain log of planned runs.
  std::vector<std::string> decisions;

  /// One scored candidate of the search space.
  struct Candidate {
    std::string partition;
    std::string strategy;
    bool feasible = true;
    double predicted_s = 0.0;
    // Breakdown of predicted_s (seconds of simulated virtual time).
    double compute_s = 0.0;   // max-rank weighted compute
    double comm_s = 0.0;      // max-rank halo transfer
    double pipeline_s = 0.0;  // serialization + hand-off of sweeps
    double fault_s = 0.0;     // straggler/degraded-link/jitter penalty
    int syncs_after = 0;
    int pipelined_loops = 0;
    bool chosen = false;
    bool is_static = false;
    std::string note;  // reject reason for infeasible candidates
  };
  std::vector<Candidate> candidates;

  /// The overrides a planned run applies; `origin` (the plan path)
  /// is quoted in every provenance entry the overrides generate.
  [[nodiscard]] core::PlanOverrides to_overrides(std::string origin) const;

  /// Deterministic JSON, byte-identical across write/read/write.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;

  /// Parses PlanFile JSON; nullopt + diagnostic on malformed input or
  /// a schema_version mismatch.
  [[nodiscard]] static std::optional<PlanFile> parse(std::string_view text,
                                                     std::string* error);
  /// Reads and parses a plan file from disk.
  [[nodiscard]] static std::optional<PlanFile> load(const std::string& path,
                                                    std::string* error);
};

}  // namespace autocfd::plan

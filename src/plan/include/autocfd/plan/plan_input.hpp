// PlanInput: the measured evidence one planning pass works from.
//
// A PlanInput is a distilled run report — the partition and combining
// strategy the run used, the per-source-line compute profile, the
// per-rank compute decomposition, the per-site communication bill, and
// the per-link traffic. It can be loaded from the JSON that
// `acfd --report=json` wrote (the two-run CLI workflow) or lifted
// straight from an in-memory prof::RunReport (benches and tests).
// Loading validates the report's schema_version: a report written by
// another build is rejected with a diagnostic instead of being
// silently misread.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "autocfd/prof/report.hpp"

namespace autocfd::plan {

struct PlanInput {
  int schema_version = 0;
  std::string title;
  std::string partition;  // PartitionSpec::str() of the measured run
  int nranks = 0;
  std::string engine;
  double elapsed_s = 0.0;
  double total_flops = 0.0;
  std::string strategy;  // combine strategy name of the measured run

  double total_compute_s = 0.0;  // summed over ranks
  std::vector<double> rank_compute_s;

  /// One source-attributed profile entry (loops and statements).
  struct Loop {
    int line = 0;
    bool is_loop = false;
    bool self_dependent = false;
    std::string loop_class;
    long long count = 0;
    double time_s = 0.0;  // attributed compute, summed over ranks
    double share = 0.0;
  };
  std::vector<Loop> loops;

  /// One sync-plan site's measured communication bill.
  struct Site {
    int site = -1;
    std::string kind;  // "halo" | "pipeline" | "collective"
    std::string label;
    long long messages = 0;
    long long bytes = 0;
    double wait_s = 0.0;
    double cost_s = 0.0;
  };
  std::vector<Site> sites;

  /// Aggregated per-link traffic (comm matrix neighbors).
  struct Link {
    int src = -1;
    int dst = -1;
    long long messages = 0;
    long long bytes = 0;
    double wait_s = 0.0;
  };
  std::vector<Link> links;

  /// Measured compute seconds attributed to `line`, 0 when absent.
  [[nodiscard]] double loop_time(int line) const;
  /// Sum of site costs of one kind ("halo", "pipeline", "collective").
  [[nodiscard]] double site_cost(const std::string& kind) const;
  [[nodiscard]] long long site_messages(const std::string& kind) const;
};

/// Parses report JSON text into a PlanInput. Returns nullopt (with a
/// diagnostic in `error`) on malformed JSON or a schema_version other
/// than prof::kRunReportSchemaVersion.
[[nodiscard]] std::optional<PlanInput> plan_input_from_json(
    std::string_view text, std::string* error);

/// Reads and parses a report JSON file.
[[nodiscard]] std::optional<PlanInput> load_plan_input(
    const std::string& path, std::string* error);

/// In-memory path: distills a freshly built RunReport (no JSON round
/// trip, no version check needed — same build by construction).
[[nodiscard]] PlanInput plan_input_from_report(const prof::RunReport& report);

}  // namespace autocfd::plan

// The profile-guided planner (the feedback half of a CPF-style
// planner/orchestration split).
//
// Static heuristics choose the partition that minimizes *modelled*
// communication volume; they cannot see that a cheap-looking cut runs
// straight through the hot self-dependent sweeps, or that a fault plan
// degrades exactly the links the partition depends on. The planner
// closes that loop: it takes the measured evidence of a prior run (a
// PlanInput), enumerates every (partition shape x combine strategy)
// candidate over the same grid and rank count, prices each candidate
// with the virtual-time machine model re-weighted by the measured
// per-loop compute shares and per-site communication bill, biases the
// scores by an optional fault plan (stragglers, degraded links,
// jitter), and emits a deterministic PlanFile naming the winner.
//
// The cost model mirrors the simulated runtime exactly:
//   * halo exchanges: per combined sync point, per cut dimension, per
//     direction with a neighbor, one sendrecv per rank whose payload
//     packs every member array's slab across the *full local
//     allocation* (ghost layers included) of the other dimensions;
//   * pipelined sweeps: the flow half of a mirror-image decomposition
//     serializes the blocks along the cut dimension — B x the loop's
//     per-rank compute plus (B-1) hand-offs, each paying one latency
//     per grid line of the owned face (send_chunked);
//   * collectives: taken from the measured bill (rank count is fixed).
// A calibration pass against the measured baseline pins the model's
// execution count and residual scale, so scores stay anchored to
// reality rather than to the model's idea of it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "autocfd/core/pipeline.hpp"
#include "autocfd/fault/fault.hpp"
#include "autocfd/mp/machine.hpp"
#include "autocfd/plan/plan_file.hpp"
#include "autocfd/plan/plan_input.hpp"

namespace autocfd::plan {

struct PlannerOptions {
  /// The sequential Fortran source the report was produced from.
  std::string source;
  /// Its extracted directives (grid + status arrays; nprocs/partition
  /// are taken from the PlanInput, not from here).
  core::Directives directives;
  mp::MachineConfig machine = mp::MachineConfig::pentium_ethernet_1999();
  /// Fault plan the planned run will execute under; biases the search
  /// to keep stragglers and degraded links off the critical path.
  std::optional<fault::FaultPlan> faults;
};

/// Runs the full search and returns the PlanFile (chosen + static
/// configurations, rationale, and the scored candidate table).
/// Throws CompileError when the source itself does not analyze.
[[nodiscard]] PlanFile make_plan(const PlanInput& input,
                                 const PlannerOptions& opts);

/// Per-site calibration of the communication model against a measured
/// run: for each halo site of the report, the model's predicted
/// message count and transfer cost next to the measured ones. The
/// calibration test asserts predicted transfer stays within tolerance.
struct SiteCalibration {
  int site = -1;
  std::string label;
  int point = -1;  // combined sync point ordinal
  int dim = -1;    // exchanged dimension
  long long measured_messages = 0;
  double measured_cost_s = 0.0;
  long long model_messages_per_exec = 0;
  /// Model transfer for the site, scaled to the measured execution
  /// count (measured_messages / model_messages_per_exec).
  double model_cost_s = 0.0;
};

[[nodiscard]] std::vector<SiteCalibration> calibrate_sites(
    const PlanInput& input, const PlannerOptions& opts);

}  // namespace autocfd::plan

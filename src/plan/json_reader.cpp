#include "autocfd/plan/json_reader.hpp"

#include <cctype>
#include <cstdlib>

namespace autocfd::plan {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::num_or(std::string_view key, double fallback) const {
  const auto* v = find(key);
  return v != nullptr && v->kind == Kind::Number ? v->number : fallback;
}

long long JsonValue::int_or(std::string_view key, long long fallback) const {
  const auto* v = find(key);
  return v != nullptr && v->kind == Kind::Number
             ? static_cast<long long>(v->number)
             : fallback;
}

std::string JsonValue::str_or(std::string_view key,
                              std::string fallback) const {
  const auto* v = find(key);
  return v != nullptr && v->kind == Kind::String ? v->string
                                                 : std::move(fallback);
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const auto* v = find(key);
  return v != nullptr && v->kind == Kind::Bool ? v->boolean : fallback;
}

const std::vector<JsonValue>& JsonValue::list(std::string_view key) const {
  static const std::vector<JsonValue> kEmpty;
  const auto* v = find(key);
  return v != nullptr && v->kind == Kind::Array ? v->items : kEmpty;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  [[nodiscard]] bool consume(char ch) {
    if (pos < text.size() && text[pos] == ch) {
      ++pos;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return fail("bad literal");
    }
    pos += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos < text.size()) {
      const char ch = text[pos++];
      if (ch == '"') return true;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos >= text.size()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // json_escape only emits \u00XX for control bytes; decode the
          // low byte and ignore anything beyond Latin-1.
          if (pos + 4 > text.size()) return fail("bad \\u escape");
          const std::string hex(text.substr(pos, 4));
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return fail("bad \\u escape");
          out += static_cast<char>(code & 0xff);
          pos += 4;
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char ch = text[pos];
    if (ch == '{') return parse_object(out);
    if (ch == '[') return parse_array(out);
    if (ch == '"') {
      out.kind = JsonValue::Kind::String;
      return parse_string(out.string);
    }
    if (ch == 't') {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = true;
      return literal("true");
    }
    if (ch == 'f') {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = false;
      return literal("false");
    }
    if (ch == 'n') {
      out.kind = JsonValue::Kind::Null;
      return literal("null");
    }
    // Number.
    const char* start = text.data() + pos;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return fail("expected a JSON value");
    out.kind = JsonValue::Kind::Number;
    out.number = value;
    pos += static_cast<std::size_t>(end - start);
    return true;
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(value)) return false;
      out.fields.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    if (!consume('[')) return fail("expected '['");
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  Parser p{text, 0, {}};
  JsonValue root;
  if (!p.parse_value(root)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing content at offset " + std::to_string(p.pos);
    }
    return std::nullopt;
  }
  return root;
}

}  // namespace autocfd::plan

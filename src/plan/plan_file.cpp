#include "autocfd/plan/plan_file.hpp"

#include <fstream>
#include <sstream>

#include "autocfd/obs/json_util.hpp"
#include "autocfd/plan/json_reader.hpp"

namespace autocfd::plan {

using obs::json_escape;
using obs::json_number;

core::PlanOverrides PlanFile::to_overrides(std::string origin) const {
  core::PlanOverrides over;
  over.origin = std::move(origin);
  if (!partition.empty()) {
    over.partition = partition::PartitionSpec::parse(partition);
  }
  sync::CombineStrategy parsed;
  if (sync::parse_combine_strategy(strategy, parsed)) {
    over.strategy = parsed;
  }
  if (!rationale.empty()) over.decisions.push_back(rationale);
  over.decisions.insert(over.decisions.end(), decisions.begin(),
                        decisions.end());
  return over;
}

void PlanFile::write_json(std::ostream& os) const {
  os << "{\n";
  os << "  \"schema_version\": " << schema_version << ",\n";
  os << "  \"planned_from\": \"" << json_escape(planned_from) << "\",\n";
  os << "  \"fault_spec\": \"" << json_escape(fault_spec) << "\",\n";
  os << "  \"nranks\": " << nranks << ",\n";
  os << "  \"partition\": \"" << json_escape(partition) << "\",\n";
  os << "  \"strategy\": \"" << json_escape(strategy) << "\",\n";
  os << "  \"static_partition\": \"" << json_escape(static_partition)
     << "\",\n";
  os << "  \"static_strategy\": \"" << json_escape(static_strategy)
     << "\",\n";
  os << "  \"predicted_s\": " << json_number(predicted_s) << ",\n";
  os << "  \"static_predicted_s\": " << json_number(static_predicted_s)
     << ",\n";
  os << "  \"rationale\": \"" << json_escape(rationale) << "\",\n";
  os << "  \"decisions\": [";
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    os << (i > 0 ? ", " : "") << "\"" << json_escape(decisions[i]) << "\"";
  }
  os << "],\n";
  os << "  \"candidates\": [";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    os << (i > 0 ? ",\n    " : "\n    ");
    os << "{\"partition\": \"" << json_escape(c.partition)
       << "\", \"strategy\": \"" << json_escape(c.strategy)
       << "\", \"feasible\": " << (c.feasible ? "true" : "false")
       << ", \"predicted_s\": " << json_number(c.predicted_s)
       << ", \"compute_s\": " << json_number(c.compute_s)
       << ", \"comm_s\": " << json_number(c.comm_s)
       << ", \"pipeline_s\": " << json_number(c.pipeline_s)
       << ", \"fault_s\": " << json_number(c.fault_s)
       << ", \"syncs_after\": " << c.syncs_after
       << ", \"pipelined_loops\": " << c.pipelined_loops
       << ", \"chosen\": " << (c.chosen ? "true" : "false")
       << ", \"is_static\": " << (c.is_static ? "true" : "false")
       << ", \"note\": \"" << json_escape(c.note) << "\"}";
  }
  os << "\n  ]\n}\n";
}

std::string PlanFile::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::optional<PlanFile> PlanFile::parse(std::string_view text,
                                        std::string* error) {
  const auto root = parse_json(text, error);
  if (!root) {
    if (error != nullptr) *error = "plan file: " + *error;
    return std::nullopt;
  }
  if (root->kind != JsonValue::Kind::Object) {
    if (error != nullptr) *error = "plan file: top level is not an object";
    return std::nullopt;
  }
  PlanFile plan;
  plan.schema_version = static_cast<int>(root->int_or("schema_version", 0));
  if (plan.schema_version != kPlanFileSchemaVersion) {
    if (error != nullptr) {
      *error = "plan file schema_version " +
               std::to_string(plan.schema_version) + " (this build expects " +
               std::to_string(kPlanFileSchemaVersion) +
               "); re-generate the plan with `acfd --plan-from`";
    }
    return std::nullopt;
  }
  plan.planned_from = root->str_or("planned_from", "");
  plan.fault_spec = root->str_or("fault_spec", "");
  plan.nranks = static_cast<int>(root->int_or("nranks", 0));
  plan.partition = root->str_or("partition", "");
  plan.strategy = root->str_or("strategy", "");
  plan.static_partition = root->str_or("static_partition", "");
  plan.static_strategy = root->str_or("static_strategy", "");
  plan.predicted_s = root->num_or("predicted_s", 0.0);
  plan.static_predicted_s = root->num_or("static_predicted_s", 0.0);
  plan.rationale = root->str_or("rationale", "");
  for (const auto& d : root->list("decisions")) {
    if (d.kind == JsonValue::Kind::String) plan.decisions.push_back(d.string);
  }
  for (const auto& c : root->list("candidates")) {
    Candidate cand;
    cand.partition = c.str_or("partition", "");
    cand.strategy = c.str_or("strategy", "");
    cand.feasible = c.bool_or("feasible", true);
    cand.predicted_s = c.num_or("predicted_s", 0.0);
    cand.compute_s = c.num_or("compute_s", 0.0);
    cand.comm_s = c.num_or("comm_s", 0.0);
    cand.pipeline_s = c.num_or("pipeline_s", 0.0);
    cand.fault_s = c.num_or("fault_s", 0.0);
    cand.syncs_after = static_cast<int>(c.int_or("syncs_after", 0));
    cand.pipelined_loops = static_cast<int>(c.int_or("pipelined_loops", 0));
    cand.chosen = c.bool_or("chosen", false);
    cand.is_static = c.bool_or("is_static", false);
    cand.note = c.str_or("note", "");
    plan.candidates.push_back(std::move(cand));
  }
  if (plan.partition.empty() || plan.strategy.empty()) {
    if (error != nullptr) {
      *error = "plan file: missing chosen partition/strategy";
    }
    return std::nullopt;
  }
  return plan;
}

std::optional<PlanFile> PlanFile::load(const std::string& path,
                                       std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot read '" + path + "'";
    return std::nullopt;
  }
  std::stringstream buf;
  buf << file.rdbuf();
  auto plan = parse(buf.str(), error);
  if (!plan && error != nullptr) *error = path + ": " + *error;
  return plan;
}

}  // namespace autocfd::plan

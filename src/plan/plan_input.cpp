#include "autocfd/plan/plan_input.hpp"

#include <fstream>
#include <sstream>

#include "autocfd/plan/json_reader.hpp"

namespace autocfd::plan {

double PlanInput::loop_time(int line) const {
  double total = 0.0;
  for (const auto& l : loops) {
    if (l.line == line) total += l.time_s;
  }
  return total;
}

double PlanInput::site_cost(const std::string& kind) const {
  double total = 0.0;
  for (const auto& s : sites) {
    if (s.kind == kind) total += s.cost_s;
  }
  return total;
}

long long PlanInput::site_messages(const std::string& kind) const {
  long long total = 0;
  for (const auto& s : sites) {
    if (s.kind == kind) total += s.messages;
  }
  return total;
}

std::optional<PlanInput> plan_input_from_json(std::string_view text,
                                              std::string* error) {
  const auto root = parse_json(text, error);
  if (!root) {
    if (error != nullptr) *error = "run report: " + *error;
    return std::nullopt;
  }
  if (root->kind != JsonValue::Kind::Object) {
    if (error != nullptr) *error = "run report: top level is not an object";
    return std::nullopt;
  }

  PlanInput in;
  in.schema_version = static_cast<int>(root->int_or("schema_version", 0));
  if (in.schema_version != prof::kRunReportSchemaVersion) {
    if (error != nullptr) {
      *error = "run report schema_version " +
               std::to_string(in.schema_version) + " (planner expects " +
               std::to_string(prof::kRunReportSchemaVersion) +
               "); re-generate the report with this build's "
               "`acfd --report=json`";
    }
    return std::nullopt;
  }

  in.title = root->str_or("title", "");
  in.partition = root->str_or("partition", "");
  in.nranks = static_cast<int>(root->int_or("nranks", 0));
  in.engine = root->str_or("engine", "");
  in.elapsed_s = root->num_or("elapsed_s", 0.0);
  in.total_flops = root->num_or("total_flops", 0.0);
  if (const auto* compile = root->find("compile")) {
    in.strategy = compile->str_or("strategy", "min");
  }

  if (const auto* profile = root->find("profile")) {
    in.total_compute_s = profile->num_or("total_compute_s", 0.0);
    for (const auto& v : profile->list("rank_compute_s")) {
      if (v.kind == JsonValue::Kind::Number) {
        in.rank_compute_s.push_back(v.number);
      }
    }
    for (const auto& e : profile->list("entries")) {
      PlanInput::Loop loop;
      loop.line = static_cast<int>(e.int_or("line", 0));
      loop.is_loop = e.bool_or("loop", false);
      loop.self_dependent = e.bool_or("self_dependent", false);
      loop.loop_class = e.str_or("class", "");
      loop.count = e.int_or("count", 0);
      loop.time_s = e.num_or("time_s", 0.0);
      loop.share = e.num_or("share", 0.0);
      in.loops.push_back(std::move(loop));
    }
  }

  for (const auto& s : root->list("sites")) {
    PlanInput::Site site;
    site.site = static_cast<int>(s.int_or("site", -1));
    site.kind = s.str_or("kind", "");
    site.label = s.str_or("label", "");
    site.messages = s.int_or("messages", 0);
    site.bytes = s.int_or("bytes", 0);
    site.wait_s = s.num_or("wait_s", 0.0);
    site.cost_s = s.num_or("cost_s", 0.0);
    in.sites.push_back(std::move(site));
  }

  if (const auto* comm = root->find("comm")) {
    for (const auto& n : comm->list("neighbors")) {
      PlanInput::Link link;
      link.src = static_cast<int>(n.int_or("src", -1));
      link.dst = static_cast<int>(n.int_or("dst", -1));
      link.messages = n.int_or("messages", 0);
      link.bytes = n.int_or("bytes", 0);
      link.wait_s = n.num_or("wait_s", 0.0);
      in.links.push_back(link);
    }
  }
  return in;
}

std::optional<PlanInput> load_plan_input(const std::string& path,
                                         std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot read '" + path + "'";
    return std::nullopt;
  }
  std::stringstream buf;
  buf << file.rdbuf();
  auto in = plan_input_from_json(buf.str(), error);
  if (!in && error != nullptr) *error = path + ": " + *error;
  return in;
}

PlanInput plan_input_from_report(const prof::RunReport& report) {
  PlanInput in;
  in.schema_version = prof::kRunReportSchemaVersion;
  in.title = report.title;
  in.partition = report.partition;
  in.nranks = report.nranks;
  in.engine = report.engine;
  in.elapsed_s = report.elapsed_s;
  in.total_flops = report.total_flops;
  in.strategy = sync::combine_strategy_name(report.compile.strategy);

  in.total_compute_s = report.profile.total_seconds;
  in.rank_compute_s = report.profile.rank_seconds;
  for (const auto& e : report.profile.entries) {
    PlanInput::Loop loop;
    loop.line = e.loc.line;
    loop.is_loop = e.is_loop;
    loop.self_dependent = e.self_dependent;
    loop.loop_class = e.loop_class;
    loop.count = e.count;
    loop.time_s = e.time_s;
    loop.share = e.share;
    in.loops.push_back(std::move(loop));
  }
  for (const auto& s : report.sites) {
    PlanInput::Site site;
    site.site = s.site;
    site.kind = s.kind;
    site.label = s.label;
    site.messages = s.messages;
    site.bytes = s.bytes;
    site.wait_s = s.wait_s;
    site.cost_s = s.cost_s;
    in.sites.push_back(std::move(site));
  }
  for (const auto& f : report.comm.neighbors) {
    PlanInput::Link link;
    link.src = f.src;
    link.dst = f.dst;
    link.messages = f.messages;
    link.bytes = f.bytes;
    link.wait_s = f.wait_s;
    in.links.push_back(link);
  }
  return in;
}

}  // namespace autocfd::plan

#include "autocfd/plan/planner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <set>

#include "autocfd/partition/comm_model.hpp"

namespace autocfd::plan {

namespace {

using core::PlanningFacts;
using partition::BlockPartition;
using partition::PartitionSpec;

/// Per-execution communication bill of one candidate configuration,
/// mirroring the runtime's halo_exchange exactly: per combined sync
/// point, per cut dimension, per direction with a neighbor, one
/// sendrecv per rank whose payload packs every member array's slab
/// across the full local allocation (ghosts included) of the other
/// dimensions.
struct CommModel {
  long long messages = 0;        // wire sends per exec, all ranks
  double transfer_total = 0.0;   // sender-paid transfer per exec
  std::vector<double> rank_transfer;
  std::vector<long long> rank_recv_messages;
  /// Messages per exec on each (src, dst) link.
  std::map<std::pair<int, int>, long long> link_messages;

  struct Site {
    int point = -1;
    int dim = -1;
    long long messages = 0;
    double transfer_s = 0.0;
  };
  std::vector<Site> sites;  // one per (combined point, cut dimension)
};

/// Doubles of one array's slab of `width` layers of dimension `dim`,
/// spanning the full local allocation elsewhere (pack_slab semantics).
long long slab_elements(const PlanningFacts& facts, const BlockPartition& part,
                        int rank, const std::string& array, int dim,
                        int width) {
  if (width <= 0) return 0;
  long long elems = width;
  const auto& sg = part.subgrid(rank);
  const auto git = facts.ghosts.find(array);
  for (int d = 0; d < facts.grid.rank(); ++d) {
    if (d == dim) continue;
    long long extent = sg.extent(d);
    if (git != facts.ghosts.end()) {
      const auto du = static_cast<std::size_t>(d);
      extent += git->second.lo[du] + git->second.hi[du];
    }
    elems *= extent;
  }
  return elems;
}

CommModel model_comm(const PlanningFacts& facts, const BlockPartition& part,
                     const mp::MachineConfig& machine, int nranks) {
  CommModel model;
  model.rank_transfer.assign(static_cast<std::size_t>(nranks), 0.0);
  model.rank_recv_messages.assign(static_cast<std::size_t>(nranks), 0);

  for (std::size_t point = 0; point < facts.points.size(); ++point) {
    const auto& halos = facts.points[point];
    for (int dim = 0; dim < facts.grid.rank(); ++dim) {
      const auto du = static_cast<std::size_t>(dim);
      if (facts.spec.cuts[du] <= 1) continue;
      CommModel::Site site;
      site.point = static_cast<int>(point);
      site.dim = dim;
      for (int rank = 0; rank < nranks; ++rank) {
        for (const int dir : {-1, +1}) {
          const auto peer = part.neighbor(rank, dim, dir);
          if (!peer) continue;
          long long bytes = 0;
          for (const auto& h : halos) {
            const int send_w = dir > 0 ? h.lo_width[du] : h.hi_width[du];
            bytes += 8 * slab_elements(facts, part, rank, h.array, dim,
                                       send_w);
          }
          const double t = machine.message_time(bytes);
          site.messages += 1;
          site.transfer_s += t;
          model.rank_transfer[static_cast<std::size_t>(rank)] += t;
          model.rank_recv_messages[static_cast<std::size_t>(*peer)] += 1;
          model.link_messages[{rank, *peer}] += 1;
        }
      }
      model.messages += site.messages;
      model.transfer_total += site.transfer_s;
      model.sites.push_back(site);
    }
  }
  return model;
}

/// Compute/communication/pipeline/fault decomposition of one scored
/// candidate.
struct Score {
  double predicted = 0.0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  double pipeline_s = 0.0;
  double fault_s = 0.0;
};

Score score_candidate(const PlanningFacts& facts, const BlockPartition& part,
                      const CommModel& model, const PlanInput& input,
                      const PlannerOptions& opts, double execs,
                      double c_comm) {
  const int nranks = input.nranks;
  const auto nr = static_cast<std::size_t>(nranks);

  std::vector<double> straggle(nr, 1.0);
  if (opts.faults) {
    for (const auto& s : opts.faults->stragglers) {
      if (s.rank >= 0 && s.rank < nranks) {
        straggle[static_cast<std::size_t>(s.rank)] =
            std::max(1.0, s.factor);
      }
    }
  }
  // Pipelined sweeps serialize: the chain through B blocks costs B x
  // the per-rank loop compute (the straggler's block once at its
  // factor) plus (B-1) hand-offs per execution, each paying one
  // latency per grid line of the owned face (send_chunked).
  Score sc;
  std::set<int> pipelined_lines;
  for (const auto& sd : facts.self_deps) {
    if (sd.pipeline_dims.empty()) continue;
    if (!pipelined_lines.insert(sd.line).second) continue;
    const double w_loop = input.loop_time(sd.line);

    long long chain = 1;
    double handoffs = 0.0;
    const auto& sg0 = part.subgrid(0);
    for (const auto& [dim, dir] : sd.pipeline_dims) {
      const auto du = static_cast<std::size_t>(dim);
      const int cuts = facts.spec.cuts[du];
      chain *= cuts;
      long long lines = 1;
      const int w = dir > 0 ? sd.flow_halo.lo[du] : sd.flow_halo.hi[du];
      for (int d = 0; d < facts.grid.rank(); ++d) {
        if (d == dim) continue;
        lines *= sg0.extent(d);
      }
      const long long bytes =
          8 * slab_elements(facts, part, 0, sd.array, dim, w);
      const double handoff =
          static_cast<double>(lines) * opts.machine.net_latency +
          static_cast<double>(bytes) * opts.machine.net_byte_time;
      handoffs += static_cast<double>(cuts - 1) * handoff;
    }
    // The loop's own per-rank share is already in the base compute
    // below; the chain adds the (B-1) serialized block shares and the
    // boundary hand-offs.
    const double per_rank = w_loop / nranks;
    sc.pipeline_s += per_rank * (static_cast<double>(chain) - 1.0) +
                     execs * handoffs;
  }
  const double nonpipe = std::max(0.0, input.total_compute_s);

  // Per-rank critical path: weighted compute + calibrated halo
  // transfer + fault penalties; the slowest rank bounds the run.
  const double base_share = nonpipe / nranks;
  double worst = -1.0;
  for (int rank = 0; rank < nranks; ++rank) {
    const auto ru = static_cast<std::size_t>(rank);
    const double compute = straggle[ru] * base_share;
    const double comm = c_comm * execs * model.rank_transfer[ru];

    double fault = 0.0;
    if (opts.faults) {
      const auto& fp = *opts.faults;
      // Degraded links: every message arriving at this rank over a
      // matching link inside the window is `delay` late.
      for (const auto& w : fp.windows) {
        double frac = 1.0;
        if (input.elapsed_s > 0.0 && w.t1 > w.t0) {
          frac = std::min(1.0, (w.t1 - w.t0) / input.elapsed_s);
        }
        long long msgs = 0;
        for (const auto& [link, count] : model.link_messages) {
          if (link.second != rank) continue;
          if (w.src >= 0 && w.src != link.first) continue;
          if (w.dst >= 0 && w.dst != link.second) continue;
          msgs += count;
        }
        fault += w.delay * static_cast<double>(msgs) * execs * frac;
      }
      // Jitter: expected extra delay per received message.
      if (fp.jitter_prob > 0.0 && fp.jitter_max > 0.0) {
        fault += fp.jitter_prob * fp.jitter_max * 0.5 * execs *
                 static_cast<double>(model.rank_recv_messages[ru]);
      }
    }

    const double total = compute + comm + fault;
    if (total > worst) {
      worst = total;
      sc.compute_s = compute;
      sc.comm_s = comm;
      sc.fault_s = fault;
    }
  }

  // Collectives involve every rank simultaneously and don't depend on
  // the partition shape; the measured bill sums all ranks' tree costs,
  // so one rank's critical-path share is 1/nranks of it.
  sc.comm_s += input.site_cost("collective") / nranks;
  sc.predicted = sc.compute_s + sc.comm_s + sc.pipeline_s + sc.fault_s;
  return sc;
}

/// Candidate baseline analysis for the measured configuration; also
/// derives the calibration constants (execution count and residual
/// communication scale).
struct Baseline {
  PlanningFacts facts;
  CommModel model;
  double execs = 1.0;
  double c_comm = 1.0;
};

core::Directives directives_for(const PlannerOptions& opts,
                                const PartitionSpec& spec, int nranks) {
  core::Directives dirs = opts.directives;
  dirs.partition = spec;
  dirs.nprocs = nranks;
  return dirs;
}

Baseline calibrate(const PlanInput& input, const PlannerOptions& opts) {
  Baseline base;
  const auto spec0 = PartitionSpec::parse(input.partition);
  sync::CombineStrategy strat0 = sync::CombineStrategy::Min;
  (void)sync::parse_combine_strategy(input.strategy, strat0);
  base.facts = core::analyze_for_plan(
      opts.source, directives_for(opts, spec0, input.nranks), strat0);
  const BlockPartition part(base.facts.grid, base.facts.spec);
  base.model = model_comm(base.facts, part, opts.machine, input.nranks);

  const auto measured_msgs = input.site_messages("halo");
  const double measured_cost = input.site_cost("halo");
  if (base.model.messages > 0 && measured_msgs > 0) {
    base.execs = static_cast<double>(measured_msgs) /
                 static_cast<double>(base.model.messages);
  }
  if (base.model.transfer_total > 0.0 && measured_cost > 0.0) {
    base.c_comm =
        measured_cost / (base.execs * base.model.transfer_total);
  }
  return base;
}

std::string fmt_ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

const sync::CombineStrategy kStrategies[] = {
    sync::CombineStrategy::Min,
    sync::CombineStrategy::Pairwise,
    sync::CombineStrategy::None,
};

int strategy_index(const std::string& name) {
  for (int i = 0; i < 3; ++i) {
    if (name == sync::combine_strategy_name(kStrategies[i])) return i;
  }
  return 3;
}

}  // namespace

PlanFile make_plan(const PlanInput& input, const PlannerOptions& opts) {
  const Baseline base = calibrate(input, opts);

  // The static-heuristic configuration this plan competes against:
  // whatever the directives resolve to for this rank count (explicit
  // partition directive, else the comm-volume-optimal search), with
  // the default Min combining.
  core::Directives static_dirs = opts.directives;
  static_dirs.nprocs = input.nranks;
  const PartitionSpec static_spec = static_dirs.resolve_partition();
  const auto* static_strategy =
      sync::combine_strategy_name(sync::CombineStrategy::Min);

  PlanFile plan;
  plan.planned_from = input.title;
  plan.fault_spec = opts.faults ? opts.faults->str() : "";
  plan.nranks = input.nranks;
  plan.static_partition = static_spec.str();
  plan.static_strategy = static_strategy;

  struct Scored {
    PlanFile::Candidate cand;
    PlanningFacts facts;
    int order = 0;
  };
  std::vector<Scored> scored;

  auto shapes =
      partition::enumerate_partitions(input.nranks, opts.directives.grid.rank());
  bool has_static_shape = false;
  for (const auto& s : shapes) {
    if (s == static_spec) has_static_shape = true;
  }
  if (!has_static_shape) shapes.push_back(static_spec);

  int order = 0;
  for (const auto& spec : shapes) {
    for (const auto strategy : kStrategies) {
      Scored s;
      s.order = order++;
      s.cand.partition = spec.str();
      s.cand.strategy = sync::combine_strategy_name(strategy);
      s.cand.is_static = spec == static_spec &&
                         strategy == sync::CombineStrategy::Min;
      try {
        s.facts = core::analyze_for_plan(
            opts.source, directives_for(opts, spec, input.nranks), strategy);
        const BlockPartition part(s.facts.grid, s.facts.spec);
        const auto model =
            model_comm(s.facts, part, opts.machine, input.nranks);
        const auto sc = score_candidate(s.facts, part, model, input, opts,
                                        base.execs, base.c_comm);
        s.cand.predicted_s = sc.predicted;
        s.cand.compute_s = sc.compute_s;
        s.cand.comm_s = sc.comm_s;
        s.cand.pipeline_s = sc.pipeline_s;
        s.cand.fault_s = sc.fault_s;
        s.cand.syncs_after = s.facts.report.syncs_after;
        s.cand.pipelined_loops = s.facts.report.pipelined_loops;
      } catch (const CompileError& err) {
        s.cand.feasible = false;
        s.cand.predicted_s = std::numeric_limits<double>::max();
        s.cand.note = err.what();
      }
      scored.push_back(std::move(s));
    }
  }

  // Deterministic winner: lowest prediction; ties prefer the static
  // configuration (no churn without evidence), then the smaller
  // partition string, then the stronger combining.
  const auto better = [](const Scored& a, const Scored& b) {
    if (a.cand.feasible != b.cand.feasible) return a.cand.feasible;
    if (a.cand.predicted_s != b.cand.predicted_s) {
      return a.cand.predicted_s < b.cand.predicted_s;
    }
    if (a.cand.is_static != b.cand.is_static) return a.cand.is_static;
    if (a.cand.partition != b.cand.partition) {
      return a.cand.partition < b.cand.partition;
    }
    return strategy_index(a.cand.strategy) < strategy_index(b.cand.strategy);
  };
  std::size_t best = 0;
  for (std::size_t i = 1; i < scored.size(); ++i) {
    if (better(scored[i], scored[best])) best = i;
  }
  if (!scored[best].cand.feasible) {
    throw CompileError("planner: no feasible candidate configuration for " +
                       std::to_string(input.nranks) + " ranks");
  }
  scored[best].cand.chosen = true;

  double static_predicted = 0.0;
  for (const auto& s : scored) {
    if (s.cand.is_static) static_predicted = s.cand.predicted_s;
  }

  const auto& chosen = scored[best];
  plan.partition = chosen.cand.partition;
  plan.strategy = chosen.cand.strategy;
  plan.predicted_s = chosen.cand.predicted_s;
  plan.static_predicted_s = static_predicted;

  if (chosen.cand.is_static) {
    plan.rationale = "kept static " + plan.partition + " (" + plan.strategy +
                     "); no candidate predicted faster on the measured "
                     "profile";
  } else {
    const double ratio = plan.predicted_s > 0.0
                             ? static_predicted / plan.predicted_s
                             : 1.0;
    plan.rationale = "chose " + plan.partition + " (" + plan.strategy +
                     ") over " + plan.static_partition + " (" +
                     plan.static_strategy + "); predicted " +
                     fmt_ratio(ratio) +
                     "x from measured profile and comm matrix";
  }
  if (opts.faults) {
    plan.rationale += "; scored under fault plan '" + plan.fault_spec + "'";
  }

  plan.decisions.push_back(
      "combine strategy " + plan.strategy + ": " +
      std::to_string(chosen.facts.report.syncs_after) + " sync points from " +
      std::to_string(chosen.facts.report.syncs_before) + " regions");
  for (const auto& sd : chosen.facts.self_deps) {
    std::string line = "self-dep loop@" + std::to_string(sd.line) + " '" +
                       sd.array + "': ";
    if (sd.pipeline_dims.empty()) {
      line += "no cut flow dimension; runs without pipelining";
    } else {
      line += "pipelined over";
      for (const auto& [dim, dir] : sd.pipeline_dims) {
        const auto du = static_cast<std::size_t>(dim);
        line += " dim" + std::to_string(dim) + " (" +
                std::to_string(chosen.facts.spec.cuts[du]) + " blocks)";
      }
    }
    plan.decisions.push_back(std::move(line));
  }

  // Candidate table: best first, infeasible last, fully deterministic.
  std::stable_sort(scored.begin(), scored.end(), better);
  plan.candidates.reserve(scored.size());
  for (auto& s : scored) {
    if (!s.cand.feasible) s.cand.predicted_s = 0.0;  // max() is noise
    plan.candidates.push_back(std::move(s.cand));
  }
  return plan;
}

std::vector<SiteCalibration> calibrate_sites(const PlanInput& input,
                                             const PlannerOptions& opts) {
  const Baseline base = calibrate(input, opts);

  std::vector<SiteCalibration> out;
  for (const auto& site : input.sites) {
    if (site.kind != "halo") continue;
    SiteCalibration cal;
    cal.site = site.site;
    cal.label = site.label;
    cal.measured_messages = site.messages;
    cal.measured_cost_s = site.cost_s;
    // The restructurer labels halo sites "halo#<point> dim<d> {...}".
    int point = -1, dim = -1;
    if (std::sscanf(site.label.c_str(), "halo#%d dim%d", &point, &dim) == 2) {
      for (const auto& m : base.model.sites) {
        if (m.point != point || m.dim != dim) continue;
        cal.point = point;
        cal.dim = dim;
        cal.model_messages_per_exec = m.messages;
        if (m.messages > 0 && site.messages > 0) {
          const double execs = static_cast<double>(site.messages) /
                               static_cast<double>(m.messages);
          cal.model_cost_s = execs * m.transfer_s;
        }
      }
    }
    out.push_back(std::move(cal));
  }
  return out;
}

}  // namespace autocfd::plan

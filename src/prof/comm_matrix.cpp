#include "autocfd/prof/comm_matrix.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace autocfd::prof {

namespace {

/// Smears `[t0, t1]` of rank `r` over the timeline buckets,
/// apportioning by overlap, into the chosen component.
void spread(CommTimeline& tl, int r, double t0, double t1,
            double TimelineCell::* component) {
  if (t1 <= t0) return;
  auto& row = tl.ranks[static_cast<std::size_t>(r)];
  if (tl.bucket_s <= 0.0) {
    // Degenerate bucket width (zero-elapsed / zero-iteration run, or a
    // hand-built trace whose final event ends at t=0): everything the
    // run did still lands in the single surviving bucket instead of
    // being silently dropped.
    if (!row.empty()) row.front().*component += t1 - t0;
    return;
  }
  const int last = tl.nbuckets - 1;
  const int b0 = std::clamp(static_cast<int>(t0 / tl.bucket_s), 0, last);
  const int b1 = std::clamp(static_cast<int>(t1 / tl.bucket_s), 0, last);
  for (int b = b0; b <= b1; ++b) {
    const double lo = std::max(t0, static_cast<double>(b) * tl.bucket_s);
    // The last bucket absorbs any FP spill past nbuckets * bucket_s.
    const double hi =
        b == b1 ? t1
                : std::min(t1, static_cast<double>(b + 1) * tl.bucket_s);
    if (hi > lo) row[static_cast<std::size_t>(b)].*component += hi - lo;
  }
}

}  // namespace

CommMatrix build_comm_matrix(const trace::Trace& trace,
                             const sync::TagRegistry* tags, int nbuckets) {
  CommMatrix out;
  out.nranks = trace.nranks;
  out.rank_totals.assign(static_cast<std::size_t>(trace.nranks), {});

  const double elapsed = trace.elapsed();
  // A zero-elapsed trace cannot split its (empty) time span evenly:
  // collapse to one zero-width bucket that absorbs any event durations
  // (see spread) rather than dividing by a degenerate bucket width.
  out.timeline.nbuckets = elapsed > 0.0 ? std::max(nbuckets, 1) : 1;
  out.timeline.bucket_s =
      elapsed > 0.0 ? elapsed / out.timeline.nbuckets : 0.0;
  out.timeline.ranks.assign(
      static_cast<std::size_t>(trace.nranks),
      std::vector<TimelineCell>(
          static_cast<std::size_t>(out.timeline.nbuckets)));

  // (src, dst, tag) -> cell; ordered so the final vectors come out
  // sorted without an extra pass.
  std::map<std::tuple<int, int, int>, CommCell> cells;
  std::map<int, CollectiveCost> collectives;

  for (int r = 0; r < trace.nranks; ++r) {
    auto& totals = out.rank_totals[static_cast<std::size_t>(r)];
    for (const auto& e : trace.per_rank[static_cast<std::size_t>(r)]) {
      switch (e.kind) {
        case mp::EventKind::Compute:
          spread(out.timeline, r, e.t0, e.t1, &TimelineCell::compute);
          break;
        case mp::EventKind::Send: {
          auto& cell = cells[{e.rank, e.peer, e.tag}];
          const long long n = std::max(e.n_messages, 1LL);
          cell.messages += n;
          cell.bytes += e.bytes;
          cell.transfer_s += e.t1 - e.t0;
          totals.messages_sent += n;
          totals.bytes_sent += e.bytes;
          spread(out.timeline, r, e.t0, e.t1, &TimelineCell::transfer);
          break;
        }
        case mp::EventKind::Recv: {
          auto& cell = cells[{e.peer, e.rank, e.tag}];
          const long long n = std::max(e.n_messages, 1LL);
          cell.recv_messages += n;
          cell.recv_bytes += e.bytes;
          cell.wait_s += e.wait;
          cell.recovery_s += e.recovery;
          totals.messages_received += n;
          totals.bytes_received += e.bytes;
          spread(out.timeline, r, e.t0, e.t0 + e.wait, &TimelineCell::wait);
          break;
        }
        case mp::EventKind::AllReduce:
        case mp::EventKind::Barrier: {
          auto& coll = collectives[e.site];
          coll.site = e.site;
          ++coll.entries;
          coll.wait_s += e.wait;
          coll.cost_s += e.t1 - e.arrival;
          spread(out.timeline, r, e.t0, e.t0 + e.wait, &TimelineCell::wait);
          spread(out.timeline, r, e.arrival, e.t1, &TimelineCell::transfer);
          break;
        }
        case mp::EventKind::Retransmit:
          // Receiver-driven: attributed to the (peer -> rank) edge the
          // recovery runs on; the recovered Recv carries the time.
          cells[{e.peer, e.rank, e.tag}].retransmits += 1;
          break;
        case mp::EventKind::Unreceived:
        case mp::EventKind::FaultDelay:
        case mp::EventKind::FaultDrop:
        case mp::EventKind::FaultCorrupt:
        case mp::EventKind::Timeout:
          break;  // zero-width markers carry no traffic of their own
      }
    }
  }

  std::map<std::pair<int, int>, NeighborFlow> neighbors;
  for (auto& [key, cell] : cells) {
    std::tie(cell.src, cell.dst, cell.tag) = key;
    if (tags != nullptr) {
      cell.label = tags->label(cell.tag);
      const sync::CommSite* site = tags->find(cell.tag);
      cell.halo = site != nullptr && site->kind == sync::CommSite::Kind::Halo;
    }
    auto& flow = neighbors[{cell.src, cell.dst}];
    flow.src = cell.src;
    flow.dst = cell.dst;
    flow.messages += cell.messages;
    flow.bytes += cell.bytes;
    if (cell.halo) flow.halo_bytes += cell.bytes;
    flow.wait_s += cell.wait_s;
    out.cells.push_back(cell);
  }
  out.neighbors.reserve(neighbors.size());
  for (auto& [key, flow] : neighbors) out.neighbors.push_back(flow);

  out.collectives.reserve(collectives.size());
  for (auto& [site, coll] : collectives) {
    if (tags != nullptr) coll.label = tags->label(site);
    out.collectives.push_back(coll);
  }
  return out;
}

}  // namespace autocfd::prof

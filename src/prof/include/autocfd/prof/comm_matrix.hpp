// Communication matrix and virtual-time timeline of a traced run.
//
// Derived entirely from the trace event stream: per-(src, dst, tag)
// message/byte/wait accounting resolved through the sync::TagRegistry
// (so every cell names the sync-plan site that produced its traffic),
// per-neighbor rollups with halo-volume subtotals, per-site collective
// costs, and a virtual-time-bucketed timeline of compute vs transfer
// vs wait per rank — the view that makes stragglers and
// link-degradation windows visible at a glance.
//
// Totals reconcile with the cluster's own accounting: the per-rank
// totals equal mp::RankStats messages/bytes sent and received, and
// each rank's timeline row sums to its final virtual clock.
#pragma once

#include <string>
#include <vector>

#include "autocfd/sync/tag_registry.hpp"
#include "autocfd/trace/recorder.hpp"

namespace autocfd::prof {

/// Traffic of one (src, dst, tag) edge.
struct CommCell {
  int src = -1, dst = -1, tag = -1;
  std::string label;     // TagRegistry label of the tag
  bool halo = false;     // tag registered as a Halo site
  long long messages = 0;       // wire messages (sender side)
  long long bytes = 0;          // payload bytes (sender side)
  long long recv_messages = 0;  // receiver side (== sender unless dropped)
  long long recv_bytes = 0;
  double transfer_s = 0.0;  // sender clock spent pushing the messages
  double wait_s = 0.0;      // receiver clock spent idle before arrival
  /// Reliable-delivery recovery on this edge: wire retransmissions
  /// driven by the receiver, and the portion of wait_s they account
  /// for (sub-account of wait_s, reconciling with RankStats).
  long long retransmits = 0;
  double recovery_s = 0.0;
};

/// All tags of one (src, dst) pair folded together.
struct NeighborFlow {
  int src = -1, dst = -1;
  long long messages = 0;
  long long bytes = 0;
  long long halo_bytes = 0;  // subtotal over Halo-site tags
  double wait_s = 0.0;
};

/// One collective site's rendezvous cost summed over entries.
struct CollectiveCost {
  int site = -1;
  std::string label;
  long long entries = 0;  // rank entries (nranks per rendezvous)
  double wait_s = 0.0;    // idle before the slowest rank arrived
  double cost_s = 0.0;    // tree cost after the rendezvous fired
};

struct TimelineCell {
  double compute = 0.0;
  double transfer = 0.0;
  double wait = 0.0;

  [[nodiscard]] double total() const { return compute + transfer + wait; }
};

struct CommTimeline {
  double bucket_s = 0.0;
  int nbuckets = 0;
  /// ranks[r][b]: rank r's time decomposition inside virtual-time
  /// bucket [b * bucket_s, (b + 1) * bucket_s).
  std::vector<std::vector<TimelineCell>> ranks;
};

struct CommMatrix {
  int nranks = 0;
  std::vector<CommCell> cells;          // sorted by (src, dst, tag)
  std::vector<NeighborFlow> neighbors;  // sorted by (src, dst)
  std::vector<CollectiveCost> collectives;  // sorted by site
  CommTimeline timeline;

  /// Per-rank totals; reconcile with mp::RankStats.
  struct RankTotals {
    long long messages_sent = 0, bytes_sent = 0;
    long long messages_received = 0, bytes_received = 0;
  };
  std::vector<RankTotals> rank_totals;
};

/// Builds the matrix from a recorded trace. `tags` (nullable) resolves
/// tag/site labels and halo classification; `nbuckets` sizes the
/// timeline (the run's elapsed time is split evenly).
[[nodiscard]] CommMatrix build_comm_matrix(const trace::Trace& trace,
                                           const sync::TagRegistry* tags,
                                           int nbuckets = 24);

}  // namespace autocfd::prof

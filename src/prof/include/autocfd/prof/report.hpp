// Unified run report: one artifact joining what the pre-compiler
// decided (core::Report, explain-engine provenance) with what those
// decisions cost at runtime (source-attributed profile, communication
// matrix, per-rank time decomposition, per-site communication cost).
// Deterministic JSON for tools/CI, plus text and self-contained HTML
// views for humans. Emitted by `acfd --report[=json|text|html]` and
// consumed by examples/profile_viewer.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "autocfd/core/pipeline.hpp"
#include "autocfd/prof/comm_matrix.hpp"
#include "autocfd/prof/source_profile.hpp"
#include "autocfd/trace/critical_path.hpp"

namespace autocfd::prof {

/// Version stamp of the run-report JSON schema. Bump whenever a field
/// is added, removed, or changes meaning; consumers (the planner)
/// refuse reports from another version instead of misreading them.
/// History: 1 = PR5's unversioned layout; 2 adds schema_version itself
/// and the compile-block "strategy"; 3 adds reliable-delivery recovery
/// accounting (recovery_s on ranks/cells/sites, retransmits on cells,
/// and the top-level "recovery" block).
inline constexpr int kRunReportSchemaVersion = 3;

/// One sync-plan site's end-to-end communication bill, joining the
/// TagRegistry entry with the traffic the trace attributed to it and
/// (for combined sync points) the explain engine's merge rationale.
struct SiteCost {
  int site = -1;
  std::string label;
  std::string kind;  // "halo" | "pipeline" | "collective"
  long long messages = 0;
  long long bytes = 0;
  double wait_s = 0.0;
  double cost_s = 0.0;  // send transfer (p2p) or tree cost (collective)
  /// Recovery wait attributed to this site's edges (sub-account of
  /// wait_s; nonzero only under reliable delivery with faults).
  double recovery_s = 0.0;
  std::string why;      // CombineMerge rationale when one matches
};

/// Reliable-delivery rollup of the run: trace-derived, reconciling
/// exactly with the runtime's RankStats counters (all zero when
/// recovery was off or no fault ever fired).
struct RecoverySummary {
  bool enabled = false;    // protocol was on for this run
  long long retransmits = 0;  // wire retransmissions driven
  long long recovered = 0;    // messages delivered after >= 1 retry
  double recovery_s = 0.0;    // summed recovery wait across ranks
};

struct RunReport {
  std::string title;      // input name ("aerofoil", path stem, ...)
  std::string partition;  // PartitionSpec::str(), e.g. "2x2"
  int nranks = 0;
  std::string engine;     // "tree" | "bytecode"
  double elapsed_s = 0.0;
  /// Sequential baseline under the same machine model; speedup is
  /// seq_elapsed_s / elapsed_s. Absent when the caller skipped it.
  std::optional<double> seq_elapsed_s;
  double total_flops = 0.0;

  core::Report compile;                       // pre-compiler summary
  std::vector<trace::RankBreakdown> ranks;    // compute/transfer/wait
  SourceProfile profile;
  CommMatrix comm;
  std::vector<SiteCost> sites;                // sorted by site id
  RecoverySummary recovery;                   // reliable-delivery rollup

  [[nodiscard]] std::optional<double> speedup() const {
    if (!seq_elapsed_s || elapsed_s <= 0.0) return std::nullopt;
    return *seq_elapsed_s / elapsed_s;
  }
};

struct ReportOptions {
  std::string title;
  std::string engine;
  std::optional<double> seq_elapsed_s;
  int timeline_buckets = 24;
  /// The run executed with the reliable-delivery protocol on; the
  /// report then includes the recovery rollup even if no fault fired.
  bool recovery_enabled = false;
};

/// Joins a finished run: the program (compile report, tags,
/// partition), its SpmdRunResult (must have been run with
/// SpmdRunOptions::profile), the recorded trace, and optionally the
/// provenance log (loop classes + merge rationales).
[[nodiscard]] RunReport build_run_report(const core::ParallelProgram& program,
                                         const codegen::SpmdRunResult& run,
                                         const trace::Trace& trace,
                                         const obs::ProvenanceLog* provenance,
                                         const ReportOptions& options);

enum class ReportFormat { Json, Text, Html };

/// Parses "json" / "text" / "html"; empty selects Text.
[[nodiscard]] std::optional<ReportFormat> parse_report_format(
    std::string_view name);

/// Stable-schema JSON; key order fixed, deterministic for equal runs.
void write_report_json(const RunReport& report, std::ostream& os);
/// Terminal view: summary, hot loops, per-rank decomposition with an
/// ASCII timeline strip, communication matrix and site table.
void write_report_text(const RunReport& report, std::ostream& os);
/// Self-contained single-file HTML (inline CSS, no scripts).
void write_report_html(const RunReport& report, std::ostream& os);

void write_report(const RunReport& report, ReportFormat format,
                  std::ostream& os);

}  // namespace autocfd::prof

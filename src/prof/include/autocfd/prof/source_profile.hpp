// Source-attributed runtime profile (the HPCToolkit-style flat view).
//
// codegen::run_spmd collects one raw interp::StmtProfile per rank —
// virtual compute flops charged to attribution units (field-loop nests
// and standalone assignments). This module merges those into a
// source-keyed profile: one entry per source location with flops,
// entry counts and virtual seconds summed over ranks plus per-rank
// min/max and an imbalance factor, and joins the pre-compiler's
// explain engine so every hot loop carries its A/R/C/O taxonomy class
// and self-dependence verdict. Entries are sorted by source position,
// so every derived view (JSON, text, metrics) is deterministic.
#pragma once

#include <string>
#include <vector>

#include "autocfd/interp/stmt_profile.hpp"
#include "autocfd/obs/metrics.hpp"
#include "autocfd/obs/provenance.hpp"

namespace autocfd::prof {

/// One source location's merged cost across all ranks.
struct ProfileEntry {
  SourceLoc loc;
  int stmt_id = 0;       // smallest AST id merged into this entry
  bool is_loop = false;  // DO nest (vs a standalone assignment)

  /// A/R/C/O classes of the loop, one letter per status array touched,
  /// distinct and sorted ("C", "A,R", ...). Empty until
  /// attach_provenance and for non-loop entries.
  std::string loop_class;
  bool self_dependent = false;

  long long count = 0;   // unit entries summed over ranks
  double flops = 0.0;    // summed over ranks
  double time_s = 0.0;   // virtual compute seconds summed over ranks
  double min_rank_s = 0.0;  // cheapest rank (0 when some rank skips it)
  double max_rank_s = 0.0;
  int max_rank = -1;     // rank paying max_rank_s (lowest such rank)
  double share = 0.0;    // time_s / profile total

  /// Slowest rank vs the mean: 1.0 is perfectly balanced; grows as
  /// one rank dominates. 0 for zero-cost entries.
  [[nodiscard]] double imbalance(int nranks) const;
};

struct SourceProfile {
  int nranks = 0;
  /// Sorted by (line, column, stmt_id); one entry per source location.
  std::vector<ProfileEntry> entries;
  /// Per-rank attributed compute seconds / flops. Reconciles with
  /// mp::RankStats::compute_time (same flops, same cost factors).
  std::vector<double> rank_seconds;
  std::vector<double> rank_flops;
  double total_seconds = 0.0;
  double total_flops = 0.0;

  /// The n hottest entries by attributed time (ties broken by source
  /// position). Pointers into `entries`.
  [[nodiscard]] std::vector<const ProfileEntry*> hottest(
      std::size_t n) const;
};

/// Merges the per-rank raw profiles (from SpmdRunResult::profiles).
/// Statements sharing a source location — e.g. the flow and anti
/// halves of a mirror-image split — fold into one entry.
[[nodiscard]] SourceProfile build_source_profile(
    const std::vector<interp::StmtProfile>& ranks);

/// Joins the explain engine: LoopClassification entries stamp the
/// A/R/C/O classes, SelfDependence entries the self-dep flag, matched
/// by source line.
void attach_provenance(SourceProfile& profile, const obs::ProvenanceLog& log);

/// Exports the profile as `prof.*` metrics: totals, per-rank compute
/// seconds, per-class time, and the hottest loop.
void profile_to_metrics(const SourceProfile& profile,
                        obs::MetricsRegistry& reg);

}  // namespace autocfd::prof

#include "autocfd/prof/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "autocfd/obs/json_util.hpp"

namespace autocfd::prof {

namespace {

using obs::json_escape;
using obs::json_number;

const char* site_kind_name(sync::CommSite::Kind kind) {
  switch (kind) {
    case sync::CommSite::Kind::Halo: return "halo";
    case sync::CommSite::Kind::Pipeline: return "pipeline";
    case sync::CommSite::Kind::Collective: return "collective";
  }
  return "?";
}

}  // namespace

RunReport build_run_report(const core::ParallelProgram& program,
                           const codegen::SpmdRunResult& run,
                           const trace::Trace& trace,
                           const obs::ProvenanceLog* provenance,
                           const ReportOptions& options) {
  RunReport report;
  report.title = options.title;
  report.partition = program.meta.spec.str();
  report.nranks = trace.nranks;
  report.engine = options.engine;
  report.elapsed_s = run.elapsed;
  report.seq_elapsed_s = options.seq_elapsed_s;
  report.total_flops = run.total_flops;
  report.compile = program.report;
  report.ranks = trace::rank_breakdown(trace);

  report.profile = build_source_profile(run.profiles);
  if (provenance != nullptr) attach_provenance(report.profile, *provenance);

  report.comm =
      build_comm_matrix(trace, &program.meta.tags, options.timeline_buckets);

  // Merge rationales, in emission order: the i-th CombineMerge entry
  // explains the combined sync point with halo ordinal i.
  std::vector<const obs::ProvenanceEntry*> merges;
  if (provenance != nullptr) {
    merges = provenance->of_kind(obs::DecisionKind::CombineMerge);
  }

  const auto& sites = program.meta.tags.sites();
  report.sites.reserve(sites.size());
  for (std::size_t id = 0; id < sites.size(); ++id) {
    const auto& site = sites[id];
    SiteCost cost;
    cost.site = static_cast<int>(id);
    cost.label = site.label;
    cost.kind = site_kind_name(site.kind);
    for (const auto& cell : report.comm.cells) {
      if (cell.tag != cost.site) continue;
      cost.messages += cell.messages;
      cost.bytes += cell.bytes;
      cost.wait_s += cell.wait_s;
      cost.cost_s += cell.transfer_s;
      cost.recovery_s += cell.recovery_s;
    }
    for (const auto& coll : report.comm.collectives) {
      if (coll.site != cost.site) continue;
      cost.messages += coll.entries;
      cost.wait_s += coll.wait_s;
      cost.cost_s += coll.cost_s;
    }
    if (site.kind == sync::CommSite::Kind::Halo && site.ordinal >= 0 &&
        static_cast<std::size_t>(site.ordinal) < merges.size()) {
      cost.why = merges[static_cast<std::size_t>(site.ordinal)]->rationale;
    }
    report.sites.push_back(std::move(cost));
  }

  // Reliable-delivery rollup, derived from the same trace the rest of
  // the report uses so it reconciles exactly with the cells and ranks.
  report.recovery.enabled = options.recovery_enabled;
  for (const auto& b : report.ranks) report.recovery.recovery_s += b.recovery;
  for (int r = 0; r < trace.nranks; ++r) {
    for (const auto& e : trace.per_rank[static_cast<std::size_t>(r)]) {
      if (e.kind == mp::EventKind::Retransmit) ++report.recovery.retransmits;
      if (e.kind == mp::EventKind::Recv && e.attempts > 1) {
        ++report.recovery.recovered;
      }
    }
  }
  return report;
}

std::optional<ReportFormat> parse_report_format(std::string_view name) {
  if (name.empty() || name == "text") return ReportFormat::Text;
  if (name == "json") return ReportFormat::Json;
  if (name == "html") return ReportFormat::Html;
  return std::nullopt;
}

// --------------------------------------------------------------- JSON

void write_report_json(const RunReport& report, std::ostream& os) {
  os << "{\n";
  os << "  \"schema_version\": " << kRunReportSchemaVersion << ",\n";
  os << "  \"title\": \"" << json_escape(report.title) << "\",\n";
  os << "  \"partition\": \"" << json_escape(report.partition) << "\",\n";
  os << "  \"nranks\": " << report.nranks << ",\n";
  os << "  \"engine\": \"" << json_escape(report.engine) << "\",\n";
  os << "  \"elapsed_s\": " << json_number(report.elapsed_s) << ",\n";
  if (report.seq_elapsed_s) {
    os << "  \"seq_elapsed_s\": " << json_number(*report.seq_elapsed_s)
       << ",\n";
    os << "  \"speedup\": " << json_number(report.speedup().value_or(0.0))
       << ",\n";
  }
  os << "  \"total_flops\": " << json_number(report.total_flops) << ",\n";

  const auto& c = report.compile;
  os << "  \"compile\": {\"field_loops\": " << c.field_loops
     << ", \"dependence_pairs\": " << c.dependence_pairs
     << ", \"self_dependent_loops\": " << c.self_dependent_loops
     << ", \"mirror_image_loops\": " << c.mirror_image_loops
     << ", \"pipelined_loops\": " << c.pipelined_loops
     << ", \"syncs_before\": " << c.syncs_before
     << ", \"syncs_after\": " << c.syncs_after
     << ", \"optimization_percent\": " << json_number(c.optimization_percent)
     << ", \"strategy\": \"" << sync::combine_strategy_name(c.strategy)
     << "\"},\n";

  os << "  \"ranks\": [";
  for (std::size_t r = 0; r < report.ranks.size(); ++r) {
    const auto& b = report.ranks[r];
    os << (r > 0 ? ",\n            " : "\n            ");
    os << "{\"rank\": " << r << ", \"compute_s\": " << json_number(b.compute)
       << ", \"transfer_s\": " << json_number(b.transfer)
       << ", \"wait_s\": " << json_number(b.wait)
       << ", \"recovery_s\": " << json_number(b.recovery)
       << ", \"total_s\": " << json_number(b.total()) << "}";
  }
  os << "],\n";

  const auto& p = report.profile;
  os << "  \"profile\": {\n";
  os << "    \"total_flops\": " << json_number(p.total_flops) << ",\n";
  os << "    \"total_compute_s\": " << json_number(p.total_seconds) << ",\n";
  os << "    \"rank_compute_s\": [";
  for (std::size_t r = 0; r < p.rank_seconds.size(); ++r) {
    os << (r > 0 ? ", " : "") << json_number(p.rank_seconds[r]);
  }
  os << "],\n    \"rank_flops\": [";
  for (std::size_t r = 0; r < p.rank_flops.size(); ++r) {
    os << (r > 0 ? ", " : "") << json_number(p.rank_flops[r]);
  }
  os << "],\n    \"entries\": [";
  for (std::size_t i = 0; i < p.entries.size(); ++i) {
    const auto& e = p.entries[i];
    os << (i > 0 ? ",\n      " : "\n      ");
    os << "{\"line\": " << e.loc.line << ", \"column\": " << e.loc.column
       << ", \"loop\": " << (e.is_loop ? "true" : "false")
       << ", \"class\": \"" << json_escape(e.loop_class) << "\""
       << ", \"self_dependent\": " << (e.self_dependent ? "true" : "false")
       << ", \"count\": " << e.count
       << ", \"flops\": " << json_number(e.flops)
       << ", \"time_s\": " << json_number(e.time_s)
       << ", \"share\": " << json_number(e.share)
       << ", \"min_rank_s\": " << json_number(e.min_rank_s)
       << ", \"max_rank_s\": " << json_number(e.max_rank_s)
       << ", \"max_rank\": " << e.max_rank
       << ", \"imbalance\": " << json_number(e.imbalance(p.nranks)) << "}";
  }
  os << "]\n  },\n";

  const auto& m = report.comm;
  os << "  \"comm\": {\n    \"cells\": [";
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    const auto& cell = m.cells[i];
    os << (i > 0 ? ",\n      " : "\n      ");
    os << "{\"src\": " << cell.src << ", \"dst\": " << cell.dst
       << ", \"tag\": " << cell.tag << ", \"label\": \""
       << json_escape(cell.label) << "\", \"halo\": "
       << (cell.halo ? "true" : "false")
       << ", \"messages\": " << cell.messages << ", \"bytes\": " << cell.bytes
       << ", \"recv_messages\": " << cell.recv_messages
       << ", \"recv_bytes\": " << cell.recv_bytes
       << ", \"transfer_s\": " << json_number(cell.transfer_s)
       << ", \"wait_s\": " << json_number(cell.wait_s)
       << ", \"retransmits\": " << cell.retransmits
       << ", \"recovery_s\": " << json_number(cell.recovery_s) << "}";
  }
  os << "],\n    \"neighbors\": [";
  for (std::size_t i = 0; i < m.neighbors.size(); ++i) {
    const auto& f = m.neighbors[i];
    os << (i > 0 ? ",\n      " : "\n      ");
    os << "{\"src\": " << f.src << ", \"dst\": " << f.dst
       << ", \"messages\": " << f.messages << ", \"bytes\": " << f.bytes
       << ", \"halo_bytes\": " << f.halo_bytes
       << ", \"wait_s\": " << json_number(f.wait_s) << "}";
  }
  os << "],\n    \"collectives\": [";
  for (std::size_t i = 0; i < m.collectives.size(); ++i) {
    const auto& coll = m.collectives[i];
    os << (i > 0 ? ",\n      " : "\n      ");
    os << "{\"site\": " << coll.site << ", \"label\": \""
       << json_escape(coll.label) << "\", \"entries\": " << coll.entries
       << ", \"wait_s\": " << json_number(coll.wait_s)
       << ", \"cost_s\": " << json_number(coll.cost_s) << "}";
  }
  os << "],\n    \"rank_totals\": [";
  for (std::size_t r = 0; r < m.rank_totals.size(); ++r) {
    const auto& t = m.rank_totals[r];
    os << (r > 0 ? ",\n      " : "\n      ");
    os << "{\"rank\": " << r << ", \"messages_sent\": " << t.messages_sent
       << ", \"bytes_sent\": " << t.bytes_sent
       << ", \"messages_received\": " << t.messages_received
       << ", \"bytes_received\": " << t.bytes_received << "}";
  }
  os << "],\n    \"timeline\": {\"bucket_s\": "
     << json_number(m.timeline.bucket_s)
     << ", \"nbuckets\": " << m.timeline.nbuckets << ", \"ranks\": [";
  for (std::size_t r = 0; r < m.timeline.ranks.size(); ++r) {
    os << (r > 0 ? ",\n      " : "\n      ") << "[";
    const auto& row = m.timeline.ranks[r];
    for (std::size_t b = 0; b < row.size(); ++b) {
      os << (b > 0 ? ", " : "") << "{\"compute\": "
         << json_number(row[b].compute)
         << ", \"transfer\": " << json_number(row[b].transfer)
         << ", \"wait\": " << json_number(row[b].wait) << "}";
    }
    os << "]";
  }
  os << "]}\n  },\n";

  const auto& rec = report.recovery;
  os << "  \"recovery\": {\"enabled\": " << (rec.enabled ? "true" : "false")
     << ", \"retransmits\": " << rec.retransmits
     << ", \"recovered\": " << rec.recovered
     << ", \"recovery_s\": " << json_number(rec.recovery_s) << "},\n";

  os << "  \"sites\": [";
  for (std::size_t i = 0; i < report.sites.size(); ++i) {
    const auto& s = report.sites[i];
    os << (i > 0 ? ",\n    " : "\n    ");
    os << "{\"site\": " << s.site << ", \"label\": \"" << json_escape(s.label)
       << "\", \"kind\": \"" << s.kind << "\", \"messages\": " << s.messages
       << ", \"bytes\": " << s.bytes
       << ", \"wait_s\": " << json_number(s.wait_s)
       << ", \"cost_s\": " << json_number(s.cost_s)
       << ", \"recovery_s\": " << json_number(s.recovery_s) << ", \"why\": \""
       << json_escape(s.why) << "\"}";
  }
  os << "]\n}\n";
}

// --------------------------------------------------------------- text

namespace {

std::string fmt_seconds(double s) {
  std::ostringstream os;
  if (s >= 1.0) {
    os.precision(3);
    os << std::fixed << s << " s";
  } else if (s >= 1e-3) {
    os.precision(3);
    os << std::fixed << s * 1e3 << " ms";
  } else {
    os.precision(3);
    os << std::fixed << s * 1e6 << " us";
  }
  return os.str();
}

std::string fmt_ratio(double v) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << v;
  return os.str();
}

std::string fmt_percent(double frac) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << frac * 100.0 << "%";
  return os.str();
}

/// One character per timeline bucket: dominant component of the cell.
char bucket_char(const TimelineCell& cell) {
  if (cell.total() <= 0.0) return '.';
  if (cell.compute >= cell.transfer && cell.compute >= cell.wait) return '#';
  if (cell.wait >= cell.transfer) return 'w';
  return '>';
}

}  // namespace

void write_report_text(const RunReport& report, std::ostream& os) {
  os << "=== run report: " << report.title << " ===\n";
  os << "partition " << report.partition << " (" << report.nranks
     << " ranks), engine " << report.engine << "\n";
  os << "elapsed " << fmt_seconds(report.elapsed_s) << ", total flops "
     << report.total_flops;
  if (const auto sp = report.speedup()) {
    os << ", speedup " << fmt_ratio(*sp) << "x over sequential ("
       << fmt_seconds(*report.seq_elapsed_s) << ")";
  }
  os << "\n";
  const auto& c = report.compile;
  os << "compile: " << c.field_loops << " field loops, "
     << c.dependence_pairs << " dependence pairs, "
     << c.self_dependent_loops << " self-dependent ("
     << c.mirror_image_loops << " mirror-image, " << c.pipelined_loops
     << " pipelined), syncs " << c.syncs_before << " -> " << c.syncs_after
     << " (" << fmt_percent(c.optimization_percent / 100.0)
     << " optimized away)\n";
  if (report.recovery.enabled) {
    os << "recovery: " << report.recovery.retransmits << " retransmits, "
       << report.recovery.recovered << " messages recovered, "
       << fmt_seconds(report.recovery.recovery_s) << " recovery wait\n";
  }

  os << "\n--- hot spots (attributed compute over all ranks) ---\n";
  const auto hot = report.profile.hottest(10);
  for (const auto* e : hot) {
    os << "  line " << e->loc.line << (e->is_loop ? " loop " : " stmt ");
    if (!e->loop_class.empty()) os << "[" << e->loop_class << "] ";
    if (e->self_dependent) os << "(self-dep) ";
    os << fmt_seconds(e->time_s) << "  " << fmt_percent(e->share)
       << "  x" << e->count << "  imbalance "
       << fmt_ratio(e->imbalance(report.profile.nranks)) << "\n";
  }
  if (hot.empty()) os << "  (no attributed units; profiling off?)\n";

  os << "\n--- per-rank time (compute / transfer / wait) ---\n";
  for (std::size_t r = 0; r < report.ranks.size(); ++r) {
    const auto& b = report.ranks[r];
    os << "  rank " << r << ": " << fmt_seconds(b.compute) << " / "
       << fmt_seconds(b.transfer) << " / " << fmt_seconds(b.wait)
       << "  = " << fmt_seconds(b.total());
    if (b.recovery > 0.0) {
      os << "  (recovery " << fmt_seconds(b.recovery) << ")";
    }
    if (r < report.comm.timeline.ranks.size()) {
      os << "  |";
      for (const auto& cell : report.comm.timeline.ranks[r]) {
        os << bucket_char(cell);
      }
      os << "|";
    }
    os << "\n";
  }
  os << "  timeline legend: '#' compute-dominant, '>' transfer, 'w' wait,"
        " '.' idle\n";

  os << "\n--- communication matrix (src -> dst) ---\n";
  for (const auto& f : report.comm.neighbors) {
    os << "  " << f.src << " -> " << f.dst << ": " << f.messages
       << " msgs, " << f.bytes << " bytes (" << f.halo_bytes
       << " halo), wait " << fmt_seconds(f.wait_s) << "\n";
  }
  if (report.comm.neighbors.empty()) os << "  (no point-to-point traffic)\n";

  os << "\n--- sync-plan sites ---\n";
  for (const auto& s : report.sites) {
    os << "  [" << s.site << "] " << s.kind << " " << s.label << ": "
       << s.messages << " msgs, " << s.bytes << " bytes, wait "
       << fmt_seconds(s.wait_s) << ", cost " << fmt_seconds(s.cost_s);
    if (!s.why.empty()) os << "  (" << s.why << ")";
    os << "\n";
  }
  if (report.sites.empty()) os << "  (no registered sites)\n";
}

// --------------------------------------------------------------- html

namespace {

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += ch; break;
    }
  }
  return out;
}

/// A horizontal bar scaled to `frac` of the column, as inline style.
std::string bar(double frac, const char* color) {
  std::ostringstream os;
  os.precision(1);
  os << "<div class=\"bar\" style=\"width:" << std::fixed
     << std::max(0.0, std::min(frac, 1.0)) * 100.0 << "%;background:"
     << color << "\"></div>";
  return os.str();
}

}  // namespace

void write_report_html(const RunReport& report, std::ostream& os) {
  os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
     << html_escape(report.title) << " — run report</title>\n<style>\n"
        "body{font-family:sans-serif;margin:2em;max-width:70em}\n"
        "table{border-collapse:collapse;margin:1em 0}\n"
        "td,th{border:1px solid #ccc;padding:0.3em 0.6em;"
        "text-align:right}\n"
        "th{background:#f0f0f0}\ntd.l,th.l{text-align:left}\n"
        ".bar{height:0.8em;min-width:1px;display:inline-block}\n"
        ".cell{width:10em}\n</style></head><body>\n";
  os << "<h1>Run report: " << html_escape(report.title) << "</h1>\n";
  os << "<p>partition <b>" << html_escape(report.partition) << "</b> ("
     << report.nranks << " ranks), engine <b>" << html_escape(report.engine)
     << "</b>, elapsed <b>" << fmt_seconds(report.elapsed_s) << "</b>";
  if (const auto sp = report.speedup()) {
    os << ", speedup <b>" << fmt_ratio(*sp) << "x</b>";
  }
  os << "</p>\n";
  const auto& c = report.compile;
  os << "<p>compile: " << c.field_loops << " field loops, "
     << c.dependence_pairs << " dependence pairs, " << c.self_dependent_loops
     << " self-dependent, syncs " << c.syncs_before << " &rarr; "
     << c.syncs_after << "</p>\n";
  if (report.recovery.enabled) {
    os << "<p>recovery: <b>" << report.recovery.retransmits
       << "</b> retransmits, <b>" << report.recovery.recovered
       << "</b> messages recovered, <b>"
       << fmt_seconds(report.recovery.recovery_s) << "</b> recovery wait</p>\n";
  }

  os << "<h2>Hot spots</h2>\n<table><tr><th class=\"l\">source</th>"
        "<th class=\"l\">class</th><th>time</th><th>share</th>"
        "<th class=\"l cell\"></th><th>imbalance</th></tr>\n";
  for (const auto* e : report.profile.hottest(10)) {
    os << "<tr><td class=\"l\">line " << e->loc.line
       << (e->is_loop ? " (loop)" : " (stmt)") << "</td><td class=\"l\">"
       << html_escape(e->loop_class)
       << (e->self_dependent ? " self-dep" : "") << "</td><td>"
       << fmt_seconds(e->time_s) << "</td><td>" << fmt_percent(e->share)
       << "</td><td class=\"l cell\">" << bar(e->share, "#4a90d9")
       << "</td><td>"
       << fmt_ratio(e->imbalance(report.profile.nranks)) << "</td></tr>\n";
  }
  os << "</table>\n";

  os << "<h2>Per-rank time</h2>\n<table><tr><th>rank</th><th>compute</th>"
        "<th>transfer</th><th>wait</th><th>total</th>"
        "<th class=\"l cell\">breakdown</th></tr>\n";
  double max_total = 0.0;
  for (const auto& b : report.ranks) max_total = std::max(max_total, b.total());
  for (std::size_t r = 0; r < report.ranks.size(); ++r) {
    const auto& b = report.ranks[r];
    const double scale = max_total > 0.0 ? 1.0 / max_total : 0.0;
    os << "<tr><td>" << r << "</td><td>" << fmt_seconds(b.compute)
       << "</td><td>" << fmt_seconds(b.transfer) << "</td><td>"
       << fmt_seconds(b.wait) << "</td><td>" << fmt_seconds(b.total())
       << "</td><td class=\"l cell\">" << bar(b.compute * scale, "#4a90d9")
       << bar(b.transfer * scale, "#e8a33d") << bar(b.wait * scale, "#d05050")
       << "</td></tr>\n";
  }
  os << "</table>\n";

  os << "<h2>Communication</h2>\n<table><tr><th>src</th><th>dst</th>"
        "<th>messages</th><th>bytes</th><th>halo bytes</th><th>wait</th>"
        "</tr>\n";
  for (const auto& f : report.comm.neighbors) {
    os << "<tr><td>" << f.src << "</td><td>" << f.dst << "</td><td>"
       << f.messages << "</td><td>" << f.bytes << "</td><td>"
       << f.halo_bytes << "</td><td>" << fmt_seconds(f.wait_s)
       << "</td></tr>\n";
  }
  os << "</table>\n";

  os << "<h2>Sync-plan sites</h2>\n<table><tr><th>id</th>"
        "<th class=\"l\">kind</th><th class=\"l\">label</th>"
        "<th>messages</th><th>bytes</th><th>wait</th><th>cost</th>"
        "<th class=\"l\">why</th></tr>\n";
  for (const auto& s : report.sites) {
    os << "<tr><td>" << s.site << "</td><td class=\"l\">" << s.kind
       << "</td><td class=\"l\">" << html_escape(s.label) << "</td><td>"
       << s.messages << "</td><td>" << s.bytes << "</td><td>"
       << fmt_seconds(s.wait_s) << "</td><td>" << fmt_seconds(s.cost_s)
       << "</td><td class=\"l\">" << html_escape(s.why) << "</td></tr>\n";
  }
  os << "</table>\n</body></html>\n";
}

void write_report(const RunReport& report, ReportFormat format,
                  std::ostream& os) {
  switch (format) {
    case ReportFormat::Json: write_report_json(report, os); break;
    case ReportFormat::Text: write_report_text(report, os); break;
    case ReportFormat::Html: write_report_html(report, os); break;
  }
}

}  // namespace autocfd::prof

#include "autocfd/prof/source_profile.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace autocfd::prof {

double ProfileEntry::imbalance(int nranks) const {
  if (time_s <= 0.0 || nranks <= 0) return 0.0;
  const double mean = time_s / static_cast<double>(nranks);
  return mean > 0.0 ? max_rank_s / mean : 0.0;
}

SourceProfile build_source_profile(
    const std::vector<interp::StmtProfile>& ranks) {
  SourceProfile out;
  out.nranks = static_cast<int>(ranks.size());
  out.rank_seconds.assign(ranks.size(), 0.0);
  out.rank_flops.assign(ranks.size(), 0.0);

  struct Acc {
    ProfileEntry entry;
    std::vector<double> per_rank_s;
  };
  // Ordered by source position: the final entry vector inherits the
  // deterministic order directly.
  std::map<std::pair<std::uint32_t, std::uint32_t>, Acc> merged;

  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const auto& prof = ranks[r];
    // units is hashed by statement address; fix the accumulation order
    // (AST ids are assigned deterministically) so the floating-point
    // sums below come out bit-identical on every run.
    std::vector<std::pair<const fortran::Stmt*, interp::StmtCost>> units(
        prof.units.begin(), prof.units.end());
    std::sort(units.begin(), units.end(),
              [](const auto& a, const auto& b) {
                return a.first->id < b.first->id;
              });
    for (const auto& [stmt, cost] : units) {
      const auto key = std::make_pair(stmt->loc.line, stmt->loc.column);
      auto [it, fresh] = merged.try_emplace(key);
      Acc& acc = it->second;
      if (fresh) {
        acc.entry.loc = stmt->loc;
        acc.entry.stmt_id = stmt->id;
        acc.entry.is_loop = stmt->kind == fortran::StmtKind::Do;
        acc.per_rank_s.assign(ranks.size(), 0.0);
      } else {
        acc.entry.stmt_id = std::min(acc.entry.stmt_id, stmt->id);
        acc.entry.is_loop =
            acc.entry.is_loop || stmt->kind == fortran::StmtKind::Do;
      }
      const double seconds = cost.flops * prof.seconds_per_flop;
      acc.entry.count += cost.count;
      acc.entry.flops += cost.flops;
      acc.entry.time_s += seconds;
      acc.per_rank_s[r] += seconds;
      out.rank_seconds[r] += seconds;
      out.rank_flops[r] += cost.flops;
    }
  }

  for (auto& [key, acc] : merged) {
    auto& e = acc.entry;
    e.min_rank_s = 0.0;
    e.max_rank_s = 0.0;
    e.max_rank = -1;
    for (std::size_t r = 0; r < acc.per_rank_s.size(); ++r) {
      const double s = acc.per_rank_s[r];
      if (e.max_rank < 0 || s > e.max_rank_s) {
        e.max_rank_s = s;
        e.max_rank = static_cast<int>(r);
      }
      if (r == 0 || s < e.min_rank_s) e.min_rank_s = s;
    }
    out.total_seconds += e.time_s;
    out.total_flops += e.flops;
    out.entries.push_back(std::move(e));
  }
  for (auto& e : out.entries) {
    e.share = out.total_seconds > 0.0 ? e.time_s / out.total_seconds : 0.0;
  }
  return out;
}

std::vector<const ProfileEntry*> SourceProfile::hottest(std::size_t n) const {
  std::vector<const ProfileEntry*> ptrs;
  ptrs.reserve(entries.size());
  for (const auto& e : entries) ptrs.push_back(&e);
  std::stable_sort(ptrs.begin(), ptrs.end(),
                   [](const ProfileEntry* a, const ProfileEntry* b) {
                     return a->time_s > b->time_s;
                   });
  if (ptrs.size() > n) ptrs.resize(n);
  return ptrs;
}

void attach_provenance(SourceProfile& profile, const obs::ProvenanceLog& log) {
  // Collect per source line: the set of class letters and whether any
  // self-dependence (of any kind but "none") was recorded.
  std::map<std::uint32_t, std::set<std::string>> classes;
  std::map<std::uint32_t, bool> self_dep;
  for (const auto& e : log.entries()) {
    if (e.kind == obs::DecisionKind::LoopClassification) {
      classes[e.loc.line].insert(e.decision);
    } else if (e.kind == obs::DecisionKind::SelfDependence) {
      if (e.decision != "none") self_dep[e.loc.line] = true;
    }
  }
  for (auto& entry : profile.entries) {
    if (!entry.is_loop) continue;
    if (const auto it = classes.find(entry.loc.line); it != classes.end()) {
      std::string joined;
      for (const auto& c : it->second) {
        if (!joined.empty()) joined += ',';
        joined += c;
      }
      entry.loop_class = std::move(joined);
    }
    if (const auto it = self_dep.find(entry.loc.line); it != self_dep.end()) {
      entry.self_dependent = it->second;
    }
  }
}

void profile_to_metrics(const SourceProfile& profile,
                        obs::MetricsRegistry& reg) {
  long long loops = 0;
  std::map<std::string, double> class_time;
  for (const auto& e : profile.entries) {
    if (e.is_loop) ++loops;
    const std::string cls = !e.loop_class.empty()
                                ? e.loop_class
                                : (e.is_loop ? "unclassified" : "stmt");
    class_time[cls] += e.time_s;
  }
  reg.add("prof.units", static_cast<std::int64_t>(profile.entries.size()));
  reg.add("prof.loops", loops);
  reg.set_gauge("prof.compute_s", profile.total_seconds);
  reg.set_gauge("prof.flops", profile.total_flops);
  for (int r = 0; r < profile.nranks; ++r) {
    reg.set_gauge("prof.rank." + std::to_string(r) + ".compute_s",
                  profile.rank_seconds[static_cast<std::size_t>(r)]);
  }
  for (const auto& [cls, t] : class_time) {
    reg.set_gauge("prof.class." + cls + ".time_s", t);
  }
  const auto hot = profile.hottest(1);
  if (!hot.empty()) {
    reg.set_gauge("prof.hot.line", static_cast<double>(hot[0]->loc.line));
    reg.set_gauge("prof.hot.time_s", hot[0]->time_s);
    reg.set_gauge("prof.hot.share", hot[0]->share);
  }
}

}  // namespace autocfd::prof

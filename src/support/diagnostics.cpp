#include "autocfd/support/diagnostics.hpp"

#include <sstream>

namespace autocfd {

std::string SourceLoc::str() const {
  if (!valid()) return "<unknown>";
  std::ostringstream os;
  os << line << ':' << column;
  return os.str();
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  switch (severity) {
    case Severity::Note: os << "note"; break;
    case Severity::Warning: os << "warning"; break;
    case Severity::Error: os << "error"; break;
  }
  os << " at " << loc.str() << ": " << message;
  return os.str();
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc,
                              std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message)});
}

std::string DiagnosticEngine::dump() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.str() << '\n';
  return os.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

void throw_if_errors(const DiagnosticEngine& diags, const std::string& phase) {
  if (diags.has_errors()) {
    throw CompileError(phase + " failed:\n" + diags.dump());
  }
}

}  // namespace autocfd

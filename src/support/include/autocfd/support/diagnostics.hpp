// Diagnostics: source locations, errors and warnings for the Auto-CFD
// pre-compiler. Every phase (lexer, parser, analyses, code generation)
// reports through a DiagnosticEngine so callers can collect all problems
// in one pass instead of dying on the first.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace autocfd {

/// A position in a Fortran source file. Lines and columns are 1-based;
/// line 0 means "unknown / synthesized".
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

enum class Severity { Note, Warning, Error };

/// One diagnostic message attached to a source location.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Collects diagnostics across a compilation. Phases keep going after
/// recoverable errors; the driver checks has_errors() between phases.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }
  void note(SourceLoc loc, std::string message) {
    report(Severity::Note, loc, std::move(message));
  }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// All diagnostics joined with newlines; handy for test assertions.
  [[nodiscard]] std::string dump() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

/// Thrown for unrecoverable failures (callers that want exceptions can
/// wrap a DiagnosticEngine check in throw_if_errors()).
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
};

/// Throws CompileError carrying the engine's dump if any error was reported.
void throw_if_errors(const DiagnosticEngine& diags, const std::string& phase);

}  // namespace autocfd

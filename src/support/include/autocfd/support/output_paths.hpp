// Up-front validation of CLI output destinations. A long simulated run
// that ends in "cannot write metrics file" wastes minutes; checking the
// destinations before any work starts turns that into an immediate,
// specific diagnostic.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace autocfd::support {

/// One output destination a tool was asked to write: the CLI flag that
/// named it (for the diagnostic) and the path itself.
struct OutputPath {
  std::string flag;  // "--metrics-out", "-o", ...
  std::string path;
};

/// Checks that the destinations are distinct and writable. Returns the
/// first problem as a complete one-line diagnostic ("--report-out and
/// --metrics-out both point at 'x.json'", "--metrics-out: directory
/// 'out/' does not exist", "--metrics-out: 'out' is a directory",
/// "--metrics-out: directory '/' is not writable"), or nullopt when
/// every destination is usable. Paths naming the same file through
/// different spellings (./x vs x) are treated as duplicates.
[[nodiscard]] std::optional<std::string> validate_output_paths(
    const std::vector<OutputPath>& outputs);

}  // namespace autocfd::support

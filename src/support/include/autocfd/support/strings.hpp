// Small string helpers shared across the pre-compiler. Fortran is case
// insensitive, so identifier handling funnels through to_lower().
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace autocfd {

/// ASCII lower-casing (Fortran identifiers are case insensitive).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Strip leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Split on any whitespace run; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

[[nodiscard]] bool starts_with_ci(std::string_view s, std::string_view prefix);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

}  // namespace autocfd

#include "autocfd/support/output_paths.hpp"

#include <filesystem>

#ifdef _WIN32
#include <io.h>
#define ACFD_ACCESS _access
#define ACFD_W_OK 2
#else
#include <unistd.h>
#define ACFD_ACCESS access
#define ACFD_W_OK W_OK
#endif

namespace autocfd::support {

namespace fs = std::filesystem;

namespace {

/// Canonical spelling for duplicate detection: lexically normalized
/// absolute path (weakly_canonical would also resolve symlinks, but it
/// needs the prefix to exist; normalization is enough to catch the
/// "./x vs x" class of accidental duplicates).
std::string canonical_spelling(const std::string& path) {
  std::error_code ec;
  fs::path abs = fs::absolute(fs::path(path), ec);
  if (ec) return path;
  return abs.lexically_normal().string();
}

}  // namespace

std::optional<std::string> validate_output_paths(
    const std::vector<OutputPath>& outputs) {
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    const auto& out = outputs[i];
    if (out.path.empty()) {
      return out.flag + ": output path is empty";
    }

    std::error_code ec;
    const fs::path p(out.path);
    if (fs::is_directory(p, ec)) {
      return out.flag + ": '" + out.path + "' is a directory";
    }

    // The parent directory must exist and be writable; "" means the
    // current directory.
    fs::path dir = p.parent_path();
    if (dir.empty()) dir = ".";
    if (!fs::exists(dir, ec)) {
      return out.flag + ": directory '" + dir.string() +
             "' does not exist";
    }
    if (!fs::is_directory(dir, ec)) {
      return out.flag + ": '" + dir.string() + "' is not a directory";
    }
    if (ACFD_ACCESS(dir.string().c_str(), ACFD_W_OK) != 0) {
      return out.flag + ": directory '" + dir.string() +
             "' is not writable";
    }

    const std::string canon = canonical_spelling(out.path);
    for (std::size_t j = 0; j < i; ++j) {
      if (canonical_spelling(outputs[j].path) == canon) {
        return outputs[j].flag + " and " + out.flag +
               " both point at '" + out.path + "'";
      }
    }
  }
  return std::nullopt;
}

}  // namespace autocfd::support

#include "autocfd/support/strings.hpp"

#include <algorithm>
#include <cctype>

namespace autocfd {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  const auto* ws = " \t\r\n";
  const auto b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with_ci(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace autocfd

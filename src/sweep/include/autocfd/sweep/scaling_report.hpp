// ScalingReport: the cross-run artifact of the scaling observatory.
//
// Where a prof::RunReport observes one (nranks, partition, engine)
// configuration, a ScalingReport aggregates a whole sweep of them into
// the paper's Table-4 view and beyond: speedup and parallel-efficiency
// curves against the sweep's baseline, Karp-Flatt serial-fraction
// estimates, per-sync-site communication-share trends across scales
// (sites matched by their TagRegistry labels, which survive partition
// changes), per-rank imbalance/straggler trends, and a comm-bound vs
// compute-bound classification naming the site that dominates the
// communication bill where it crosses over.
//
// Serialized as versioned, deterministic JSON (fixed key order,
// json_number formatting) so that write -> read -> write is
// byte-identical and CI can diff sweeps, plus text and HTML renderings
// with ASCII efficiency curves. Read back via plan::json_reader, the
// same reader the planner uses for run reports.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace autocfd::sweep {

/// Version stamp of the scaling-report JSON schema. Bump whenever a
/// field is added, removed, or changes meaning; consumers refuse
/// reports from another version instead of misreading them.
/// History: 1 = the scaling observatory's initial layout; 2 adds
/// reliable-delivery recovery (recovery_spec on the report,
/// recovery_s / retransmits on every cell).
inline constexpr int kScalingReportSchemaVersion = 2;

/// One sync-plan site's communication bill inside one cell, as a share
/// of the cell's total rank time. Matched across cells by (kind,
/// label) — the TagRegistry label names the combined sync point by its
/// member halos, so the "same" site is comparable across partitions.
struct SiteShare {
  int site = -1;  // site id within this cell's tag registry
  std::string kind;   // "halo" | "pipeline" | "collective"
  std::string label;  // TagRegistry label
  long long messages = 0;
  long long bytes = 0;
  double wait_s = 0.0;
  double cost_s = 0.0;
  /// (wait_s + cost_s) / cell total rank time.
  double share = 0.0;
};

/// One executed sweep cell: a (nranks, partition, engine, fault plan)
/// configuration with its measured run distilled to scaling metrics.
/// Every figure reconciles exactly with the cell's prof::RunReport —
/// compute/transfer/wait are the rank-breakdown sums, messages/bytes
/// the comm-matrix rank totals.
struct ScalingCell {
  int nranks = 0;
  std::string partition;  // PartitionSpec::str()
  std::string engine;     // "bytecode" | "tree"
  std::string fault_spec;  // FaultPlan::str(), empty when clean
  bool baseline = false;   // the cell the curves are normalized to

  double elapsed_s = 0.0;  // slowest rank's virtual time
  /// Relative speedup: baseline elapsed / this elapsed (or sequential
  /// elapsed / this elapsed when the sweep ran a sequential baseline
  /// and has no 1-rank cell).
  double speedup = 0.0;
  /// speedup * baseline ranks / nranks, in [0, 1] unless superlinear.
  double efficiency = 0.0;
  /// Karp-Flatt experimentally determined serial fraction
  /// (1/speedup - 1/p) / (1 - 1/p); 0 for the baseline itself and
  /// when the baseline is not a serial (1-rank or sequential) run.
  double karp_flatt = 0.0;

  // Rank-time decomposition summed over all ranks of the cell.
  double compute_s = 0.0;
  double transfer_s = 0.0;
  double wait_s = 0.0;
  /// Recovery wait summed over all ranks (sub-account of wait_s;
  /// nonzero only under a lossy fault plan with recovery on) and the
  /// wire retransmissions that caused it. Keeps lossy cells comparable
  /// to clean ones: elapsed_s - the recovery tax is visible per cell.
  double recovery_s = 0.0;
  long long retransmits = 0;
  /// (transfer + wait) / (compute + transfer + wait): the fraction of
  /// all rank time spent communicating.
  double comm_share = 0.0;

  /// Compute imbalance: max rank compute / mean rank compute (1.0 is
  /// perfectly balanced); straggler_rank is the argmax.
  double imbalance = 0.0;
  int straggler_rank = 0;

  long long messages = 0;  // wire messages, sender side, all ranks
  long long bytes = 0;

  int syncs_after = 0;       // combined sync points of this compile
  int pipelined_loops = 0;

  std::vector<SiteShare> sites;  // sorted by site id
};

/// One site's communication share tracked across every cell of the
/// sweep (shares[i] belongs to cells[i]; 0 where the site is absent).
struct SiteTrend {
  std::string kind;
  std::string label;
  std::vector<double> shares;
};

/// The planner's verdict for one scale point: its candidate table
/// scored against that scale's measured cell (the ROADMAP's
/// scaling-aware search).
struct PlanPoint {
  int nranks = 0;
  std::string measured_partition;
  double measured_s = 0.0;
  std::string planned_partition;
  std::string planned_strategy;
  double predicted_s = 0.0;         // planner's pick
  double static_predicted_s = 0.0;  // static heuristic under the model
  bool improves = false;  // planner predicts a win over the static pick
};

struct ScalingReport {
  int schema_version = kScalingReportSchemaVersion;
  std::string title;
  std::string strategy;    // combine strategy of every compile
  std::string fault_spec;  // sweep-wide fault plan, empty when clean
  /// RecoveryConfig::str() of the sweep-wide reliable-delivery
  /// protocol; empty when the sweep ran fail-fast.
  std::string recovery_spec;
  /// Sequential reference under the same machine model; 0 when the
  /// sweep did not run one.
  double seq_elapsed_s = 0.0;

  std::vector<ScalingCell> cells;      // spec order: ranks ascending
  std::vector<SiteTrend> site_trends;  // first-appearance order

  /// "comm-bound" when the largest scale spends more rank time
  /// communicating than computing, else "compute-bound".
  std::string classification;
  /// Smallest rank count whose cell is comm-dominated (-1: none).
  int crossover_nranks = -1;
  /// The site with the largest communication bill at the crossover
  /// scale (or at the largest scale when no cell crosses over).
  std::string crossover_site;
  std::string crossover_site_kind;

  std::vector<PlanPoint> plan_points;  // empty unless the spec asked
  /// argmin of predicted time over plan_points (0 when not planned).
  int recommended_nranks = 0;
  std::string recommended_partition;

  /// Deterministic JSON, byte-identical across write/read/write.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;
  /// Terminal view with ASCII speedup/efficiency curves and the
  /// site-share trend table.
  void write_text(std::ostream& os) const;
  /// Self-contained single-file HTML (inline CSS, no scripts).
  void write_html(std::ostream& os) const;

  /// Parses ScalingReport JSON; nullopt + diagnostic on malformed
  /// input or a schema_version mismatch.
  [[nodiscard]] static std::optional<ScalingReport> parse(
      std::string_view text, std::string* error);
  /// Reads and parses a report file from disk.
  [[nodiscard]] static std::optional<ScalingReport> load(
      const std::string& path, std::string* error);
};

enum class SweepFormat { Json, Text, Html };

/// Parses "json" / "text" / "html"; empty selects Text.
[[nodiscard]] std::optional<SweepFormat> parse_sweep_format(
    std::string_view name);

void write_scaling_report(const ScalingReport& report, SweepFormat format,
                          std::ostream& os);

}  // namespace autocfd::sweep

// The scaling observatory: a declarative multi-run sweep harness.
//
// A SweepSpec names the grid of configurations to measure — rank
// counts x partition shapes x engines under one combine strategy and
// an optional fault plan. run_sweep() executes every cell through the
// existing pipeline (parallelize -> simulated cluster run with
// profiling and tracing on), captures a prof::RunReport per cell, and
// aggregates them into a deterministic ScalingReport: the per-run
// observability layer (PR 5) extended across scales, which is where
// the paper's headline evidence (Table 4's scaling study) lives.
//
// The spec is versioned JSON; an unknown schema_version is rejected
// with an actionable diagnostic instead of being misread. With
// `plan: true` the sweep closes the loop with src/plan: every scale
// point's measured cell is distilled into a plan::PlanInput and the
// planner's candidate table is scored against it, yielding a
// partition recommendation per rank count and an overall "what nprocs
// should I use" answer in one sweep.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "autocfd/core/pipeline.hpp"
#include "autocfd/mp/machine.hpp"
#include "autocfd/prof/report.hpp"
#include "autocfd/sweep/scaling_report.hpp"

namespace autocfd::sweep {

/// Version stamp of the sweep-spec JSON schema.
inline constexpr int kSweepSpecSchemaVersion = 1;

struct SweepSpec {
  int schema_version = kSweepSpecSchemaVersion;
  /// Report title; defaults to the input's stem when loaded by acfd.
  std::string title;
  /// Rank counts to sweep, in the order cells are executed. Each rank
  /// count runs under the static heuristic's partition choice unless
  /// `partitions` pins explicit shapes for it.
  std::vector<int> ranks;
  /// Optional explicit partition shapes per rank count ("4" ->
  /// ["2x2x1", "4x1x1"]); every listed shape becomes its own cell.
  std::map<int, std::vector<std::string>> partitions;
  /// Statement executors to sweep (virtual times are engine-invariant;
  /// sweeping both is a bit-identity check at scale).
  std::vector<std::string> engines = {"bytecode"};
  /// Combine strategy of every compile: "min" | "pairwise" | "none".
  std::string strategy = "min";
  /// fault::FaultPlan::parse spec applied to every cell; empty = clean.
  std::string faults;
  /// mp::RecoveryConfig::parse spec enabling reliable delivery in
  /// every cell ("" = fail-fast, "default" or "budget=8,rto=0.002,..."
  /// = recovery on). Lossy fault plans then yield completed,
  /// bit-identical cells whose recovery cost is measured per cell,
  /// keeping sweeps comparable instead of aborting at the first drop.
  std::string recovery;
  /// Also run the unrestructured sequential program once and record
  /// its elapsed time; it becomes the baseline when no 1-rank cell
  /// exists (the Table-4 seq-vs-par workflow).
  bool sequential_baseline = false;
  /// Score the planner's candidate table against every scale point's
  /// measured cell (fills ScalingReport::plan_points).
  bool plan = false;
  /// Timeline buckets of each cell's RunReport.
  int timeline_buckets = 24;

  /// Parses a spec JSON document. Returns nullopt (with a diagnostic
  /// in `error`) on malformed JSON, an unknown schema_version, or an
  /// empty/invalid rank list.
  [[nodiscard]] static std::optional<SweepSpec> parse(std::string_view text,
                                                      std::string* error);
  /// Reads and parses a spec file.
  [[nodiscard]] static std::optional<SweepSpec> load(const std::string& path,
                                                     std::string* error);
  /// Deterministic JSON of this spec (round-trips through parse).
  [[nodiscard]] std::string json() const;
};

struct SweepOptions {
  mp::MachineConfig machine = mp::MachineConfig::pentium_ethernet_1999();
  /// Watchdog deadline forwarded to every cell's run.
  double watchdog = mp::Cluster::kDefaultWatchdog;
  /// When non-empty, every executed cell appends one "sweep-cell"
  /// ledger::RunRecord here after the sweep completes — the scaling
  /// observatory's feed into the telemetry ledger. Append failures are
  /// reported through SweepResult::ledger_error, never thrown: a full
  /// disk must not discard a finished sweep.
  std::string ledger_path;
  /// Machine-model name stamped into ledger records; callers that
  /// swap `machine` should rename this to match.
  std::string machine_name = "pentium_ethernet_1999";
};

/// A finished sweep: the aggregated ScalingReport plus the underlying
/// per-cell run reports (cell_reports[i] backs report.cells[i]) for
/// reconciliation checks and per-cell drill-down.
struct SweepResult {
  ScalingReport report;
  std::vector<prof::RunReport> cell_reports;
  /// Diagnostic when SweepOptions::ledger_path was set and appending
  /// failed; empty on success (or when no ledger was requested).
  std::string ledger_error;
};

/// Executes the sweep. The source is parsed and analyzed once per
/// distinct (partition, strategy) configuration and every cell runs on
/// the simulated cluster with source-attributed profiling and tracing
/// on. Throws CompileError when the source does not analyze and
/// std::invalid_argument on malformed spec entries (bad partition
/// shapes, unknown engine or strategy names, rank counts that no
/// partition of the grid realizes).
[[nodiscard]] SweepResult run_sweep(const std::string& source,
                                    const core::Directives& directives,
                                    const SweepSpec& spec,
                                    const SweepOptions& options = {});

}  // namespace autocfd::sweep
